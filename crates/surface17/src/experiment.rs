//! The logical-error-rate experiment of Section 5.3 (Listing 5.7).
//!
//! An idling SC17 logical qubit is initialized, then error-correction
//! windows run until a target number of logical errors is counted:
//!
//! ```text
//! while logical_error_count < MAX_LOGICAL_ERROR:
//!     execute_window()
//!     window_count += 1
//!     if no_observable_errors():
//!         if logical_error_happened():
//!             logical_error_count += 1
//! logical_error_rate = logical_error_count / window_count
//! ```
//!
//! The control stack is the one of Fig 5.8: a CHP (stabilizer) core, the
//! symmetric depolarizing error layer, an optional Pauli-frame layer, and
//! counter layers around the frame so the experiment can report exactly
//! what the frame saved (Figs 5.25–5.26).

use qpdo_core::fault::{FaultPlan, FaultRates};
use qpdo_core::{
    ChpCore, ControlStack, CoreError, CounterLayer, DepolarizingModel, ErrorCounts,
    FrameProtectionConfig, FrameProtectionStats, PauliFrameLayer, ProtectedPauliFrameLayer,
    ShotError, SvCore,
};
use qpdo_pauli::{Pauli, PauliString};
#[cfg(feature = "reference")]
use qpdo_stabilizer::ReferenceTableau;
use qpdo_stabilizer::{CliffordTableau, StabilizerSim};
use qpdo_statevector::Complex;

use crate::{NinjaStar, StarLayout};

/// Which logical error the experiment watches for — and hence which
/// state it prepares (`X_L` errors flip `|0⟩_L`; `Z_L` errors flip
/// `|+⟩_L`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LogicalErrorKind {
    /// Watch for logical X errors on `|0⟩_L` (tracks `Z0Z4Z8`).
    XL,
    /// Watch for logical Z errors on `|+⟩_L` (tracks `X2X4X6`).
    ZL,
}

/// Configuration of one LER run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LerConfig {
    /// The physical error rate `p` of the depolarizing model.
    pub physical_error_rate: f64,
    /// Which logical error to watch for.
    pub kind: LogicalErrorKind,
    /// Whether the stack includes a Pauli-frame layer.
    pub with_pauli_frame: bool,
    /// Stop after counting this many logical errors (50 in the paper).
    pub target_logical_errors: u64,
    /// Safety cap on windows (needed at very low `p`).
    pub max_windows: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl LerConfig {
    /// A configuration with the paper's stopping rule (50 logical
    /// errors) and a generous window cap.
    #[must_use]
    pub fn paper_default(
        physical_error_rate: f64,
        kind: LogicalErrorKind,
        with_pauli_frame: bool,
        seed: u64,
    ) -> Self {
        LerConfig {
            physical_error_rate,
            kind,
            with_pauli_frame,
            target_logical_errors: 50,
            max_windows: 50_000_000,
            seed,
        }
    }
}

/// The result of one LER run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LerOutcome {
    /// Windows executed (`R` in Eq 5.1).
    pub windows: u64,
    /// Logical errors counted (`m` in Eq 5.1).
    pub logical_errors: u64,
    /// Operations that entered the stack above the Pauli frame.
    pub ops_above_frame: u64,
    /// Time slots that entered the stack above the Pauli frame.
    pub slots_above_frame: u64,
    /// Operations that reached the error layer / core below the frame.
    pub ops_below_frame: u64,
    /// Time slots that reached the error layer / core below the frame.
    pub slots_below_frame: u64,
    /// Injected physical errors.
    pub injected: ErrorCounts,
}

impl LerOutcome {
    /// The logical error rate `P_L = m / R` (Eq 5.1).
    #[must_use]
    pub fn ler(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.logical_errors as f64 / self.windows as f64
        }
    }

    /// The fraction of gates the Pauli frame filtered out (Fig 5.25a).
    #[must_use]
    pub fn saved_operations(&self) -> f64 {
        if self.ops_above_frame == 0 {
            0.0
        } else {
            (self.ops_above_frame - self.ops_below_frame) as f64 / self.ops_above_frame as f64
        }
    }

    /// The fraction of time slots the Pauli frame removed (Fig 5.25b).
    #[must_use]
    pub fn saved_time_slots(&self) -> f64 {
        if self.slots_above_frame == 0 {
            0.0
        } else {
            (self.slots_above_frame - self.slots_below_frame) as f64 / self.slots_above_frame as f64
        }
    }

    /// Serializes the outcome as one whitespace-separated record line
    /// (the sweep-checkpoint format; see
    /// [`from_record`](Self::from_record)).
    #[must_use]
    pub fn to_record(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {}",
            self.windows,
            self.logical_errors,
            self.ops_above_frame,
            self.slots_above_frame,
            self.ops_below_frame,
            self.slots_below_frame,
            self.injected.single_qubit,
            self.injected.two_qubit,
            self.injected.measurement,
            self.injected.idle,
        )
    }

    /// Parses a record line produced by [`to_record`](Self::to_record).
    /// Returns `None` on any malformed field (a truncated checkpoint line
    /// must never crash a resuming sweep).
    #[must_use]
    pub fn from_record(line: &str) -> Option<Self> {
        let fields: Vec<u64> = line
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .ok()?;
        let [windows, logical_errors, ops_above_frame, slots_above_frame, ops_below_frame, slots_below_frame, single_qubit, two_qubit, measurement, idle] =
            fields[..]
        else {
            return None;
        };
        Some(LerOutcome {
            windows,
            logical_errors,
            ops_above_frame,
            slots_above_frame,
            ops_below_frame,
            slots_below_frame,
            injected: ErrorCounts {
                single_qubit,
                two_qubit,
                measurement,
                idle,
            },
        })
    }
}

/// Runs one LER experiment per Listing 5.7 on the Fig 5.8 stack.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] when `physical_error_rate`
/// is outside `[0, 1]`, and propagates stack errors (none are expected
/// for valid configurations).
pub fn run_ler(config: &LerConfig) -> Result<LerOutcome, CoreError> {
    let frame: Option<PauliFrameLayer> = config.with_pauli_frame.then(PauliFrameLayer::new);
    run_ler_stack::<StabilizerSim>(config, frame, &|| false).map(|(outcome, _, _)| outcome)
}

/// [`run_ler`] with a cooperative cancellation check consulted between
/// windows, so a deadline watcher (e.g. the shot service's supervisor
/// `CancelToken`) can stop a long run promptly instead of waiting for
/// the window loop to hit its target or cap.
///
/// # Errors
///
/// Returns [`ShotError::Cancelled`] when `cancelled` reports true, and
/// wraps the [`run_ler`] error contract in [`ShotError::Core`].
pub fn run_ler_cancellable(
    config: &LerConfig,
    cancelled: &dyn Fn() -> bool,
) -> Result<LerOutcome, ShotError> {
    let (outcome, stopped) = run_ler_partial(config, cancelled)?;
    cancelled_outcome(outcome, stopped)
}

/// [`run_ler_cancellable`] that surfaces the counters accumulated up to a
/// cancellation instead of discarding them: returns the (possibly
/// partial) outcome plus whether the window loop stopped early.
///
/// The partial window count depends on *when* the cancellation landed,
/// so callers must treat a stopped outcome as an anytime estimate, never
/// as the record of the configured experiment — the serving layer turns
/// it into a typed `Partial` result carrying a confidence interval
/// rather than a `done` record.
///
/// # Errors
///
/// Wraps the [`run_ler`] error contract in [`ShotError::Core`]; early
/// cancellation is *not* an error here.
pub fn run_ler_partial(
    config: &LerConfig,
    cancelled: &dyn Fn() -> bool,
) -> Result<(LerOutcome, bool), ShotError> {
    let frame: Option<PauliFrameLayer> = config.with_pauli_frame.then(PauliFrameLayer::new);
    let (outcome, _, stopped) =
        run_ler_stack::<StabilizerSim>(config, frame, cancelled).map_err(ShotError::Core)?;
    Ok((outcome, stopped))
}

/// Runs the identical LER experiment on the cell-per-entry
/// [`ReferenceTableau`] engine instead of the packed production engine.
///
/// Both engines draw from the stack RNG in the same order, so for any
/// `config` this must return an outcome whose
/// [`to_record`](LerOutcome::to_record) string is byte-identical to
/// [`run_ler`]'s — the full-stack leg of the differential test oracle
/// (`tests/engine_equivalence.rs`).
///
/// # Errors
///
/// Same contract as [`run_ler`].
#[cfg(feature = "reference")]
pub fn run_ler_reference(config: &LerConfig) -> Result<LerOutcome, CoreError> {
    let frame: Option<PauliFrameLayer> = config.with_pauli_frame.then(PauliFrameLayer::new);
    run_ler_stack::<ReferenceTableau>(config, frame, &|| false).map(|(outcome, _, _)| outcome)
}

/// [`run_ler_reference`] with the cooperative cancellation check of
/// [`run_ler_cancellable`].
///
/// # Errors
///
/// Same contract as [`run_ler_cancellable`].
#[cfg(feature = "reference")]
pub fn run_ler_reference_cancellable(
    config: &LerConfig,
    cancelled: &dyn Fn() -> bool,
) -> Result<LerOutcome, ShotError> {
    let frame: Option<PauliFrameLayer> = config.with_pauli_frame.then(PauliFrameLayer::new);
    let (outcome, _, stopped) =
        run_ler_stack::<ReferenceTableau>(config, frame, cancelled).map_err(ShotError::Core)?;
    cancelled_outcome(outcome, stopped)
}

/// Maps a cancelled window loop to [`ShotError::Cancelled`]; a partial
/// outcome is never returned, since its window count depends on when
/// the cancellation landed rather than on the configuration.
fn cancelled_outcome(outcome: LerOutcome, stopped: bool) -> Result<LerOutcome, ShotError> {
    if stopped {
        Err(ShotError::Cancelled {
            reason: format!("ler run cancelled after {} windows", outcome.windows),
        })
    } else {
        Ok(outcome)
    }
}

/// Classical-fault configuration for [`run_ler_classical`]: the fault
/// rates driving the injection plan, the frame-protection mode under
/// test, and a seed for the plan's own RNG stream (kept separate from
/// the quantum-noise stream so zero-rate runs are bit-identical to
/// fault-free ones).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassicalFaultConfig {
    /// Rates of the injected classical faults.
    pub rates: FaultRates,
    /// How the frame layer defends itself.
    pub protection: FrameProtectionConfig,
    /// Seed of the fault plan's dedicated RNG.
    pub fault_seed: u64,
}

impl ClassicalFaultConfig {
    /// Frame-record bit flips at `rate` against the given protection.
    #[must_use]
    pub fn frame_flips(rate: f64, protection: FrameProtectionConfig, fault_seed: u64) -> Self {
        ClassicalFaultConfig {
            rates: FaultRates::frame_only(rate),
            protection,
            fault_seed,
        }
    }
}

/// The result of one classical-fault LER run: the ordinary LER outcome
/// plus the protection state machine's counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassicalLerOutcome {
    /// The quantum-side outcome (windows, logical errors, savings).
    pub ler: LerOutcome,
    /// The frame-protection counters (injected/detected/recovered/…).
    pub protection: FrameProtectionStats,
    /// Classical-fault events reported by the layer during the run.
    pub fault_events: u64,
}

impl ClassicalLerOutcome {
    /// Serializes the outcome as one whitespace-separated record line
    /// (the sweep-checkpoint format): the [`LerOutcome`] record followed
    /// by the eight protection counters and the fault-event count.
    #[must_use]
    pub fn to_record(&self) -> String {
        let p = &self.protection;
        format!(
            "{} {} {} {} {} {} {} {} {} {}",
            self.ler.to_record(),
            p.injected,
            p.detected,
            p.recovered,
            p.missed,
            p.scrubs,
            p.checkpoints,
            p.rollbacks,
            p.degraded_flushes,
            self.fault_events,
        )
    }

    /// Parses a record line produced by [`to_record`](Self::to_record).
    /// Returns `None` on any malformed field.
    #[must_use]
    pub fn from_record(line: &str) -> Option<Self> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 19 {
            return None;
        }
        let ler = LerOutcome::from_record(&fields[..10].join(" "))?;
        let tail: Vec<u64> = fields[10..]
            .iter()
            .map(|f| f.parse())
            .collect::<Result<_, _>>()
            .ok()?;
        let [injected, detected, recovered, missed, scrubs, checkpoints, rollbacks, degraded_flushes, fault_events] =
            tail[..]
        else {
            return None;
        };
        Some(ClassicalLerOutcome {
            ler,
            protection: FrameProtectionStats {
                injected,
                detected,
                recovered,
                missed,
                scrubs,
                checkpoints,
                rollbacks,
                degraded_flushes,
            },
            fault_events,
        })
    }
}

/// The outcome of one cross-backend redundancy check (see
/// [`run_cross_backend_check`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrossCheckOutcome {
    /// ESM windows executed on each back-end.
    pub windows: u64,
    /// Whether the two back-ends agreed on every compared quantity.
    pub agreed: bool,
    /// Description of the first disagreement (empty when `agreed`).
    pub detail: String,
}

impl CrossCheckOutcome {
    /// Converts a disagreement into the supervisor's first-class
    /// [`ShotError::Divergence`] outcome; agreement maps to `Ok`.
    ///
    /// # Errors
    ///
    /// Returns [`ShotError::Divergence`] when the back-ends disagreed.
    pub fn into_result(self) -> Result<(), ShotError> {
        if self.agreed {
            Ok(())
        } else {
            Err(ShotError::Divergence {
                detail: self.detail,
            })
        }
    }
}

/// Cross-backend redundancy oracle: runs the same Clifford-only,
/// fault-free ESM workload — initialization to `|0⟩_L` followed by
/// `windows` error-correction windows — on both the stabilizer (CHP) and
/// the state-vector back-end, and compares:
///
/// - every per-window [`WindowReport`](crate::WindowReport) (confirmed
///   detection events, corrections issued),
/// - the observable-error gate after the final window,
/// - the final quantum state, by checking that every canonical
///   stabilizer generator of the CHP tableau holds with expectation `+1`
///   on the state vector.
///
/// The two simulators share no code beyond the Pauli algebra, so
/// agreement here is the platform's end-to-end correctness oracle for
/// the tracking logic (in the spirit of Paler & Devitt's software Pauli
/// tracking validation). The supervised execution engine samples batches
/// of a sweep through this check and votes: divergence is reported as a
/// first-class supervisor outcome rather than a panic.
///
/// # Errors
///
/// Returns [`ShotError::Core`] for stack-level failures; disagreement is
/// reported in the outcome, not as an error.
pub fn run_cross_backend_check(seed: u64, windows: u64) -> Result<CrossCheckOutcome, ShotError> {
    let mut chp = ControlStack::with_seed(ChpCore::new(), seed);
    chp.create_qubits(17).map_err(ShotError::Core)?;
    let mut chp_star = NinjaStar::new(StarLayout::standard(0));
    chp_star.initialize_zero(&mut chp)?;

    let mut sv = ControlStack::with_seed(SvCore::new(), seed);
    sv.create_qubits(17).map_err(ShotError::Core)?;
    let mut sv_star = NinjaStar::new(StarLayout::standard(0));
    sv_star.initialize_zero(&mut sv)?;

    let disagree = |detail: String| CrossCheckOutcome {
        windows,
        agreed: false,
        detail,
    };

    for w in 0..windows {
        let a = chp_star.run_window(&mut chp)?;
        let b = sv_star.run_window(&mut sv)?;
        if a != b {
            return Ok(disagree(format!(
                "window {w}: chp {a:?} vs statevector {b:?}"
            )));
        }
    }
    let chp_err = chp_star.has_observable_error(&mut chp)?;
    let sv_err = sv_star.has_observable_error(&mut sv)?;
    if chp_err != sv_err {
        return Ok(disagree(format!(
            "observable-error gate: chp {chp_err} vs statevector {sv_err}"
        )));
    }

    let stabilizers = chp
        .core()
        .simulator()
        .ok_or(ShotError::Core(CoreError::NoQubits))?
        .canonical_stabilizers();
    let sv_sim = sv
        .core()
        .simulator()
        .ok_or(ShotError::Core(CoreError::NoQubits))?;
    for s in &stabilizers {
        let e = sv_sim.pauli_expectation(s);
        if !e.approx_eq(Complex::ONE, 1e-6) {
            return Ok(disagree(format!(
                "stabilizer {s}: statevector expectation {e} (want +1)"
            )));
        }
    }
    Ok(CrossCheckOutcome {
        windows,
        agreed: true,
        detail: String::new(),
    })
}

/// Runs the LER experiment with a [`ProtectedPauliFrameLayer`] in place
/// of the plain frame layer, injecting classical faults from
/// `classical.rates`. `config.with_pauli_frame` is ignored — the frame
/// layer is always present; its *protection* is what varies.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] for out-of-range rates and
/// propagates stack errors.
pub fn run_ler_classical(
    config: &LerConfig,
    classical: &ClassicalFaultConfig,
) -> Result<ClassicalLerOutcome, CoreError> {
    classical.rates.validate()?;
    let mut frame = ProtectedPauliFrameLayer::with_config(classical.protection);
    frame.set_fault_plan(FaultPlan::new(classical.rates, classical.fault_seed)?);
    let (ler, protection, _) = run_ler_stack::<StabilizerSim>(config, Some(frame), &|| false)?;
    let (protection, fault_events) = protection.unwrap_or_default();
    Ok(ClassicalLerOutcome {
        ler,
        protection,
        fault_events,
    })
}

/// The shared experiment body. Returns the LER outcome plus, when the
/// stack carried a protected frame layer, its protection counters and
/// drained fault-event count, plus whether the window loop stopped on
/// the cooperative cancellation check (consulted once per window).
#[allow(clippy::type_complexity)]
fn run_ler_stack<T: CliffordTableau>(
    config: &LerConfig,
    frame: Option<impl qpdo_core::Layer>,
    cancelled: &dyn Fn() -> bool,
) -> Result<(LerOutcome, Option<(FrameProtectionStats, u64)>, bool), CoreError> {
    let below = CounterLayer::new();
    let below_counts = below.counters();
    let above = CounterLayer::new();
    let above_counts = above.counters();

    let mut stack = ControlStack::with_seed(ChpCore::<T>::empty(), config.seed);
    stack.push_layer(below);
    if let Some(frame) = frame {
        stack.push_layer(frame);
    }
    stack.push_layer(above);
    stack.set_error_model(DepolarizingModel::try_new(config.physical_error_rate)?);
    stack.create_qubits(17)?;

    let mut star = NinjaStar::new(StarLayout::standard(0));
    match config.kind {
        LogicalErrorKind::XL => star.initialize_zero(&mut stack)?,
        LogicalErrorKind::ZL => star.initialize_plus(&mut stack)?,
    }
    // Initialization runs in bypass mode but frame-filtered gauge fixes
    // may have registered on the counters' bypass-exempt paths; reset so
    // the statistics cover exactly the counted windows.
    above_counts.reset();
    below_counts.reset();

    let mut reference = logical_value(&mut stack, &star, config.kind)
        .expect("freshly initialized state has a deterministic logical value");
    let mut windows = 0u64;
    let mut logical_errors = 0u64;
    let mut stopped = false;

    while logical_errors < config.target_logical_errors && windows < config.max_windows {
        if cancelled() {
            stopped = true;
            break;
        }
        star.run_window(&mut stack)?;
        windows += 1;
        if !star.has_observable_error(&mut stack)? {
            if let Some(value) = logical_value(&mut stack, &star, config.kind) {
                if value != reference {
                    logical_errors += 1;
                    reference = value;
                }
            }
        }
    }

    let protection = stack
        .find_layer_mut::<ProtectedPauliFrameLayer>()
        .map(|pf| (pf.protection_stats(), pf.drain_fault_events().len() as u64));

    Ok((
        LerOutcome {
            windows,
            logical_errors,
            ops_above_frame: above_counts.operations(),
            slots_above_frame: above_counts.time_slots(),
            ops_below_frame: below_counts.operations(),
            slots_below_frame: below_counts.time_slots(),
            injected: stack.error_counts().expect("error model installed"),
        },
        protection,
        stopped,
    ))
}

/// The current logical value seen through the Pauli frame: the physical
/// expectation of the logical-state stabilizer (Table 2.2), corrected by
/// the tracked records on its support.
///
/// Returns `None` when the observable is not deterministic (an
/// uncorrected error chain crosses it) — such windows are skipped, which
/// the observable-error gate in the caller already guarantees.
fn logical_value<T: CliffordTableau>(
    stack: &mut ControlStack<ChpCore<T>>,
    star: &NinjaStar,
    kind: LogicalErrorKind,
) -> Option<bool> {
    let n = stack.num_qubits();
    let (support, pauli) = match kind {
        LogicalErrorKind::XL => (star.logical_z_qubits(), Pauli::Z),
        LogicalErrorKind::ZL => (star.logical_x_qubits(), Pauli::X),
    };
    let mut observable = PauliString::identity(n);
    for &q in &support {
        observable.set_op(q, pauli);
    }
    // The frame adjustment: tracked X components flip Z-type readouts,
    // tracked Z components flip X-type readouts.
    let mut flip = false;
    let records: Option<Vec<_>> = if let Some(pf) = stack.find_layer::<PauliFrameLayer>() {
        Some(support.iter().map(|&q| pf.record(q)).collect())
    } else {
        stack
            .find_layer::<ProtectedPauliFrameLayer>()
            .map(|pf| support.iter().map(|&q| pf.record(q)).collect())
    };
    if let Some(records) = records {
        for record in records {
            let (x, z) = record.bits();
            flip ^= match pauli {
                Pauli::Z => x,
                Pauli::X => z,
                _ => unreachable!("logical observables are X- or Z-type"),
            };
        }
    }
    let physical = stack
        .core_mut()
        .simulator_mut()
        .expect("qubits allocated")
        .expectation(&observable)?;
    Some(physical ^ flip)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(p: f64, with_pf: bool, kind: LogicalErrorKind, seed: u64) -> LerConfig {
        LerConfig {
            physical_error_rate: p,
            kind,
            with_pauli_frame: with_pf,
            target_logical_errors: 4,
            max_windows: 3000,
            seed,
        }
    }

    #[test]
    fn zero_noise_never_errs() {
        for with_pf in [false, true] {
            let mut config = quick(0.0, with_pf, LogicalErrorKind::XL, 1);
            config.max_windows = 50;
            let outcome = run_ler(&config).unwrap();
            assert_eq!(outcome.windows, 50);
            assert_eq!(outcome.logical_errors, 0);
            assert_eq!(outcome.ler(), 0.0);
            assert_eq!(outcome.injected.total(), 0);
        }
    }

    #[test]
    fn high_noise_produces_logical_errors() {
        for kind in [LogicalErrorKind::XL, LogicalErrorKind::ZL] {
            let outcome = run_ler(&quick(0.02, false, kind, 2)).unwrap();
            assert!(outcome.logical_errors > 0, "{kind:?}: no logical errors");
            assert!(outcome.ler() > 0.0);
            assert!(outcome.injected.total() > 0);
        }
    }

    #[test]
    fn frame_filters_corrections_only() {
        let with_pf = run_ler(&quick(0.02, true, LogicalErrorKind::XL, 3)).unwrap();
        // Something was filtered...
        assert!(with_pf.ops_below_frame < with_pf.ops_above_frame);
        assert!(with_pf.saved_operations() > 0.0);
        // ...but bounded by the correction-slot budget (1 of 17 slots,
        // Section 5.3.2).
        assert!(with_pf.saved_time_slots() <= 1.0 / 17.0 + 1e-9);

        let without = run_ler(&quick(0.02, false, LogicalErrorKind::XL, 3)).unwrap();
        assert_eq!(without.ops_above_frame, without.ops_below_frame);
        assert_eq!(without.saved_operations(), 0.0);
    }

    #[test]
    fn ler_comparable_with_and_without_frame() {
        // Not a statistical claim at this scale — just that both stacks
        // complete and produce sane rates.
        let a = run_ler(&quick(0.01, false, LogicalErrorKind::XL, 4)).unwrap();
        let b = run_ler(&quick(0.01, true, LogicalErrorKind::XL, 4)).unwrap();
        for outcome in [a, b] {
            assert!(outcome.windows > 0);
            assert!(outcome.ler() <= 1.0);
        }
    }

    #[test]
    fn window_cap_respected() {
        let mut config = quick(1e-4, false, LogicalErrorKind::XL, 5);
        config.max_windows = 40;
        let outcome = run_ler(&config).unwrap();
        assert!(outcome.windows <= 40);
    }

    #[test]
    fn cancellable_run_matches_plain_run_when_never_cancelled() {
        let config = quick(0.01, true, LogicalErrorKind::XL, 12);
        let plain = run_ler(&config).unwrap();
        let cancellable = run_ler_cancellable(&config, &|| false).unwrap();
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn cancellation_stops_the_window_loop() {
        let config = quick(0.01, true, LogicalErrorKind::XL, 13);
        let err = run_ler_cancellable(&config, &|| true).unwrap_err();
        assert!(matches!(err, ShotError::Cancelled { .. }), "{err}");
        assert!(err.to_string().contains("after 0 windows"), "{err}");

        // Mid-run: cancel once three windows have been admitted.
        let windows = std::cell::Cell::new(0u64);
        let err = run_ler_cancellable(&config, &|| {
            windows.set(windows.get() + 1);
            windows.get() > 3
        })
        .unwrap_err();
        assert!(err.to_string().contains("after 3 windows"), "{err}");
    }

    #[test]
    fn paper_default_stopping_rule() {
        let config = LerConfig::paper_default(0.001, LogicalErrorKind::XL, true, 6);
        assert_eq!(config.target_logical_errors, 50);
        assert!(config.with_pauli_frame);
    }

    #[test]
    fn invalid_rate_is_an_error_not_a_panic() {
        let config = quick(1.5, false, LogicalErrorKind::XL, 7);
        let err = run_ler(&config).unwrap_err();
        assert!(matches!(err, CoreError::InvalidProbability { .. }));
    }

    #[test]
    fn outcome_record_round_trips() {
        let outcome = LerOutcome {
            windows: 12345,
            logical_errors: 42,
            ops_above_frame: 999,
            slots_above_frame: 888,
            ops_below_frame: 777,
            slots_below_frame: 666,
            injected: ErrorCounts {
                single_qubit: 1,
                two_qubit: 2,
                measurement: 3,
                idle: 4,
            },
        };
        let line = outcome.to_record();
        assert_eq!(LerOutcome::from_record(&line), Some(outcome));
        // Malformed lines never parse.
        assert_eq!(LerOutcome::from_record(""), None);
        assert_eq!(LerOutcome::from_record("1 2 3"), None);
        assert_eq!(LerOutcome::from_record("1 2 3 4 5 6 7 8 9 x"), None);
        assert_eq!(LerOutcome::from_record("1 2 3 4 5 6 7 8 9 10 11"), None);
    }

    #[test]
    fn zero_fault_protected_run_matches_plain_frame_run() {
        let config = quick(0.008, true, LogicalErrorKind::XL, 8);
        let plain = run_ler(&config).unwrap();
        let classical =
            ClassicalFaultConfig::frame_flips(0.0, FrameProtectionConfig::protected(), 1);
        let protected = run_ler_classical(&config, &classical).unwrap();
        // Bit-identical: same windows, errors, counters, injections.
        assert_eq!(protected.ler, plain);
        assert_eq!(protected.protection.injected, 0);
        assert_eq!(protected.fault_events, 0);
    }

    #[test]
    fn zero_fault_unprotected_run_also_matches() {
        let config = quick(0.008, true, LogicalErrorKind::ZL, 9);
        let plain = run_ler(&config).unwrap();
        let classical =
            ClassicalFaultConfig::frame_flips(0.0, FrameProtectionConfig::unprotected(), 1);
        let unprotected = run_ler_classical(&config, &classical).unwrap();
        assert_eq!(unprotected.ler, plain);
    }

    #[test]
    fn frame_faults_hurt_unprotected_more() {
        let config = quick(0.002, true, LogicalErrorKind::XL, 10);
        let rate = 5e-3;
        let unprotected = run_ler_classical(
            &config,
            &ClassicalFaultConfig::frame_flips(rate, FrameProtectionConfig::unprotected(), 2),
        )
        .unwrap();
        let protected = run_ler_classical(
            &config,
            &ClassicalFaultConfig::frame_flips(rate, FrameProtectionConfig::protected(), 2),
        )
        .unwrap();
        assert!(unprotected.protection.injected > 0);
        assert!(protected.protection.injected > 0);
        assert!(
            protected.protection.recovery_fraction() >= 0.9,
            "recovered {}/{}",
            protected.protection.recovered,
            protected.protection.injected
        );
        assert!(
            unprotected.ler.ler() > protected.ler.ler(),
            "unprotected {} vs protected {}",
            unprotected.ler.ler(),
            protected.ler.ler()
        );
    }

    #[test]
    fn invalid_fault_rates_rejected() {
        let config = quick(0.002, true, LogicalErrorKind::XL, 11);
        let classical =
            ClassicalFaultConfig::frame_flips(1.5, FrameProtectionConfig::protected(), 0);
        assert!(run_ler_classical(&config, &classical).is_err());
    }

    #[test]
    fn classical_outcome_record_round_trips() {
        let outcome = ClassicalLerOutcome {
            ler: LerOutcome {
                windows: 100,
                logical_errors: 3,
                ops_above_frame: 50,
                slots_above_frame: 40,
                ops_below_frame: 30,
                slots_below_frame: 20,
                injected: ErrorCounts {
                    single_qubit: 4,
                    two_qubit: 5,
                    measurement: 6,
                    idle: 7,
                },
            },
            protection: FrameProtectionStats {
                injected: 11,
                detected: 10,
                recovered: 9,
                missed: 1,
                scrubs: 8,
                checkpoints: 7,
                rollbacks: 2,
                degraded_flushes: 0,
            },
            fault_events: 11,
        };
        let line = outcome.to_record();
        assert_eq!(ClassicalLerOutcome::from_record(&line), Some(outcome));
        assert_eq!(ClassicalLerOutcome::from_record(""), None);
        assert_eq!(ClassicalLerOutcome::from_record("1 2 3"), None);
        // Right width, bad field.
        let mut fields: Vec<String> = line.split_whitespace().map(String::from).collect();
        fields[18] = "x".to_string();
        assert_eq!(ClassicalLerOutcome::from_record(&fields.join(" ")), None);
    }

    #[test]
    fn cross_backend_check_agrees_on_fault_free_windows() {
        for seed in [0, 1] {
            let outcome = run_cross_backend_check(seed, 3).unwrap();
            assert_eq!(outcome.windows, 3);
            assert!(outcome.agreed, "divergence: {}", outcome.detail);
            assert!(outcome.detail.is_empty());
            assert!(outcome.into_result().is_ok());
        }
    }

    #[test]
    fn cross_check_disagreement_becomes_divergence_error() {
        let outcome = CrossCheckOutcome {
            windows: 2,
            agreed: false,
            detail: "window 0: mismatch".to_string(),
        };
        let err = outcome.into_result().unwrap_err();
        assert!(matches!(err, ShotError::Divergence { .. }));
        assert!(err.to_string().contains("window 0"));
    }
}

//! Shot-sliced LER experiment: 64 Monte-Carlo trajectories per tableau.
//!
//! [`run_ler_sliced`] advances 64 independent trajectories of the
//! Listing 5.7 logical-error-rate experiment through one shared Clifford
//! schedule. The operator half of a CHP tableau — gate conjugation,
//! pivot selection, the deterministic/random measurement classification —
//! depends only on the `x`/`z` bit-planes, never on the signs, and every
//! operation of the SC17 schedule that *could* diverge between
//! trajectories (random measurement outcomes, injected depolarizing
//! errors, decoder corrections, Pauli-frame records) is a Pauli, which
//! touches only signs. One [`ShotSlicedSim`] word operation therefore
//! serves all 64 lanes, while divergence is confined to per-lane `u64`
//! masks over the sign planes, the [`LanePauliFrame`], the classical
//! bit-state words, and the syndrome-tracker reference words.
//!
//! Lane `k` consumes its own RNG stream (`lane_seeds[k]`), with draws in
//! exactly the order the scalar control stack makes them — measurement
//! flips, then gate/prep errors, then idle errors, slot by slot — so its
//! [`LerOutcome`] is byte-identical to
//! [`run_ler`](crate::experiment::run_ler) with `seed = lane_seeds[k]`.
//! The differential oracle in `tests/sliced_ler.rs` holds this equality
//! per lane, per field, with and without the Pauli frame.

use std::collections::VecDeque;

use qpdo_circuit::{Circuit, Gate, Operation, OperationKind, TimeSlot};
use qpdo_core::{CoreError, DepolarizingModel};
use qpdo_pauli::{LanePauliFrame, Pauli, PauliString};
use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_stabilizer::{ShotSlicedSim, LANES};

use crate::experiment::{LerConfig, LerOutcome, LogicalErrorKind};
use crate::{esm_ancillas, esm_circuit, DanceMode, LutDecoder, Rotation, StarLayout};

/// The lane-sliced control stack: one shared operator tableau, with all
/// per-trajectory state held as lane words. Mirrors the scalar
/// `ControlStack` + `PauliFrameLayer` + `CounterLayer` +
/// `DepolarizingModel` tower exactly, per lane.
struct SlicedStack {
    sim: ShotSlicedSim,
    /// The Pauli-frame layer, when the configuration carries one.
    frame: Option<LanePauliFrame>,
    /// Per-qubit FIFO of pending measurement-flip words, captured at
    /// frame-track time (the lane analogue of the scalar layer's
    /// `pending_flips`).
    pending: Vec<VecDeque<u64>>,
    /// One generator per lane, stream-identical to the scalar stack's.
    rngs: Vec<StdRng>,
    /// One error model per lane — the scalar draw discipline *and* the
    /// scalar injection counters, for free.
    models: Vec<DepolarizingModel>,
    /// Per-qubit classical bit-state: `known` bit clear = `Unknown`.
    known: Vec<u64>,
    value: Vec<u64>,
    /// Lanes still running their window loop. Frozen lanes keep riding
    /// the shared word operations (their sign bits turn to garbage), but
    /// never draw RNG, never inject, and never accrue counters.
    active: u64,
    ops_above: [u64; LANES],
    slots_above: [u64; LANES],
    ops_below: [u64; LANES],
    slots_below: [u64; LANES],
}

impl SlicedStack {
    fn new(n: usize, lane_seeds: &[u64; LANES], config: &LerConfig) -> Result<Self, CoreError> {
        let mut models = Vec::with_capacity(LANES);
        for _ in 0..LANES {
            models.push(DepolarizingModel::try_new(config.physical_error_rate)?);
        }
        Ok(SlicedStack {
            sim: ShotSlicedSim::new(n),
            frame: config.with_pauli_frame.then(|| LanePauliFrame::new(n)),
            pending: vec![VecDeque::new(); n],
            rngs: lane_seeds
                .iter()
                .map(|&s| StdRng::seed_from_u64(s))
                .collect(),
            models,
            known: vec![0; n],
            value: vec![0; n],
            active: u64::MAX,
            ops_above: [0; LANES],
            slots_above: [0; LANES],
            ops_below: [0; LANES],
            slots_below: [0; LANES],
        })
    }

    /// Runs a lane-invariant circuit through the full stack: classical
    /// marking, frame transform, counters, then slot-by-slot execution
    /// with noise injection — the sliced `run_circuit_from`.
    fn run_shared(&mut self, circuit: &Circuit, bypass: bool) -> Result<(), CoreError> {
        // Mark classical state on the original circuit: gates
        // invalidate, preps zero, measurements are filled in after
        // result mapping.
        for op in circuit.operations() {
            match op.kind() {
                OperationKind::Prep => {
                    let q = op.qubits()[0];
                    self.known[q] = u64::MAX;
                    self.value[q] = 0;
                }
                OperationKind::Measure => {}
                OperationKind::Gate(_) => {
                    for &q in op.qubits() {
                        self.known[q] = 0;
                    }
                }
            }
        }

        // Downward pass: the frame transform (lane-invariant here —
        // per-lane correction slots never travel this path).
        let slots = self.frame_transform(circuit);

        // Counter layers record outside bypass only, above the frame on
        // the original circuit and below it on the transformed one.
        if !bypass {
            let above = (
                circuit.operation_count() as u64,
                circuit.slot_count() as u64,
            );
            let below = (
                slots.iter().map(TimeSlot::len).sum::<usize>() as u64,
                slots.len() as u64,
            );
            let mut mask = self.active;
            while mask != 0 {
                let k = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.ops_above[k] += above.0;
                self.slots_above[k] += above.1;
                self.ops_below[k] += below.0;
                self.slots_below[k] += below.1;
            }
        }

        for slot in &slots {
            self.execute_slot(slot, bypass)?;
        }
        Ok(())
    }

    /// The Pauli-frame downward pass on a lane-invariant circuit: Pauli
    /// gates are absorbed (all lanes at once), Cliffords map the frame
    /// and forward, preps reset it, measurements capture their pending
    /// flip word. Emptied slots are dropped — the schedule saving.
    fn frame_transform(&mut self, circuit: &Circuit) -> Vec<TimeSlot> {
        let Some(frame) = self.frame.as_mut() else {
            return circuit.slots().to_vec();
        };
        let mut out = Vec::with_capacity(circuit.slot_count());
        for slot in circuit.slots() {
            let mut fwd = TimeSlot::new();
            for op in slot {
                let q = op.qubits();
                match op.kind() {
                    OperationKind::Prep => {
                        frame.reset(q[0]);
                        fwd.push(op.clone());
                    }
                    OperationKind::Measure => {
                        self.pending[q[0]].push_back(frame.measurement_flip_word(q[0]));
                        fwd.push(op.clone());
                    }
                    OperationKind::Gate(gate) => match gate {
                        Gate::I => {}
                        Gate::X => frame.apply_pauli_masked(q[0], Pauli::X, u64::MAX),
                        Gate::Y => frame.apply_pauli_masked(q[0], Pauli::Y, u64::MAX),
                        Gate::Z => frame.apply_pauli_masked(q[0], Pauli::Z, u64::MAX),
                        Gate::H => {
                            frame.apply_h(q[0]);
                            fwd.push(op.clone());
                        }
                        Gate::S => {
                            frame.apply_s(q[0]);
                            fwd.push(op.clone());
                        }
                        Gate::Sdg => {
                            frame.apply_sdg(q[0]);
                            fwd.push(op.clone());
                        }
                        Gate::Cnot => {
                            frame.apply_cnot(q[0], q[1]);
                            fwd.push(op.clone());
                        }
                        Gate::Cz => {
                            frame.apply_cz(q[0], q[1]);
                            fwd.push(op.clone());
                        }
                        Gate::Swap => {
                            frame.apply_swap(q[0], q[1]);
                            fwd.push(op.clone());
                        }
                        Gate::T | Gate::Tdg | Gate::Toffoli => {
                            unreachable!("the SC17 LER schedule is Clifford-only")
                        }
                    },
                }
            }
            if !fwd.is_empty() {
                out.push(fwd);
            }
        }
        out
    }

    /// The sliced `execute_slot`: per op — measurement-flip error, core
    /// application, result mapping, gate/prep error — then idle errors
    /// on every untouched qubit, all per active lane.
    fn execute_slot(&mut self, slot: &TimeSlot, bypass: bool) -> Result<(), CoreError> {
        let inject = !bypass;
        for op in slot {
            if inject && op.is_measure() {
                // Measurement errors strike before the readout.
                let q = op.qubits()[0];
                let mut flip = 0u64;
                let mut mask = self.active;
                while mask != 0 {
                    let k = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    if self.models[k].sample_measurement_flip(&mut self.rngs[k]) {
                        flip |= 1u64 << k;
                    }
                }
                if flip != 0 {
                    self.sim.x_masked(q, flip);
                    self.known[q] &= !flip;
                }
            }
            match op.kind() {
                OperationKind::Prep => {
                    let q = op.qubits()[0];
                    let active = self.active;
                    let rngs = &mut self.rngs;
                    self.sim.reset_with(q, |lane| {
                        (active & (1u64 << lane)) != 0 && rngs[lane].gen::<bool>()
                    });
                }
                OperationKind::Measure => {
                    let q = op.qubits()[0];
                    let active = self.active;
                    let rngs = &mut self.rngs;
                    let raw = self.sim.measure_with(q, |lane| {
                        (active & (1u64 << lane)) != 0 && rngs[lane].gen::<bool>()
                    });
                    let mapped = if self.frame.is_some() {
                        raw ^ self.pending[q]
                            .pop_front()
                            .expect("every tracked measurement has a pending flip word")
                    } else {
                        raw
                    };
                    self.value[q] = mapped;
                    self.known[q] = u64::MAX;
                }
                OperationKind::Gate(gate) => {
                    let q = op.qubits();
                    match gate {
                        Gate::I => {}
                        Gate::X => self.sim.x(q[0]),
                        Gate::Y => self.sim.y(q[0]),
                        Gate::Z => self.sim.z(q[0]),
                        Gate::H => self.sim.h(q[0]),
                        Gate::S => self.sim.s(q[0]),
                        Gate::Sdg => self.sim.sdg(q[0]),
                        Gate::Cnot => self.sim.cnot(q[0], q[1]),
                        Gate::Cz => self.sim.cz(q[0], q[1]),
                        Gate::Swap => self.sim.swap(q[0], q[1]),
                        Gate::T | Gate::Tdg | Gate::Toffoli => {
                            return Err(CoreError::UnsupportedGate(gate))
                        }
                    }
                }
            }
            // Gate/prep errors strike after the operation.
            if inject && !op.is_measure() {
                match *op.qubits() {
                    [q] => self.inject_each(q, self.active, DepolarizingModel::sample_single),
                    [a, b] => self.inject_two(a, b),
                    ref qubits => {
                        let qubits = qubits.to_vec();
                        for q in qubits {
                            self.inject_each(q, self.active, DepolarizingModel::sample_single);
                        }
                    }
                }
            }
        }
        // Idle errors: every qubit not touched this slot idles.
        if inject {
            for q in 0..self.sim.num_qubits() {
                if !slot.uses_qubit(q) {
                    self.inject_each(q, self.active, DepolarizingModel::sample_idle);
                }
            }
        }
        Ok(())
    }

    /// Samples one error per lane in `lanes` and applies the hits as a
    /// masked Pauli on `q`. Errors are physical: they reach the sign
    /// planes directly, never the frame, and invalidate the classical
    /// bit of the lanes they strike.
    fn inject_each(
        &mut self,
        q: usize,
        lanes: u64,
        mut sample: impl FnMut(&mut DepolarizingModel, &mut StdRng) -> Option<Pauli>,
    ) {
        let mut xw = 0u64;
        let mut zw = 0u64;
        let mut hit = 0u64;
        let mut mask = lanes;
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let Some(p) = sample(&mut self.models[k], &mut self.rngs[k]) {
                let bit = 1u64 << k;
                hit |= bit;
                if matches!(p, Pauli::X | Pauli::Y) {
                    xw |= bit;
                }
                if matches!(p, Pauli::Z | Pauli::Y) {
                    zw |= bit;
                }
            }
        }
        if hit != 0 {
            self.sim.pauli_masked(q, xw, zw);
            self.known[q] &= !hit;
        }
    }

    /// Two-qubit correlated injection: one `sample_two` draw per lane,
    /// first component on `a`, second on `b` (identity components leave
    /// the lane untouched, exactly like the scalar `apply_error`).
    fn inject_two(&mut self, a: usize, b: usize) {
        let mut words = [[0u64; 3]; 2]; // per qubit: x, z, hit
        let mut mask = self.active;
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let Some((pa, pb)) = self.models[k].sample_two(&mut self.rngs[k]) {
                let bit = 1u64 << k;
                for (w, p) in words.iter_mut().zip([pa, pb]) {
                    if p == Pauli::I {
                        continue;
                    }
                    w[2] |= bit;
                    if matches!(p, Pauli::X | Pauli::Y) {
                        w[0] |= bit;
                    }
                    if matches!(p, Pauli::Z | Pauli::Y) {
                        w[1] |= bit;
                    }
                }
            }
        }
        for (q, w) in [a, b].into_iter().zip(words) {
            if w[2] != 0 {
                self.sim.pauli_masked(q, w[0], w[1]);
                self.known[q] &= !w[2];
            }
        }
    }

    /// Runs one per-lane correction slot (Pauli gates only). With a
    /// frame the slot is absorbed entirely — it empties, is dropped, and
    /// nothing reaches the core or the below-frame counters. Without
    /// one, the Paulis execute masked and draw that lane's gate and
    /// idle errors, exactly like the scalar frameless stack.
    fn run_lane_pauli_slot(&mut self, slot: &TimeSlot, lane: usize, bypass: bool) {
        let bit = 1u64 << lane;
        if !bypass {
            self.ops_above[lane] += slot.len() as u64;
            self.slots_above[lane] += 1;
        }
        // Classical marking: Pauli gates invalidate this lane's bits.
        for op in slot {
            self.known[op.qubits()[0]] &= !bit;
        }
        let pauli_of = |op: &Operation| match op.kind() {
            OperationKind::Gate(Gate::X) => Pauli::X,
            OperationKind::Gate(Gate::Y) => Pauli::Y,
            OperationKind::Gate(Gate::Z) => Pauli::Z,
            _ => unreachable!("correction slots are Pauli-only"),
        };
        if let Some(frame) = self.frame.as_mut() {
            for op in slot {
                frame.apply_pauli_masked(op.qubits()[0], pauli_of(op), bit);
            }
            return;
        }
        if !bypass {
            self.ops_below[lane] += slot.len() as u64;
            self.slots_below[lane] += 1;
        }
        for op in slot {
            let q = op.qubits()[0];
            match pauli_of(op) {
                Pauli::X => self.sim.x_masked(q, bit),
                Pauli::Y => self.sim.y_masked(q, bit),
                Pauli::Z => self.sim.z_masked(q, bit),
                Pauli::I => {}
            }
            if !bypass {
                self.inject_each(q, bit, DepolarizingModel::sample_single);
            }
        }
        if !bypass {
            for q in 0..self.sim.num_qubits() {
                if !slot.uses_qubit(q) {
                    self.inject_each(q, bit, DepolarizingModel::sample_idle);
                }
            }
        }
    }

    /// Reads the `(x_checks, z_checks)` syndrome lane words off the
    /// classical state: a lane's bit contributes only while `known`
    /// (the sliced `bit(a).known().unwrap_or(false)`).
    fn read_syndromes(&self, layout: &StarLayout) -> ([u64; 4], [u64; 4]) {
        let (x_ancillas, z_ancillas) = esm_ancillas(layout, Rotation::Normal);
        let read = |ancillas: [usize; 4]| {
            let mut out = [0u64; 4];
            for (word, &a) in out.iter_mut().zip(&ancillas) {
                *word = self.value[a] & self.known[a];
            }
            out
        };
        (read(x_ancillas), read(z_ancillas))
    }

    fn reset_counters(&mut self) {
        self.ops_above = [0; LANES];
        self.slots_above = [0; LANES];
        self.ops_below = [0; LANES];
        self.slots_below = [0; LANES];
    }
}

/// Per-check-family windowing state over all lanes: the shared LUT plus
/// a reference lane word per check (the sliced `SyndromeTracker`).
struct LaneTracker {
    decoder: LutDecoder,
    reference: [u64; 4],
}

impl LaneTracker {
    fn new(checks: &[Vec<usize>; 4]) -> Self {
        LaneTracker {
            decoder: LutDecoder::for_checks(checks),
            reference: [0; 4],
        }
    }

    /// Lane `lane`'s 4-bit deviation pattern of `round` against the
    /// reference.
    fn lane_deviation(&self, round: &[u64; 4], lane: usize) -> u8 {
        let mut pattern = 0u8;
        for (i, (word, reference)) in round.iter().zip(&self.reference).enumerate() {
            if ((word ^ reference) >> lane) & 1 == 1 {
                pattern |= 1 << i;
            }
        }
        pattern
    }

    /// Lanes whose round deviates from the reference on any check.
    fn deviation_lanes(&self, round: &[u64; 4]) -> u64 {
        round
            .iter()
            .zip(&self.reference)
            .fold(0, |acc, (word, reference)| acc | (word ^ reference))
    }

    /// The confirm-then-correct window rule for one lane: a deviation
    /// pattern stable across both rounds is decoded, anything else is
    /// deferred. The reference is untouched (the correction restores the
    /// physical syndrome to it).
    fn process_window_lane(&self, first: &[u64; 4], second: &[u64; 4], lane: usize) -> &[usize] {
        let dev1 = self.lane_deviation(first, lane);
        let dev2 = self.lane_deviation(second, lane);
        let confirmed = if dev1 == dev2 { dev1 } else { 0 };
        self.decoder.decode(confirmed)
    }

    /// The initialization decode for one lane: `-1` readings become
    /// detection events against an all-`+1` reference, which the decode
    /// then restores for this lane.
    fn decode_initialization_lane(&mut self, round: &[u64; 4], lane: usize) -> &[usize] {
        let mut pattern = 0u8;
        for (i, word) in round.iter().enumerate() {
            if (word >> lane) & 1 == 1 {
                pattern |= 1 << i;
            }
        }
        for reference in &mut self.reference {
            *reference &= !(1u64 << lane);
        }
        self.decoder.decode(pattern)
    }
}

/// The single correction time slot of the scalar star, rebuilt here for
/// per-lane use: X and Z corrections on virtual data qubits merged
/// (`X` + `Z` on the same qubit becomes `Y`), `None` when empty.
fn correction_slot(
    layout: &StarLayout,
    x_corrections: &[usize],
    z_corrections: &[usize],
) -> Option<TimeSlot> {
    if x_corrections.is_empty() && z_corrections.is_empty() {
        return None;
    }
    let mut slot = TimeSlot::new();
    for d in 0..9 {
        let x = x_corrections.contains(&d);
        let z = z_corrections.contains(&d);
        let gate = match (x, z) {
            (true, true) => Gate::Y,
            (true, false) => Gate::X,
            (false, true) => Gate::Z,
            (false, false) => continue,
        };
        slot.push(Operation::gate(gate, &[layout.data[d]]));
    }
    Some(slot)
}

/// The per-lane logical value seen through the frame: the physical
/// expectation lane word of the logical-state stabilizer, corrected by
/// the tracked record words on its support. `None` (lane-invariant, the
/// observable depends only on the shared operator planes) when the
/// observable is not deterministic.
fn logical_value_words(
    st: &mut SlicedStack,
    layout: &StarLayout,
    kind: LogicalErrorKind,
) -> Option<u64> {
    let (support, pauli) = match kind {
        LogicalErrorKind::XL => (StarLayout::logical_z_support(Rotation::Normal), Pauli::Z),
        LogicalErrorKind::ZL => (StarLayout::logical_x_support(Rotation::Normal), Pauli::X),
    };
    let support = support.map(|d| layout.data[d]);
    let mut observable = PauliString::identity(st.sim.num_qubits());
    for &q in &support {
        observable.set_op(q, pauli);
    }
    // Tracked X components flip Z-type readouts, tracked Z components
    // flip X-type readouts.
    let mut flip = 0u64;
    if let Some(frame) = st.frame.as_ref() {
        for &q in &support {
            let (x, z) = frame.record_words(q);
            flip ^= match pauli {
                Pauli::Z => x,
                Pauli::X => z,
                _ => unreachable!("logical observables are X- or Z-type"),
            };
        }
    }
    let physical = st.sim.expectation(&observable)?;
    Some(physical ^ flip)
}

/// Runs 64 independent LER trajectories through one shared tableau: the
/// shot-sliced [`run_ler`](crate::experiment::run_ler).
///
/// Lane `k`'s outcome is byte-identical to a scalar run with
/// `seed = lane_seeds[k]` (the `seed` field of `config` is unused —
/// every trajectory's stream comes from `lane_seeds`). The cooperative
/// `cancelled` check is consulted once per window round; when it fires,
/// the still-running lanes report the windows executed so far and the
/// returned flag is `true`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] when
/// `config.physical_error_rate` is outside `[0, 1]`, and propagates core
/// errors (none are expected for valid configurations).
pub fn run_ler_sliced(
    config: &LerConfig,
    lane_seeds: &[u64; LANES],
    cancelled: &dyn Fn() -> bool,
) -> Result<([LerOutcome; LANES], bool), CoreError> {
    let layout = StarLayout::standard(0);
    let mut st = SlicedStack::new(17, lane_seeds, config)?;
    let mut x_tracker = LaneTracker::new(&StarLayout::x_check_supports(Rotation::Normal));
    let mut z_tracker = LaneTracker::new(&StarLayout::z_check_supports(Rotation::Normal));
    let esm = esm_circuit(&layout, Rotation::Normal, DanceMode::All);

    // ---- initialization (diagnostic mode, Listing 5.7 step 1) ----
    // Reset all data qubits (plus the basis rotation for |+>_L).
    let mut prep = Circuit::new();
    for &d in &layout.data {
        prep.prep(d);
    }
    if config.kind == LogicalErrorKind::ZL {
        let mut slot = TimeSlot::new();
        for &d in &layout.data {
            slot.push(Operation::gate(Gate::H, &[d]));
        }
        prep.push_slot(slot);
    }
    st.run_shared(&prep, true)?;

    // First ESM round fixes the gauge — its X-check outcomes on |0..0>
    // (Z-check outcomes on |+..+>) are genuinely random, so this is
    // where the lanes first diverge.
    st.run_shared(&esm, true)?;
    let (x_round, z_round) = st.read_syndromes(&layout);
    for lane in 0..LANES {
        let z_corrections = x_tracker
            .decode_initialization_lane(&x_round, lane)
            .to_vec();
        let x_corrections = z_tracker
            .decode_initialization_lane(&z_round, lane)
            .to_vec();
        if let Some(slot) = correction_slot(&layout, &x_corrections, &z_corrections) {
            st.run_lane_pauli_slot(&slot, lane, true);
        }
    }
    // The remaining d-1 rounds confirm a clean state in every lane.
    for _ in 0..2 {
        st.run_shared(&esm, true)?;
        let (x_round, z_round) = st.read_syndromes(&layout);
        debug_assert_eq!(
            x_tracker.deviation_lanes(&x_round),
            0,
            "gauge fixed by initialization decode"
        );
        debug_assert_eq!(
            z_tracker.deviation_lanes(&z_round),
            0,
            "error-free initialization"
        );
    }
    // Counters cover exactly the counted windows (scalar parity: the
    // stack resets them after initialization).
    st.reset_counters();

    let mut reference = logical_value_words(&mut st, &layout, config.kind)
        .expect("freshly initialized state has a deterministic logical value");

    let mut window_count = 0u64;
    let mut windows = [0u64; LANES];
    let mut logical_errors = [0u64; LANES];
    let mut stopped = false;

    // The scalar loop condition, checked before the first window.
    if config.target_logical_errors == 0 || config.max_windows == 0 {
        st.active = 0;
    }

    while st.active != 0 {
        if cancelled() {
            stopped = true;
            break;
        }
        // run_window: two counted ESM rounds, then the window decision
        // and correction per lane.
        st.run_shared(&esm, false)?;
        let first = st.read_syndromes(&layout);
        st.run_shared(&esm, false)?;
        let second = st.read_syndromes(&layout);
        let mut mask = st.active;
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let z_corrections = x_tracker
                .process_window_lane(&first.0, &second.0, lane)
                .to_vec();
            let x_corrections = z_tracker
                .process_window_lane(&first.1, &second.1, lane)
                .to_vec();
            if let Some(slot) = correction_slot(&layout, &x_corrections, &z_corrections) {
                st.run_lane_pauli_slot(&slot, lane, false);
            }
        }
        window_count += 1;

        // The observable-error gate: one diagnostic ESM round shared by
        // every lane, compared per lane against the references.
        st.run_shared(&esm, true)?;
        let (x_round, z_round) = st.read_syndromes(&layout);
        let error_lanes = x_tracker.deviation_lanes(&x_round) | z_tracker.deviation_lanes(&z_round);
        let check = st.active & !error_lanes;
        if check != 0 {
            if let Some(value) = logical_value_words(&mut st, &layout, config.kind) {
                let changed = (value ^ reference) & check;
                reference ^= changed;
                let mut m = changed;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    logical_errors[k] += 1;
                }
            }
        }

        // Freeze every lane that now meets the scalar exit condition.
        let mut frozen = 0u64;
        let mut m = st.active;
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            m &= m - 1;
            if logical_errors[k] >= config.target_logical_errors
                || window_count >= config.max_windows
            {
                frozen |= 1u64 << k;
                windows[k] = window_count;
            }
        }
        st.active &= !frozen;
    }
    // Lanes still running when the loop stopped cooperatively.
    let mut m = st.active;
    while m != 0 {
        let k = m.trailing_zeros() as usize;
        m &= m - 1;
        windows[k] = window_count;
    }

    let outcomes = core::array::from_fn(|k| LerOutcome {
        windows: windows[k],
        logical_errors: logical_errors[k],
        ops_above_frame: st.ops_above[k],
        slots_above_frame: st.slots_above[k],
        ops_below_frame: st.ops_below[k],
        slots_below_frame: st.slots_below[k],
        injected: st.models[k].counts(),
    });
    Ok((outcomes, stopped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_ler;

    fn seeds(base: u64) -> [u64; LANES] {
        core::array::from_fn(|k| base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k as u64 + 1))
    }

    fn quick(p: f64, with_pf: bool, kind: LogicalErrorKind) -> LerConfig {
        LerConfig {
            physical_error_rate: p,
            kind,
            with_pauli_frame: with_pf,
            target_logical_errors: 2,
            max_windows: 200,
            seed: 0,
        }
    }

    #[test]
    fn zero_noise_runs_all_lanes_to_the_window_cap() {
        for with_pf in [false, true] {
            let mut config = quick(0.0, with_pf, LogicalErrorKind::XL);
            config.max_windows = 10;
            let (outcomes, stopped) = run_ler_sliced(&config, &seeds(1), &|| false).unwrap();
            assert!(!stopped);
            for o in &outcomes {
                assert_eq!(o.windows, 10);
                assert_eq!(o.logical_errors, 0);
                assert_eq!(o.injected.total(), 0);
            }
        }
    }

    #[test]
    fn every_lane_matches_its_scalar_twin_with_frame() {
        let config = quick(0.01, true, LogicalErrorKind::XL);
        let lane_seeds = seeds(0x51CE_D001);
        let (outcomes, stopped) = run_ler_sliced(&config, &lane_seeds, &|| false).unwrap();
        assert!(!stopped);
        for (k, (outcome, &seed)) in outcomes.iter().zip(&lane_seeds).enumerate() {
            let scalar = run_ler(&LerConfig { seed, ..config }).unwrap();
            assert_eq!(*outcome, scalar, "lane {k} diverged from its twin");
        }
    }

    #[test]
    fn every_lane_matches_its_scalar_twin_without_frame() {
        let config = quick(0.008, false, LogicalErrorKind::ZL);
        let lane_seeds = seeds(0x51CE_D002);
        let (outcomes, _) = run_ler_sliced(&config, &lane_seeds, &|| false).unwrap();
        for (k, (outcome, &seed)) in outcomes.iter().zip(&lane_seeds).enumerate() {
            let scalar = run_ler(&LerConfig { seed, ..config }).unwrap();
            assert_eq!(*outcome, scalar, "lane {k} diverged from its twin");
        }
    }

    #[test]
    fn cancellation_reports_partial_windows() {
        let config = quick(0.005, true, LogicalErrorKind::XL);
        let (outcomes, stopped) = run_ler_sliced(&config, &seeds(3), &|| true).unwrap();
        assert!(stopped);
        assert!(outcomes.iter().all(|o| o.windows == 0));
    }

    #[test]
    fn invalid_rate_is_an_error_not_a_panic() {
        let config = quick(1.5, false, LogicalErrorKind::XL);
        let err = run_ler_sliced(&config, &seeds(4), &|| false).unwrap_err();
        assert!(matches!(err, CoreError::InvalidProbability { .. }));
    }
}

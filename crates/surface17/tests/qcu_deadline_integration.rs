//! Real-time degradation of the architecture path: when the arbiter's
//! per-slot budget is exhausted, Pauli tracking is abandoned for the
//! affected operations — records are flushed as physical gates and the
//! operation is forwarded raw. A budget of zero degrades *every*
//! operation, which must leave the command stream (and therefore the
//! final quantum state) identical to a frameless execution: graceful
//! degradation trades the frame's savings for correctness, never
//! correctness itself.

use qpdo_circuit::{Gate, Operation, OperationKind};
use qpdo_core::arch::{PelCommand, QcuInstruction, QuantumControlUnit};
use qpdo_core::CoreError;
use qpdo_rng::rngs::StdRng;
use qpdo_rng::SeedableRng;
use qpdo_stabilizer::StabilizerSim;

/// Applies one operation directly to the simulator — the frameless
/// reference path.
fn apply_direct(sim: &mut StabilizerSim, rng: &mut StdRng, op: &Operation) -> Option<bool> {
    let q = op.qubits();
    match op.kind() {
        OperationKind::Prep => {
            sim.reset(q[0], rng);
            None
        }
        OperationKind::Measure => Some(sim.measure(q[0], rng)),
        OperationKind::Gate(gate) => {
            match gate {
                Gate::I => {}
                Gate::X => sim.x(q[0]),
                Gate::Y => sim.y(q[0]),
                Gate::Z => sim.z(q[0]),
                Gate::H => sim.h(q[0]),
                Gate::S => sim.s(q[0]),
                Gate::Sdg => sim.sdg(q[0]),
                Gate::Cnot => sim.cnot(q[0], q[1]),
                Gate::Cz => sim.cz(q[0], q[1]),
                Gate::Swap => sim.swap(q[0], q[1]),
                other => panic!("reference path cannot execute {other}"),
            }
            None
        }
    }
}

/// Applies PEL commands to the simulator, returning measurement results.
fn execute_pel(
    sim: &mut StabilizerSim,
    rng: &mut StdRng,
    commands: &[PelCommand],
) -> Vec<(usize, bool)> {
    let mut results = Vec::new();
    for PelCommand::Execute(op) in commands {
        if let Some(value) = apply_direct(sim, rng, op) {
            results.push((op.qubits()[0], value));
        }
    }
    results
}

/// A Clifford workload with plenty of Paulis (which a healthy arbiter
/// would absorb into the frame) interleaved with frame-mapping gates and
/// measurements.
fn workload(qubits: usize) -> Vec<Operation> {
    let mut ops: Vec<Operation> = (0..qubits).map(Operation::prep).collect();
    for q in 0..qubits {
        ops.push(Operation::gate(Gate::X, &[q]));
    }
    for q in 0..qubits - 1 {
        ops.push(Operation::gate(Gate::H, &[q]));
        ops.push(Operation::gate(Gate::Cnot, &[q, q + 1]));
        ops.push(Operation::gate(Gate::Z, &[q + 1]));
        ops.push(Operation::gate(Gate::S, &[q]));
        ops.push(Operation::gate(Gate::Y, &[q]));
    }
    for q in 0..qubits {
        ops.push(Operation::measure(q));
    }
    ops
}

#[test]
fn zero_budget_matches_frameless_execution() {
    const QUBITS: usize = 6;
    const SEED: u64 = 77;
    let ops = workload(QUBITS);

    // Reference: no QCU, no frame — raw physical execution.
    let mut ref_sim = StabilizerSim::new(QUBITS);
    let mut ref_rng = StdRng::seed_from_u64(SEED);
    let mut ref_results = Vec::new();
    for op in &ops {
        if let Some(value) = apply_direct(&mut ref_sim, &mut ref_rng, op) {
            ref_results.push((op.qubits()[0], value));
        }
    }

    // Architecture path with a zero real-time budget: every dispatch
    // misses its deadline and degrades to flush + raw forward.
    let mut qcu = QuantumControlUnit::new(QUBITS);
    qcu.set_slot_budget(Some(0));
    let mut sim = StabilizerSim::new(QUBITS);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut results = Vec::new();
    for op in &ops {
        let commands = qcu.issue(QcuInstruction::Physical(op.clone())).unwrap();
        // Degraded mode: nothing is absorbed — every op reaches the PEL.
        assert_eq!(commands.len(), 1, "op {op} must be forwarded raw");
        results.extend(execute_pel(&mut sim, &mut rng, &commands));
    }

    // Identical op streams + identical RNG seeds = bit-identical
    // measurement outcomes. The frame never held a record, so nothing
    // was remapped.
    assert_eq!(results, ref_results);

    let stats = qcu.arbiter().stats();
    assert_eq!(stats.deadline_misses, ops.len() as u64);
    assert_eq!(stats.tracked_paulis, 0, "no Pauli is ever absorbed");
    assert_eq!(
        stats.deadline_flush_gates, 0,
        "records stay I, so degradation flushes no gates"
    );
    let paulis = ops
        .iter()
        .filter(|op| matches!(op.kind(), OperationKind::Gate(Gate::X | Gate::Y | Gate::Z)))
        .count() as u64;
    assert_eq!(stats.deadline_forwarded_paulis, paulis);

    // Every miss was reported as a structured fault event.
    let events = qcu.drain_fault_events();
    assert_eq!(events.len(), ops.len());
    assert!(events
        .iter()
        .all(|e| matches!(e, CoreError::DeadlineMissed { budget: 0, .. })));
}

#[test]
fn zero_budget_measurements_are_not_frame_mapped() {
    // With a budget, an absorbed X would flip the measurement through
    // the frame; with budget 0 the X executes physically instead — the
    // raw result is already correct and must pass through unmapped.
    let mut qcu = QuantumControlUnit::new(2);
    qcu.set_slot_budget(Some(0));
    let mut sim = StabilizerSim::new(2);
    let mut rng = StdRng::seed_from_u64(5);

    for op in [
        Operation::prep(0),
        Operation::gate(Gate::X, &[0]),
        Operation::measure(0),
    ] {
        let commands = qcu.issue(QcuInstruction::Physical(op)).unwrap();
        for (q, raw) in execute_pel(&mut sim, &mut rng, &commands) {
            assert!(raw, "the X executed physically, so the raw result is 1");
            let mapped = qcu.return_measurement(q, raw);
            assert_eq!(mapped, raw, "an I record must not remap the result");
        }
    }
}

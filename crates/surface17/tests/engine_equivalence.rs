//! Full-stack differential oracle: the LER experiment (ESM rounds +
//! decoder + Pauli frame) must produce byte-identical records whether
//! the control stack runs on the packed `StabilizerSim` or the
//! cell-per-entry `ReferenceTableau`.
//!
//! This is the top leg of the engine-equivalence argument: the
//! gate-level oracle lives in `qpdo-stabilizer/tests/differential.rs`;
//! here the engines are driven by the real Surface-17 workload, with the
//! depolarizing error layer, the LUT decoder, and (optionally) the
//! frame layer in between.

#![cfg(feature = "reference")]

use qpdo_surface17::experiment::{run_ler, run_ler_reference, LerConfig, LogicalErrorKind};

fn config(p: f64, kind: LogicalErrorKind, with_pf: bool, seed: u64) -> LerConfig {
    LerConfig {
        physical_error_rate: p,
        kind,
        with_pauli_frame: with_pf,
        target_logical_errors: 3,
        max_windows: 1500,
        seed,
    }
}

#[test]
fn ler_records_are_byte_identical_across_engines() {
    for (i, kind) in [LogicalErrorKind::XL, LogicalErrorKind::ZL]
        .into_iter()
        .enumerate()
    {
        for with_pf in [false, true] {
            for (j, p) in [1e-3, 8e-3].into_iter().enumerate() {
                let seed = 0xEC_0017 + (i as u64) * 31 + (j as u64) * 7 + u64::from(with_pf);
                let cfg = config(p, kind, with_pf, seed);
                let packed = run_ler(&cfg).expect("packed run");
                let reference = run_ler_reference(&cfg).expect("reference run");
                assert_eq!(
                    packed.to_record(),
                    reference.to_record(),
                    "LER record diverged for kind={kind:?} with_pf={with_pf} p={p} seed={seed}"
                );
                // The record covers every counter; check the derived rate
                // too for a readable failure.
                assert_eq!(packed.ler(), reference.ler());
            }
        }
    }
}

#[test]
fn zero_noise_runs_are_identical_and_error_free() {
    let cfg = config(0.0, LogicalErrorKind::XL, true, 42);
    let packed = run_ler(&cfg).expect("packed run");
    let reference = run_ler_reference(&cfg).expect("reference run");
    assert_eq!(packed.to_record(), reference.to_record());
    assert_eq!(packed.logical_errors, 0);
}

//! Driving a ninja star through the *hardware* path of Section 3.5: the
//! Quantum Control Unit decodes instructions, the QEC Cycle Generator
//! emits ESM operations, the Pauli arbiter filters them through the PFU,
//! and the resulting PEL commands execute on a raw stabilizer simulator
//! whose measurement results feed back through the PFU and the Logic
//! Measurement Unit.
//!
//! This is the same physics as the layered `ControlStack` path, executed
//! through the architecture model instead — the two must agree.

use qpdo_circuit::{Gate, Operation, OperationKind};
use qpdo_core::arch::{PelCommand, QcuInstruction, QuantumControlUnit};
use qpdo_pauli::{Pauli, PauliString};
use qpdo_rng::rngs::StdRng;
use qpdo_rng::SeedableRng;
use qpdo_stabilizer::StabilizerSim;
use qpdo_surface17::{esm_circuit, DanceMode, Rotation, StarLayout};

/// The Physical Execution Layer stand-in: applies PEL commands to the
/// simulator and returns raw measurement results as `(qubit, value)`.
fn execute_pel(
    sim: &mut StabilizerSim,
    rng: &mut StdRng,
    commands: &[PelCommand],
) -> Vec<(usize, bool)> {
    let mut results = Vec::new();
    for PelCommand::Execute(op) in commands {
        let q = op.qubits();
        match op.kind() {
            OperationKind::Prep => sim.reset(q[0], rng),
            OperationKind::Measure => results.push((q[0], sim.measure(q[0], rng))),
            OperationKind::Gate(gate) => match gate {
                Gate::I => {}
                Gate::X => sim.x(q[0]),
                Gate::Y => sim.y(q[0]),
                Gate::Z => sim.z(q[0]),
                Gate::H => sim.h(q[0]),
                Gate::S => sim.s(q[0]),
                Gate::Sdg => sim.sdg(q[0]),
                Gate::Cnot => sim.cnot(q[0], q[1]),
                Gate::Cz => sim.cz(q[0], q[1]),
                Gate::Swap => sim.swap(q[0], q[1]),
                other => panic!("PEL cannot execute {other}"),
            },
        }
    }
    results
}

fn build_qcu() -> QuantumControlUnit {
    let mut qcu = QuantumControlUnit::new(17);
    let layout = StarLayout::standard(0);
    qcu.symbol_table_mut()
        .allocate(0, layout.data.to_vec(), layout.all_ancillas());
    // The QEC Cycle Generator: one full ESM round for every live logical
    // qubit, flattened to an operation stream.
    qcu.set_esm_generator(move |table| {
        let mut ops = Vec::new();
        for logical in table.alive() {
            let entry = table.entry(logical).expect("alive");
            let mut star_layout = StarLayout::standard(0);
            star_layout.data.copy_from_slice(&entry.data_qubits);
            for (i, &a) in entry.ancilla_qubits[..4].iter().enumerate() {
                star_layout.x_ancillas[i] = a;
            }
            for (i, &a) in entry.ancilla_qubits[4..].iter().enumerate() {
                star_layout.z_ancillas[i] = a;
            }
            let circuit = esm_circuit(&star_layout, Rotation::Normal, DanceMode::All);
            for slot in circuit.slots() {
                ops.extend(slot.iter().cloned());
            }
        }
        ops
    });
    qcu
}

/// Plain |0..0> initialization: after a QEC slot, gauge-fix the random
/// X-check outcomes by *tracking* Z corrections in the PFU (the whole
/// point of the architecture: corrections never reach the PEL).
fn initialize_logical(qcu: &mut QuantumControlUnit, sim: &mut StabilizerSim, rng: &mut StdRng) {
    let layout = StarLayout::standard(0);
    for &d in &layout.data {
        let commands = qcu
            .issue(QcuInstruction::Physical(Operation::prep(d)))
            .unwrap();
        execute_pel(sim, rng, &commands);
    }
    let commands = qcu.issue(QcuInstruction::QecSlot).unwrap();
    let results = execute_pel(sim, rng, &commands);
    let mut x_syndromes = [false; 4];
    for (q, raw) in results {
        let mapped = qcu.return_measurement(q, raw);
        if let Some(i) = layout.x_ancillas.iter().position(|&a| a == q) {
            x_syndromes[i] = mapped;
        }
    }
    // Decode -1 X checks with the LUT and feed the Z corrections as
    // *instructions*: the arbiter will absorb them into the PFU.
    let lut =
        qpdo_surface17::LutDecoder::for_checks(&StarLayout::x_check_supports(Rotation::Normal));
    let mut pattern = 0u8;
    for (i, &fired) in x_syndromes.iter().enumerate() {
        if fired {
            pattern |= 1 << i;
        }
    }
    for &d in lut.decode(pattern) {
        let commands = qcu
            .issue(QcuInstruction::Physical(Operation::gate(
                Gate::Z,
                &[layout.data[d]],
            )))
            .unwrap();
        assert!(commands.is_empty(), "Pauli corrections never reach the PEL");
    }
}

#[test]
fn qcu_runs_esm_and_filters_corrections() {
    let mut rng = StdRng::seed_from_u64(35);
    let mut sim = StabilizerSim::new(17);
    let mut qcu = build_qcu();
    initialize_logical(&mut qcu, &mut sim, &mut rng);

    // Two more QEC slots: with the PFU holding the gauge corrections as
    // records, the frame-mapped syndromes must read all +1.
    for _ in 0..2 {
        let commands = qcu.issue(QcuInstruction::QecSlot).unwrap();
        let results = execute_pel(&mut sim, &mut rng, &commands);
        for (q, raw) in results {
            let mapped = qcu.return_measurement(q, raw);
            assert!(
                !mapped,
                "syndrome on ancilla {q} should read +1 through the frame"
            );
        }
    }
    let stats = qcu.arbiter().stats();
    assert!(stats.tracked_paulis <= 2, "at most one X and one Z record");
    assert_eq!(stats.flush_gates, 0);
}

#[test]
fn qcu_logical_measurement_through_the_lmu() {
    let mut rng = StdRng::seed_from_u64(36);
    let mut sim = StabilizerSim::new(17);
    let mut qcu = build_qcu();
    initialize_logical(&mut qcu, &mut sim, &mut rng);

    // Apply a logical X as three *tracked* Pauli instructions.
    let layout = StarLayout::standard(0);
    for d in [2usize, 4, 6] {
        let commands = qcu
            .issue(QcuInstruction::Physical(Operation::gate(
                Gate::X,
                &[layout.data[d]],
            )))
            .unwrap();
        assert!(commands.is_empty(), "X_L chain is absorbed by the PFU");
    }

    // Logical measurement: the LMU collects the 9 frame-corrected data
    // results and reports odd parity = logical |1>.
    let commands = qcu
        .issue(QcuInstruction::LogicalMeasure { logical: 0 })
        .unwrap();
    assert_eq!(commands.len(), 9);
    let results = execute_pel(&mut sim, &mut rng, &commands);
    for (q, raw) in results {
        qcu.return_measurement(q, raw);
    }
    assert_eq!(qcu.logical_result(0), Some(true));

    // Cross-check against the physical state: the data qubits were never
    // touched by the X_L chain, yet the logical result is correct —
    // because the frame flipped the measurement results classically.
    let mut z_l = PauliString::identity(17);
    for q in [0usize, 4, 8] {
        z_l.set_op(q, Pauli::Z);
    }
    // (The state collapsed under measurement; nothing more to check on
    // the simulator side — the assertion above is the result.)
    let _ = z_l;
}

#[test]
fn qcu_deallocation_stops_qec() {
    let mut rng = StdRng::seed_from_u64(37);
    let mut sim = StabilizerSim::new(17);
    let mut qcu = build_qcu();
    initialize_logical(&mut qcu, &mut sim, &mut rng);
    qcu.issue(QcuInstruction::Deallocate { logical: 0 })
        .unwrap();
    let commands = qcu.issue(QcuInstruction::QecSlot).unwrap();
    assert!(
        commands.is_empty(),
        "the cycle generator skips deallocated logical qubits"
    );
}

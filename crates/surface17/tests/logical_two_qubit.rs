//! Verification of the transversal logical two-qubit gates
//! (Tables 5.5–5.6) on the stabilizer back-end, including entangling
//! behaviour that the truth tables alone cannot show.

use qpdo_core::{ChpCore, ControlStack};
use qpdo_pauli::{Pauli, PauliString};
use qpdo_surface17::{logical_cnot, logical_cz, NinjaStar, StarLayout};

const N: usize = 26; // two stars sharing one set of ancillas

fn two_star_stack(seed: u64) -> (ControlStack<ChpCore>, NinjaStar, NinjaStar) {
    let mut stack = ControlStack::with_seed(ChpCore::new(), seed);
    stack.create_qubits(N).unwrap();
    // Star A: data 0..9; star B: data 9..18; shared ancillas 18..26.
    let a = NinjaStar::new(StarLayout::with_shared_ancillas(0, 18));
    let b = NinjaStar::new(StarLayout::with_shared_ancillas(9, 18));
    (stack, a, b)
}

/// Logical value of a star through a stabilizer expectation of its
/// (rotation-aware) Z chain.
fn logical_z(stack: &mut ControlStack<ChpCore>, star: &NinjaStar) -> Option<bool> {
    let mut obs = PauliString::identity(N);
    for q in star.logical_z_qubits() {
        obs.set_op(q, Pauli::Z);
    }
    stack.core_mut().simulator_mut().unwrap().expectation(&obs)
}

fn joint_expectation(stack: &mut ControlStack<ChpCore>, ops: &[(usize, Pauli)]) -> Option<bool> {
    let mut obs = PauliString::identity(N);
    for &(q, p) in ops {
        obs.set_op(q, p);
    }
    stack.core_mut().simulator_mut().unwrap().expectation(&obs)
}

fn prepare_basis(
    stack: &mut ControlStack<ChpCore>,
    a: &mut NinjaStar,
    b: &mut NinjaStar,
    bit_a: bool,
    bit_b: bool,
) {
    a.initialize_zero(stack).unwrap();
    b.initialize_zero(stack).unwrap();
    if bit_a {
        a.apply_logical_x(stack).unwrap();
    }
    if bit_b {
        b.apply_logical_x(stack).unwrap();
    }
}

/// Table 5.5: the logical CNOT truth table (star A control, star B
/// target).
#[test]
fn table_5_5_cnot_truth_table() {
    let cases = [
        ((false, false), (false, false)), // |00> -> |00>
        ((true, false), (true, true)),    // |10> -> |11>
        ((false, true), (false, true)),   // |01> -> |01>
        ((true, true), (true, false)),    // |11> -> |10>
    ];
    for (seed, ((ca, cb), (ea, eb))) in cases.into_iter().enumerate() {
        let (mut stack, mut a, mut b) = two_star_stack(seed as u64);
        prepare_basis(&mut stack, &mut a, &mut b, ca, cb);
        let circuit = logical_cnot(
            a.layout(),
            a.properties().rotation,
            b.layout(),
            b.properties().rotation,
        );
        stack.execute_now(circuit).unwrap();
        assert_eq!(logical_z(&mut stack, &a), Some(ea), "control after CNOT");
        assert_eq!(logical_z(&mut stack, &b), Some(eb), "target after CNOT");
    }
}

/// Table 5.6: the logical CZ truth table (diagonal — computational basis
/// states are preserved; the −1 phase on |11⟩ is global and verified by
/// the state-vector experiment binary instead).
#[test]
fn table_5_6_cz_preserves_computational_basis() {
    for (seed, (ca, cb)) in [(false, false), (true, false), (false, true), (true, true)]
        .into_iter()
        .enumerate()
    {
        let (mut stack, mut a, mut b) = two_star_stack(100 + seed as u64);
        prepare_basis(&mut stack, &mut a, &mut b, ca, cb);
        let circuit = logical_cz(
            a.layout(),
            a.properties().rotation,
            b.layout(),
            b.properties().rotation,
        );
        stack.execute_now(circuit).unwrap();
        assert_eq!(logical_z(&mut stack, &a), Some(ca));
        assert_eq!(logical_z(&mut stack, &b), Some(cb));
    }
}

/// CNOT_L on |+0⟩_L creates the logical Bell state: X_L X_L and Z_L Z_L
/// are +1 stabilizers of the pair.
#[test]
fn cnot_entangles_logical_bell_state() {
    let (mut stack, mut a, mut b) = two_star_stack(200);
    a.initialize_plus(&mut stack).unwrap();
    b.initialize_zero(&mut stack).unwrap();
    let circuit = logical_cnot(
        a.layout(),
        a.properties().rotation,
        b.layout(),
        b.properties().rotation,
    );
    stack.execute_now(circuit).unwrap();

    let xx: Vec<(usize, Pauli)> = a
        .logical_x_qubits()
        .into_iter()
        .chain(b.logical_x_qubits())
        .map(|q| (q, Pauli::X))
        .collect();
    assert_eq!(joint_expectation(&mut stack, &xx), Some(false));
    let zz: Vec<(usize, Pauli)> = a
        .logical_z_qubits()
        .into_iter()
        .chain(b.logical_z_qubits())
        .map(|q| (q, Pauli::Z))
        .collect();
    assert_eq!(joint_expectation(&mut stack, &zz), Some(false));
    // Individual logical Z values are now random (entangled).
    assert_eq!(logical_z(&mut stack, &a), None);
}

/// CZ_L on |++⟩_L creates the logical cluster state: X_L ⊗ Z_L and
/// Z_L ⊗ X_L are +1 stabilizers.
#[test]
fn cz_entangles_logical_cluster_state() {
    let (mut stack, mut a, mut b) = two_star_stack(300);
    a.initialize_plus(&mut stack).unwrap();
    b.initialize_plus(&mut stack).unwrap();
    let circuit = logical_cz(
        a.layout(),
        a.properties().rotation,
        b.layout(),
        b.properties().rotation,
    );
    stack.execute_now(circuit).unwrap();

    let xz: Vec<(usize, Pauli)> = a
        .logical_x_qubits()
        .into_iter()
        .map(|q| (q, Pauli::X))
        .chain(b.logical_z_qubits().into_iter().map(|q| (q, Pauli::Z)))
        .collect();
    assert_eq!(joint_expectation(&mut stack, &xz), Some(false));
    let zx: Vec<(usize, Pauli)> = a
        .logical_z_qubits()
        .into_iter()
        .map(|q| (q, Pauli::Z))
        .chain(b.logical_x_qubits().into_iter().map(|q| (q, Pauli::X)))
        .collect();
    assert_eq!(joint_expectation(&mut stack, &zx), Some(false));
}

/// The rotated pairing: after H_L on one star, CNOT_L still implements a
/// correct logical CNOT (orientation-aware transversal pairing).
#[test]
fn cnot_with_mixed_orientations() {
    let (mut stack, mut a, mut b) = two_star_stack(400);
    // |+0⟩ prepared as H_L|0⟩ so star A is in the rotated orientation.
    a.initialize_zero(&mut stack).unwrap();
    a.apply_logical_h(&mut stack).unwrap();
    b.initialize_zero(&mut stack).unwrap();
    assert_ne!(a.properties().rotation, b.properties().rotation);

    let circuit = logical_cnot(
        a.layout(),
        a.properties().rotation,
        b.layout(),
        b.properties().rotation,
    );
    stack.execute_now(circuit).unwrap();
    // Bell state again: X_L X_L and Z_L Z_L stabilize the pair.
    let xx: Vec<(usize, Pauli)> = a
        .logical_x_qubits()
        .into_iter()
        .chain(b.logical_x_qubits())
        .map(|q| (q, Pauli::X))
        .collect();
    assert_eq!(joint_expectation(&mut stack, &xx), Some(false));
    let zz: Vec<(usize, Pauli)> = a
        .logical_z_qubits()
        .into_iter()
        .chain(b.logical_z_qubits())
        .map(|q| (q, Pauli::Z))
        .collect();
    assert_eq!(joint_expectation(&mut stack, &zz), Some(false));
}

/// Measuring both stars after CNOT_L gives perfectly correlated logical
/// outcomes over repeated Bell-state preparations.
#[test]
fn bell_state_logical_measurements_correlate() {
    for seed in 0..6 {
        let (mut stack, mut a, mut b) = two_star_stack(500 + seed);
        a.initialize_plus(&mut stack).unwrap();
        b.initialize_zero(&mut stack).unwrap();
        let circuit = logical_cnot(
            a.layout(),
            a.properties().rotation,
            b.layout(),
            b.properties().rotation,
        );
        stack.execute_now(circuit).unwrap();
        let ma = a.measure_logical(&mut stack).unwrap();
        let mb = b.measure_logical(&mut stack).unwrap();
        assert_eq!(ma, mb, "seed {seed}");
    }
}

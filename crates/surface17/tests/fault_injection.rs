//! Exhaustive single-fault injection: the defining property of a
//! distance-3 fault-tolerant memory is that **no single fault causes a
//! logical error** — including "hook" faults on ancilla qubits between
//! the CNOT slots of an ESM round (the reason the paper uses different
//! interaction patterns for the red and green ancillas, Section 2.5.1).
//!
//! Every Pauli fault (X, Y, Z) on every physical qubit (9 data + 8
//! ancilla) at every slot boundary of an ESM round is injected into an
//! otherwise noise-free run; after at most three follow-up windows the
//! state must be observable-error-free with its logical value intact.

use qpdo_core::{ChpCore, ControlStack};
use qpdo_pauli::{Pauli, PauliString};
use qpdo_surface17::{esm_circuit, DanceMode, NinjaStar, Rotation, StarLayout};

fn logical_value(
    stack: &mut ControlStack<ChpCore>,
    support: [usize; 3],
    pauli: Pauli,
) -> Option<bool> {
    let mut obs = PauliString::identity(17);
    for q in support {
        obs.set_op(q, pauli);
    }
    stack.core_mut().simulator_mut().unwrap().expectation(&obs)
}

fn inject(stack: &mut ControlStack<ChpCore>, q: usize, p: Pauli) {
    let sim = stack.core_mut().simulator_mut().unwrap();
    match p {
        Pauli::X => sim.x(q),
        Pauli::Y => sim.y(q),
        Pauli::Z => sim.z(q),
        Pauli::I => {}
    }
}

/// Runs one fault scenario; returns `(recovered, logical_flipped)`.
fn run_scenario(
    plus_basis: bool,
    fault_qubit: usize,
    fault_pauli: Pauli,
    inject_before_slot: usize, // 0..=8: boundary within round 1
    seed: u64,
) -> (bool, bool) {
    let mut stack = ControlStack::with_seed(ChpCore::new(), seed);
    stack.create_qubits(17).unwrap();
    let mut star = NinjaStar::new(StarLayout::standard(0));
    if plus_basis {
        star.initialize_plus(&mut stack).unwrap();
    } else {
        star.initialize_zero(&mut stack).unwrap();
    }
    let (support, observable) = if plus_basis {
        (star.logical_x_qubits(), Pauli::X)
    } else {
        (star.logical_z_qubits(), Pauli::Z)
    };
    let reference =
        logical_value(&mut stack, support, observable).expect("fresh state deterministic");

    // Round 1 with the fault injected at the chosen slot boundary.
    let esm = esm_circuit(star.layout(), Rotation::Normal, DanceMode::All);
    let slots = esm.slots();
    let mut prefix = qpdo_circuit::Circuit::new();
    for slot in &slots[..inject_before_slot] {
        prefix.push_slot(slot.clone());
    }
    if !prefix.is_empty() {
        stack.execute_now(prefix).unwrap();
    }
    inject(&mut stack, fault_qubit, fault_pauli);
    let mut suffix = qpdo_circuit::Circuit::new();
    for slot in &slots[inject_before_slot..] {
        suffix.push_slot(slot.clone());
    }
    stack.execute_now(suffix).unwrap();
    let first = {
        // Read ancilla outcomes exactly as the star would.
        let read = |ancillas: [usize; 4]| {
            let mut out = [false; 4];
            for (i, &a) in ancillas.iter().enumerate() {
                out[i] = stack.state().bit(a).known().unwrap_or(false);
            }
            out
        };
        let (x_anc, z_anc) = qpdo_surface17::esm_ancillas(star.layout(), Rotation::Normal);
        (read(x_anc), read(z_anc))
    };
    // Round 2 clean, then the decode.
    let second = star.run_esm_round(&mut stack).unwrap();
    star.apply_window_decisions(&mut stack, first, second)
        .unwrap();

    // Up to three follow-up clean windows to flush deferred events.
    let mut recovered = !star.has_observable_error(&mut stack).unwrap();
    for _ in 0..3 {
        if recovered {
            break;
        }
        star.run_window(&mut stack).unwrap();
        recovered = !star.has_observable_error(&mut stack).unwrap();
    }
    let flipped = match logical_value(&mut stack, support, observable) {
        Some(value) => value != reference,
        None => true, // non-deterministic logical value = corrupted state
    };
    (recovered, flipped)
}

/// As `run_scenario`, but injects a correlated two-qubit Pauli pair on
/// the operands of one specific CNOT, right after its slot executes —
/// the error class a faulty two-qubit gate produces (p/15 each in the
/// Section 5.3.1 model).
fn run_gate_fault_scenario(
    plus_basis: bool,
    slot_index: usize,
    gate_in_slot: usize,
    pair: (Pauli, Pauli),
    seed: u64,
) -> Option<(bool, bool)> {
    let mut stack = ControlStack::with_seed(ChpCore::new(), seed);
    stack.create_qubits(17).unwrap();
    let mut star = NinjaStar::new(StarLayout::standard(0));
    if plus_basis {
        star.initialize_plus(&mut stack).unwrap();
    } else {
        star.initialize_zero(&mut stack).unwrap();
    }
    let (support, observable) = if plus_basis {
        (star.logical_x_qubits(), Pauli::X)
    } else {
        (star.logical_z_qubits(), Pauli::Z)
    };
    let reference = logical_value(&mut stack, support, observable)?;

    let esm = esm_circuit(star.layout(), Rotation::Normal, DanceMode::All);
    let slots = esm.slots();
    let target = slots[slot_index].operations().get(gate_in_slot)?.clone();
    let mut prefix = qpdo_circuit::Circuit::new();
    for slot in &slots[..=slot_index] {
        prefix.push_slot(slot.clone());
    }
    stack.execute_now(prefix).unwrap();
    inject(&mut stack, target.qubits()[0], pair.0);
    inject(&mut stack, target.qubits()[1], pair.1);
    let mut suffix = qpdo_circuit::Circuit::new();
    for slot in &slots[slot_index + 1..] {
        suffix.push_slot(slot.clone());
    }
    stack.execute_now(suffix).unwrap();
    let first = {
        let read = |ancillas: [usize; 4]| {
            let mut out = [false; 4];
            for (i, &a) in ancillas.iter().enumerate() {
                out[i] = stack.state().bit(a).known().unwrap_or(false);
            }
            out
        };
        let (x_anc, z_anc) = qpdo_surface17::esm_ancillas(star.layout(), Rotation::Normal);
        (read(x_anc), read(z_anc))
    };
    let second = star.run_esm_round(&mut stack).unwrap();
    star.apply_window_decisions(&mut stack, first, second)
        .unwrap();
    let mut recovered = !star.has_observable_error(&mut stack).unwrap();
    for _ in 0..3 {
        if recovered {
            break;
        }
        star.run_window(&mut stack).unwrap();
        recovered = !star.has_observable_error(&mut stack).unwrap();
    }
    let flipped = match logical_value(&mut stack, support, observable) {
        Some(value) => value != reference,
        None => true,
    };
    Some((recovered, flipped))
}

#[test]
fn no_single_two_qubit_gate_fault_causes_a_logical_error() {
    let pairs: Vec<(Pauli, Pauli)> = Pauli::ALL
        .iter()
        .flat_map(|&a| Pauli::ALL.iter().map(move |&b| (a, b)))
        .filter(|&(a, b)| !(a == Pauli::I && b == Pauli::I))
        .collect();
    let mut failures = Vec::new();
    let mut cases = 0u32;
    for plus_basis in [false, true] {
        for slot_index in 2..6 {
            for gate_in_slot in 0..6 {
                for &pair in &pairs {
                    cases += 1;
                    let Some((recovered, flipped)) = run_gate_fault_scenario(
                        plus_basis,
                        slot_index,
                        gate_in_slot,
                        pair,
                        0xFB_0000 + u64::from(cases),
                    ) else {
                        continue;
                    };
                    if !recovered || flipped {
                        failures.push(format!(
                            "basis={} slot {slot_index} gate {gate_in_slot} pair {:?}: \
                             recovered={recovered} flipped={flipped}",
                            if plus_basis { "|+>" } else { "|0>" },
                            pair,
                        ));
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {cases} gate-fault scenarios broke fault tolerance:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn no_single_fault_causes_a_logical_error() {
    let mut cases = 0u32;
    let mut failures = Vec::new();
    for plus_basis in [false, true] {
        for fault_qubit in 0..17 {
            for fault_pauli in [Pauli::X, Pauli::Y, Pauli::Z] {
                for boundary in 0..=8 {
                    cases += 1;
                    let (recovered, flipped) = run_scenario(
                        plus_basis,
                        fault_qubit,
                        fault_pauli,
                        boundary,
                        0xFA_0000 + u64::from(cases),
                    );
                    if !recovered || flipped {
                        failures.push(format!(
                            "basis={} fault={fault_pauli} q{fault_qubit} before slot {boundary}: \
                             recovered={recovered} flipped={flipped}",
                            if plus_basis { "|+>" } else { "|0>" },
                        ));
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {cases} single-fault scenarios broke fault tolerance:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

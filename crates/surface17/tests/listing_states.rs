//! Reproduction of Listings 5.1–5.2 at test scale: the exact nine-qubit
//! quantum states of `|0⟩_L` and `|1⟩_L` on the universal (state-vector)
//! back-end, extracted from the 17-qubit register after initialization.

use qpdo_core::{ControlStack, SvCore};
use qpdo_statevector::Complex;
use qpdo_surface17::{NinjaStar, StarLayout};

/// The X-stabilizer generator bit masks over the 9 data qubits.
const X_GENERATOR_MASKS: [usize; 4] = [
    0b000011011, // X0X1X3X4
    0b000000110, // X1X2
    0b110110000, // X4X5X7X8
    0b011000000, // X6X7
];

/// The 16 basis states of the `|b⟩_L` superposition: the orbit of the
/// X-stabilizer group over `|b · (D2 D4 D6 ... pattern)⟩`.
fn expected_support(logical_one: bool) -> Vec<usize> {
    let seed = if logical_one { 0b001010100 } else { 0 }; // X2X4X6 applied
    let mut support = Vec::with_capacity(16);
    for combo in 0..16usize {
        let mut mask = seed;
        for (bit, gen) in X_GENERATOR_MASKS.iter().enumerate() {
            if combo >> bit & 1 != 0 {
                mask ^= gen;
            }
        }
        support.push(mask);
    }
    support.sort_unstable();
    support.dedup();
    support
}

fn data_state_of(stack: &ControlStack<SvCore>) -> Vec<Complex> {
    let sim = stack.core().simulator().unwrap();
    sim.partial_state(&(0..9).collect::<Vec<_>>(), 1e-9)
        .expect("data qubits factor out after ancilla collapse")
}

fn assert_uniform_over(amps: &[Complex], support: &[usize]) {
    assert_eq!(amps.len(), 512);
    let expected_amp = 0.25;
    for (idx, amp) in amps.iter().enumerate() {
        if support.contains(&idx) {
            assert!(
                (amp.norm() - expected_amp).abs() < 1e-9,
                "basis {idx:09b}: |amp| = {}",
                amp.norm()
            );
        } else {
            assert!(amp.norm() < 1e-9, "unexpected amplitude at {idx:09b}");
        }
    }
    // All 16 amplitudes share one phase (the listing shows +0.25 each).
    let anchor = amps[support[0]];
    for &idx in support {
        assert!(
            (amps[idx] * anchor.conj()).im.abs() < 1e-9 && (amps[idx] * anchor.conj()).re > 0.0,
            "phase mismatch at {idx:09b}"
        );
    }
}

/// Listing 5.1: the post-initialization `|0⟩_L` state is the uniform
/// 16-term superposition with amplitude 0.25.
#[test]
fn listing_5_1_zero_state() {
    let mut stack = ControlStack::with_seed(SvCore::new(), 51);
    stack.create_qubits(17).unwrap();
    let mut star = NinjaStar::new(StarLayout::standard(0));
    star.initialize_zero(&mut stack).unwrap();
    let data = data_state_of(&stack);
    let support = expected_support(false);
    assert_eq!(support.len(), 16);
    assert_uniform_over(&data, &support);
}

/// Listing 5.2: applying `X_L` yields the `|1⟩_L` 16-term superposition.
#[test]
fn listing_5_2_one_state() {
    let mut stack = ControlStack::with_seed(SvCore::new(), 52);
    stack.create_qubits(17).unwrap();
    let mut star = NinjaStar::new(StarLayout::standard(0));
    star.initialize_zero(&mut stack).unwrap();
    star.apply_logical_x(&mut stack).unwrap();
    let data = data_state_of(&stack);
    let support = expected_support(true);
    assert_uniform_over(&data, &support);
    // The two supports are disjoint: orthogonal logical states.
    let zero_support = expected_support(false);
    assert!(support.iter().all(|s| !zero_support.contains(s)));
}

/// Initialization is reproducible over many random gauge outcomes
/// (the paper repeated it for 100 iterations; we use 12 distinct seeds).
#[test]
fn initialization_always_reaches_the_same_state() {
    let support = expected_support(false);
    for seed in 0..12 {
        let mut stack = ControlStack::with_seed(SvCore::new(), 1000 + seed);
        stack.create_qubits(17).unwrap();
        let mut star = NinjaStar::new(StarLayout::standard(0));
        star.initialize_zero(&mut stack).unwrap();
        let data = data_state_of(&stack);
        assert_uniform_over(&data, &support);
    }
}

/// `H_L |0⟩_L` has uniform support over the *Z-orbit* instead: 16 states
/// of the `|+⟩_L`-like rotated state.
#[test]
fn hadamard_state_support() {
    let mut stack = ControlStack::with_seed(SvCore::new(), 53);
    stack.create_qubits(17).unwrap();
    let mut star = NinjaStar::new(StarLayout::standard(0));
    star.initialize_zero(&mut stack).unwrap();
    star.apply_logical_h(&mut stack).unwrap();
    let data = data_state_of(&stack);
    // H on every qubit of a uniform X-orbit state gives a state whose
    // support is the dual group: all 512 amplitudes have magnitude
    // |⟨x|H⊗9|ψ⟩| ∈ {0, 1/√32}; exactly 256 are non-zero (the even-parity
    // overlap condition halves the space... verified numerically instead:
    // count non-zero amplitudes and check normalization).
    let nonzero: Vec<f64> = data
        .iter()
        .map(|a| a.norm())
        .filter(|n| *n > 1e-9)
        .collect();
    let total: f64 = data.iter().map(|a| a.norm_sqr()).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // All non-zero amplitudes share one magnitude.
    let first = nonzero[0];
    assert!(nonzero.iter().all(|n| (n - first).abs() < 1e-9));
}

//! Special functions needed for exact t-test p-values.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~15 significant digits for positive arguments, which is far
/// beyond what the t-tests need.
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // published Lanczos constants
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The regularized incomplete beta function `I_x(a, b)`.
///
/// Computed through the standard continued-fraction expansion (Numerical
/// Recipes `betacf`), using the symmetry `I_x(a,b) = 1 - I_{1-x}(b,a)` to
/// stay in the rapidly-converging regime.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `x` is outside `[0, 1]`.
#[must_use]
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            assert_close(ln_gamma((n + 1) as f64), f.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
        // Γ(3/2) = √π/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    fn beta_boundary_values() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.42)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert_close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn beta_known_values() {
        // I_x(2, 2) = x²(3 - 2x).
        for x in [0.2, 0.5, 0.8] {
            assert_close(
                regularized_incomplete_beta(2.0, 2.0, x),
                x * x * (3.0 - 2.0 * x),
                1e-12,
            );
        }
        // I_x(1/2, 1/2) = (2/π)·asin(√x)  (arcsine distribution).
        for x in [0.1, 0.5, 0.9] {
            assert_close(
                regularized_incomplete_beta(0.5, 0.5, x),
                2.0 / std::f64::consts::PI * x.sqrt().asin(),
                1e-10,
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}

//! Binomial proportion confidence intervals.
//!
//! The serving layer's anytime-partial results (`DESIGN.md` §14) report
//! a logical-error-rate estimate over whatever prefix of a Monte-Carlo
//! sweep completed before the deadline. A point estimate alone is
//! misleading at small counts, so the partial record carries a Wilson
//! score interval: unlike the Wald interval it never escapes `[0, 1]`,
//! stays sensible at zero observed failures, and needs nothing beyond
//! arithmetic — no special functions, no tables.

/// The two-sided Wilson score interval for a binomial proportion.
///
/// `successes` of `trials` events observed; `z` is the standard-normal
/// quantile for the desired coverage (1.96 ≈ 95 %). Returns
/// `(lower, upper)` with `0 ≤ lower ≤ p̂ ≤ upper ≤ 1`.
///
/// Returns `(0.0, 1.0)` — the vacuous interval — for zero trials, and
/// clamps `successes` to `trials` so corrupt counters cannot produce an
/// interval outside the unit range.
///
/// # Example
///
/// ```
/// use qpdo_stats::wilson_interval;
///
/// let (lo, hi) = wilson_interval(3, 1000, 1.96);
/// assert!(lo > 0.0 && lo < 0.003 && hi > 0.003 && hi < 0.02);
/// ```
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes.min(trials) as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    let lower = ((center - margin) / denom).clamp(0.0, 1.0);
    let upper = ((center + margin) / denom).clamp(0.0, 1.0);
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    const Z95: f64 = 1.96;

    #[test]
    fn zero_trials_is_vacuous() {
        assert_eq!(wilson_interval(0, 0, Z95), (0.0, 1.0));
    }

    #[test]
    fn interval_brackets_the_point_estimate() {
        for &(k, n) in &[(0u64, 10u64), (1, 10), (5, 10), (10, 10), (3, 20_000)] {
            let (lo, hi) = wilson_interval(k, n, Z95);
            let p = k as f64 / n as f64;
            assert!(lo <= p && p <= hi, "({k}, {n}): [{lo}, {hi}] vs {p}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn zero_failures_still_has_positive_upper_bound() {
        let (lo, hi) = wilson_interval(0, 100, Z95);
        assert_eq!(lo, 0.0);
        // Rule-of-three ballpark: 3/n ≈ 0.03; Wilson lands near 0.037.
        assert!(hi > 0.01 && hi < 0.06, "upper {hi}");
    }

    #[test]
    fn all_failures_is_mirrored() {
        let (lo0, hi0) = wilson_interval(0, 50, Z95);
        let (lo1, hi1) = wilson_interval(50, 50, Z95);
        assert!((lo1 - (1.0 - hi0)).abs() < 1e-12);
        assert!((hi1 - (1.0 - lo0)).abs() < 1e-12);
    }

    #[test]
    fn known_value_95pct() {
        // k=10, n=100: Wilson 95 % interval ≈ [0.0552, 0.1744].
        let (lo, hi) = wilson_interval(10, 100, Z95);
        assert!((lo - 0.05522).abs() < 5e-4, "lower {lo}");
        assert!((hi - 0.17436).abs() < 5e-4, "upper {hi}");
    }

    #[test]
    fn tightens_with_more_trials() {
        let (lo1, hi1) = wilson_interval(5, 100, Z95);
        let (lo2, hi2) = wilson_interval(500, 10_000, Z95);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn corrupt_successes_above_trials_are_clamped() {
        let (lo, hi) = wilson_interval(u64::MAX, 10, Z95);
        assert!(lo <= 1.0 && hi <= 1.0 && lo <= hi);
    }
}

use std::fmt;

use crate::special::regularized_incomplete_beta;
use crate::Summary;

/// The result of a Student t-test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// Two-tailed p-value (the "ρ-value" of Figs 5.21–5.24).
    pub p_value: f64,
}

/// Error returned when a t-test cannot be computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TTestError {
    /// A sample had fewer than two observations.
    TooFewSamples,
    /// Paired test received samples of different lengths.
    UnequalLengths,
    /// Both samples have zero variance and equal means (t is 0/0).
    DegenerateVariance,
}

impl fmt::Display for TTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TTestError::TooFewSamples => "each sample needs at least two observations",
            TTestError::UnequalLengths => "paired samples must have equal lengths",
            TTestError::DegenerateVariance => "zero variance in both samples with equal means",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TTestError {}

/// Two-tailed p-value of a Student t statistic with `df` degrees of
/// freedom: `p = I_{df/(df+t²)}(df/2, 1/2)`.
///
/// # Panics
///
/// Panics if `df <= 0` or `t` is not finite.
#[must_use]
pub fn student_t_two_tailed_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    assert!(t.is_finite(), "t statistic must be finite");
    regularized_incomplete_beta(df / 2.0, 0.5, df / (df + t * t))
}

/// Independent (unpaired) two-sample Student t-test with pooled variance.
///
/// This matches the classic equal-variance `ttest_ind` the paper applies
/// to the with-/without-Pauli-frame LER samples (Figs 5.21, 5.23).
///
/// # Errors
///
/// Returns an error if either sample has fewer than two observations, or
/// if both samples are constant with equal means.
pub fn independent_t_test(a: &[f64], b: &[f64]) -> Result<TTest, TTestError> {
    if a.len() < 2 || b.len() < 2 {
        return Err(TTestError::TooFewSamples);
    }
    let sa = Summary::from_slice(a).expect("non-empty");
    let sb = Summary::from_slice(b).expect("non-empty");
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let df = na + nb - 2.0;
    let pooled_var = ((na - 1.0) * sa.variance + (nb - 1.0) * sb.variance) / df;
    let denom = (pooled_var * (1.0 / na + 1.0 / nb)).sqrt();
    let diff = sa.mean - sb.mean;
    if denom == 0.0 {
        if diff == 0.0 {
            return Err(TTestError::DegenerateVariance);
        }
        // Identical constants vs different constant: infinitely significant.
        return Ok(TTest {
            t: f64::INFINITY.copysign(diff),
            df,
            p_value: 0.0,
        });
    }
    let t = diff / denom;
    Ok(TTest {
        t,
        df,
        p_value: student_t_two_tailed_p(t, df),
    })
}

/// Paired two-sample Student t-test (`ttest_rel`): a one-sample test on
/// the per-index differences (Figs 5.22, 5.24).
///
/// # Errors
///
/// Returns an error if the samples differ in length, have fewer than two
/// pairs, or if the differences are identically zero.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTest, TTestError> {
    if a.len() != b.len() {
        return Err(TTestError::UnequalLengths);
    }
    if a.len() < 2 {
        return Err(TTestError::TooFewSamples);
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let s = Summary::from_slice(&diffs).expect("non-empty");
    let n = diffs.len() as f64;
    let df = n - 1.0;
    let denom = s.std_dev / n.sqrt();
    if denom == 0.0 {
        if s.mean == 0.0 {
            return Err(TTestError::DegenerateVariance);
        }
        return Ok(TTest {
            t: f64::INFINITY.copysign(s.mean),
            df,
            p_value: 0.0,
        });
    }
    let t = s.mean / denom;
    Ok(TTest {
        t,
        df,
        p_value: student_t_two_tailed_p(t, df),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn p_value_analytic_df1() {
        // df = 1 is the Cauchy distribution: p = 1 - 2·atan(t)/π.
        for t in [0.0f64, 0.5, 1.0, 2.0, 10.0] {
            let expected = 1.0 - 2.0 * t.atan() / std::f64::consts::PI;
            assert_close(student_t_two_tailed_p(t, 1.0), expected, 1e-10);
        }
    }

    #[test]
    fn p_value_analytic_df2() {
        // df = 2: p = 1 - t/√(t²+2).
        for t in [0.0f64, 1.0, 3.0] {
            let expected = 1.0 - t / (t * t + 2.0).sqrt();
            assert_close(student_t_two_tailed_p(t, 2.0), expected, 1e-10);
        }
    }

    #[test]
    fn p_value_symmetric_in_t() {
        assert_close(
            student_t_two_tailed_p(-1.7, 9.0),
            student_t_two_tailed_p(1.7, 9.0),
            1e-14,
        );
    }

    #[test]
    fn p_value_zero_t_is_one() {
        for df in [1.0, 5.0, 30.0] {
            assert_close(student_t_two_tailed_p(0.0, df), 1.0, 1e-14);
        }
    }

    #[test]
    fn independent_test_known_case() {
        // Reference values computed from the analytic pooled-t formula:
        // a: mean 30.1, b: mean 20.1, classic textbook case.
        let a = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
        let b = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];
        let r = independent_t_test(&a, &b).unwrap();
        assert_eq!(r.df, 10.0);
        // scipy.stats.ttest_ind gives t = 1.959, p = 0.0805 for this data.
        assert_close(r.t, 1.959, 5e-3);
        assert_close(r.p_value, 0.0805, 5e-3);
    }

    #[test]
    fn paired_test_known_case() {
        let a = [12.0, 14.0, 11.0, 16.0, 13.0];
        let b = [10.0, 13.0, 10.0, 15.0, 11.0];
        // diffs = [2, 1, 1, 1, 2]; mean=1.4, sd=0.5477; t = 1.4/(0.5477/√5)
        let r = paired_t_test(&a, &b).unwrap();
        assert_eq!(r.df, 4.0);
        assert_close(r.t, 5.715, 5e-3);
        // scipy.stats.ttest_rel gives p ≈ 0.00464.
        assert_close(r.p_value, 0.00464, 5e-4);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = independent_t_test(&a, &a).unwrap();
        assert_close(r.t, 0.0, 1e-14);
        assert_close(r.p_value, 1.0, 1e-12);
        assert_eq!(paired_t_test(&a, &a), Err(TTestError::DegenerateVariance));
    }

    #[test]
    fn clearly_different_samples_significant() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.95];
        let b = [9.0, 9.1, 8.9, 9.05, 8.95];
        let r = independent_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-10);
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            independent_t_test(&[1.0], &[1.0, 2.0]),
            Err(TTestError::TooFewSamples)
        );
        assert_eq!(
            paired_t_test(&[1.0, 2.0], &[1.0]),
            Err(TTestError::UnequalLengths)
        );
    }

    #[test]
    fn constant_but_different_samples() {
        let r = independent_t_test(&[2.0, 2.0, 2.0], &[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.t.is_infinite() && r.t < 0.0);
    }
}

use std::collections::BTreeMap;
use std::fmt;

/// A labelled frequency histogram, as used for the odd-Bell-state
/// measurement results of Fig 5.7.
///
/// Labels are kept in sorted order so rendered histograms are stable.
///
/// # Example
///
/// ```
/// use qpdo_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record("|01>");
/// h.record("|10>");
/// h.record("|01>");
/// assert_eq!(h.count("|01>"), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<String, u64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Increments the count for `label`.
    pub fn record(&mut self, label: impl Into<String>) {
        *self.counts.entry(label.into()).or_insert(0) += 1;
    }

    /// Registers a label with count zero if absent (so empty bins render).
    pub fn ensure_bin(&mut self, label: impl Into<String>) {
        self.counts.entry(label.into()).or_insert(0);
    }

    /// The count for `label` (0 if never recorded).
    #[must_use]
    pub fn count(&self, label: &str) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// Total number of recorded events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The relative frequency of `label` (0 for an empty histogram).
    #[must_use]
    pub fn frequency(&self, label: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(label) as f64 / total as f64
        }
    }

    /// Iterates over `(label, count)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The number of distinct labels.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }
}

impl fmt::Display for Histogram {
    /// Renders an ASCII bar chart, one row per label.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.values().copied().max().unwrap_or(0);
        let width = 50u64;
        for (label, &count) in &self.counts {
            let bar_len = (count * width).checked_div(max).unwrap_or(0);
            let bar: String = std::iter::repeat_n('#', bar_len as usize).collect();
            writeln!(f, "{label:>8} | {bar} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut h = Histogram::new();
        h.record("a");
        h.record("a");
        h.record("b");
        assert_eq!(h.count("a"), 2);
        assert_eq!(h.count("b"), 1);
        assert_eq!(h.count("c"), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins(), 2);
    }

    #[test]
    fn frequencies() {
        let mut h = Histogram::new();
        assert_eq!(h.frequency("x"), 0.0);
        h.record("x");
        h.record("y");
        assert!((h.frequency("x") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ensure_bin_keeps_zero() {
        let mut h = Histogram::new();
        h.ensure_bin("|00>");
        h.record("|11>");
        let labels: Vec<&str> = h.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, ["|00>", "|11>"]);
        assert_eq!(h.count("|00>"), 0);
    }

    #[test]
    fn display_renders_bars() {
        let mut h = Histogram::new();
        h.record("|01>");
        h.record("|01>");
        h.record("|10>");
        let s = h.to_string();
        assert!(s.contains("|01>"));
        assert!(s.contains("##"));
        assert!(s.contains(" 2"));
    }

    #[test]
    fn sorted_iteration() {
        let mut h = Histogram::new();
        h.record("b");
        h.record("a");
        let labels: Vec<&str> = h.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, ["a", "b"]);
    }
}

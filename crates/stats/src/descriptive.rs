/// Descriptive statistics of a sample: count, mean, sample variance,
/// standard deviation and the coefficient of variation.
///
/// The coefficient of variation `σ/μ` is the "relative standard deviation"
/// the paper plots for window counts in Figs 5.19–5.20 (it hovers around
/// 13 % at all physical error rates).
///
/// # Example
///
/// ```
/// use qpdo_stats::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert!((s.mean - 5.0).abs() < 1e-12);
/// assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (`n - 1` denominator); 0 for one sample.
    pub variance: f64,
    /// Square root of the variance.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty slice.
    ///
    /// Uses Welford's online algorithm for numerical stability.
    #[must_use]
    pub fn from_slice(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for (i, &x) in data.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        let count = data.len();
        let variance = if count > 1 {
            m2 / (count - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            count,
            mean,
            variance,
            std_dev: variance.sqrt(),
        })
    }

    /// The coefficient of variation `σ/μ` (Eq. 5.4 of the paper).
    ///
    /// Returns `None` when the mean is zero.
    #[must_use]
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev / self.mean)
        }
    }

    /// Standard error of the mean, `σ/√n`.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        self.std_dev / (self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::from_slice(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_slice(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample variance: ((1.5² + .5² + .5² + 1.5²)) / 3 = 5/3
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[10.0, 12.0, 8.0, 10.0]).unwrap();
        let cv = s.coefficient_of_variation().unwrap();
        assert!((cv - s.std_dev / 10.0).abs() < 1e-12);
        let zero = Summary::from_slice(&[-1.0, 1.0]).unwrap();
        assert!(zero.coefficient_of_variation().is_none());
    }

    #[test]
    fn standard_error() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.standard_error() - s.std_dev / 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive two-pass sums.
        let base = 1e9;
        let data: Vec<f64> = [4.0, 7.0, 13.0, 16.0].iter().map(|x| x + base).collect();
        let s = Summary::from_slice(&data).unwrap();
        assert!((s.variance - 30.0).abs() < 1e-4, "variance {}", s.variance);
    }
}

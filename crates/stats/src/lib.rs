//! Statistics for the QPDO evaluation.
//!
//! Implements exactly the statistical machinery Chapter 5 of the paper
//! uses, with no external numeric dependencies:
//!
//! - [`Summary`] — mean, sample standard deviation and the coefficient of
//!   variation (relative standard deviation) used in Figs 5.17–5.20.
//! - [`independent_t_test`] / [`paired_t_test`] — the two Student t-tests
//!   of Figs 5.21–5.24, with exact two-tailed p-values computed through
//!   the regularized incomplete beta function.
//! - [`Histogram`] — the measurement-outcome histograms of Fig 5.7.
//! - [`wilson_interval`] — the binomial confidence interval attached to
//!   anytime-partial shot-sweep results by the serving layer.
//!
//! # Example
//!
//! ```
//! use qpdo_stats::{independent_t_test, Summary};
//!
//! let a = [5.0, 5.1, 4.9, 5.05, 4.95];
//! let b = [5.02, 5.08, 4.93, 5.01, 4.96];
//! let test = independent_t_test(&a, &b).unwrap();
//! assert!(test.p_value > 0.05); // not significantly different
//! let s = Summary::from_slice(&a).unwrap();
//! assert!((s.mean - 5.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod descriptive;
mod histogram;
mod interval;
mod special;
mod ttest;

pub use descriptive::Summary;
pub use histogram::Histogram;
pub use interval::wilson_interval;
pub use special::{ln_gamma, regularized_incomplete_beta};
pub use ttest::{independent_t_test, paired_t_test, student_t_two_tailed_p, TTest, TTestError};

//! Generic distance-`d` rotated surface codes — the paper's future-work
//! extension (Chapter 6): *"repeat these experiments using a larger
//! distance surface code to verify our expectation that there will be no
//! benefit in LER by using a Pauli frame"*.
//!
//! The crate provides:
//!
//! - [`RotatedSurfaceCode`] — the rotated (SC17-style) planar code for
//!   any odd distance `d ≥ 3`: `d²` data qubits, `d² − 1` weight-2/4
//!   checks, the conflict-free 8-slot ESM schedule generalizing
//!   Table 5.8, and the logical operators.
//! - [`MatchingDecoder`] — a minimum-weight defect-matching decoder,
//!   exact for the sparse syndromes that dominate below threshold,
//!   standing in for the Blossom algorithm the paper cites for larger
//!   codes; dense syndromes hand off to the union-find decoder.
//! - [`UnionFindDecoder`] — the Delfosse–Nickerson union-find decoder:
//!   near-linear cluster growth + peeling, decoding any odd distance at
//!   any defect density. Not minimum-weight; its logical failure rate is
//!   gated against the matching oracle by `tests/uf_oracle.rs`.
//! - [`experiment`] — the distance-scaling LER drivers: the circuit-level
//!   Pauli-frame comparison with `d − 1` syndrome rounds per window
//!   ([`experiment::run_distance_ler`]), and the 64-lane shot-sliced
//!   code-capacity sweep behind the d = 3…13 threshold workload
//!   ([`experiment::run_ler_surface`]).
//!
//! At `d = 3` the code reproduces exactly the SC17 stabilizers of
//! Table 2.1 (checked in tests), so the extension is a strict superset of
//! the paper's system.
//!
//! # Example
//!
//! ```
//! use qpdo_surface::RotatedSurfaceCode;
//!
//! let code = RotatedSurfaceCode::new(5);
//! assert_eq!(code.num_data_qubits(), 25);
//! assert_eq!(code.checks().len(), 24);
//! assert_eq!(code.num_qubits(), 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod decoder;
pub mod experiment;
mod uf;

pub use code::{Check, CheckKind, RotatedSurfaceCode};
pub use decoder::MatchingDecoder;
pub use uf::UnionFindDecoder;

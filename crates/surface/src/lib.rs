//! Generic distance-`d` rotated surface codes — the paper's future-work
//! extension (Chapter 6): *"repeat these experiments using a larger
//! distance surface code to verify our expectation that there will be no
//! benefit in LER by using a Pauli frame"*.
//!
//! The crate provides:
//!
//! - [`RotatedSurfaceCode`] — the rotated (SC17-style) planar code for
//!   any odd distance `d ≥ 3`: `d²` data qubits, `d² − 1` weight-2/4
//!   checks, the conflict-free 8-slot ESM schedule generalizing
//!   Table 5.8, and the logical operators.
//! - [`MatchingDecoder`] — a minimum-weight defect-matching decoder
//!   (exact for the sparse syndromes that dominate below threshold,
//!   greedy beyond), standing in for the Blossom algorithm the paper
//!   cites for larger codes.
//! - [`experiment`] — the distance-scaling LER driver with `d − 1`
//!   syndrome rounds per window and majority-vote filtering of
//!   measurement errors, with and without a Pauli frame.
//!
//! At `d = 3` the code reproduces exactly the SC17 stabilizers of
//! Table 2.1 (checked in tests), so the extension is a strict superset of
//! the paper's system.
//!
//! # Example
//!
//! ```
//! use qpdo_surface::RotatedSurfaceCode;
//!
//! let code = RotatedSurfaceCode::new(5);
//! assert_eq!(code.num_data_qubits(), 25);
//! assert_eq!(code.checks().len(), 24);
//! assert_eq!(code.num_qubits(), 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod decoder;
pub mod experiment;

pub use code::{Check, CheckKind, RotatedSurfaceCode};
pub use decoder::MatchingDecoder;

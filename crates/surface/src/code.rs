use qpdo_circuit::{Circuit, Gate, Operation, TimeSlot};
use qpdo_pauli::{Pauli, PauliString};

/// Whether a check measures X or Z parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// X-parity check (detects Z errors).
    X,
    /// Z-parity check (detects X errors).
    Z,
}

/// One parity check of a rotated surface code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Check {
    /// X or Z parity.
    pub kind: CheckKind,
    /// Plaquette coordinates `(r, c)` with `0 ≤ r, c ≤ d`.
    pub coords: (usize, usize),
    /// Data-qubit indices in the support (2 on boundaries, 4 inside).
    pub support: Vec<usize>,
    /// The physical ancilla qubit serving this check.
    pub ancilla: usize,
}

/// A distance-`d` rotated planar surface code (odd `d ≥ 3`).
///
/// Data qubit `(i, j)` (row `i`, column `j`, both `0..d`) has index
/// `i·d + j`. Plaquette `(r, c)` covers the up-to-four data qubits
/// `(r-1, c-1), (r-1, c), (r, c-1), (r, c)`; its kind is X when `r + c`
/// is even. Weight-2 plaquettes survive only on the matching boundary:
/// X checks on the top/bottom rows, Z checks on the left/right columns —
/// for `d = 3` this is exactly the ninja star of Fig 2.1.
///
/// Logical operators use the SC17 convention of Fig 2.4 generalized:
/// `Z_L` is the Z chain on the main diagonal (`Z0 Z4 Z8` at `d = 3`) and
/// `X_L` the X chain on the anti-diagonal (`X2 X4 X6`). Both overlap
/// every check evenly and each other once (at the centre), so they
/// commute with the stabilizer group and anticommute with each other.
#[derive(Clone, Debug)]
pub struct RotatedSurfaceCode {
    d: usize,
    checks: Vec<Check>,
}

impl RotatedSurfaceCode {
    /// Builds the distance-`d` code.
    ///
    /// # Panics
    ///
    /// Panics unless `d` is odd and at least 3.
    #[must_use]
    pub fn new(d: usize) -> Self {
        assert!(d >= 3 && d % 2 == 1, "rotated codes need odd distance >= 3");
        let mut checks = Vec::new();
        let mut ancilla = d * d;
        for r in 0..=d {
            for c in 0..=d {
                let kind = if (r + c) % 2 == 0 {
                    CheckKind::X
                } else {
                    CheckKind::Z
                };
                let support = Self::support_of(d, r, c);
                let keep = match support.len() {
                    4 => true,
                    2 => match kind {
                        CheckKind::X => r == 0 || r == d,
                        CheckKind::Z => c == 0 || c == d,
                    },
                    _ => false,
                };
                if keep {
                    checks.push(Check {
                        kind,
                        coords: (r, c),
                        support,
                        ancilla,
                    });
                    ancilla += 1;
                }
            }
        }
        debug_assert_eq!(checks.len(), d * d - 1);
        RotatedSurfaceCode { d, checks }
    }

    fn support_of(d: usize, r: usize, c: usize) -> Vec<usize> {
        let mut support = Vec::with_capacity(4);
        for (di, dj) in [(1usize, 1usize), (1, 0), (0, 1), (0, 0)] {
            let (i, j) = (r.wrapping_sub(di), c.wrapping_sub(dj));
            if i < d && j < d {
                support.push(i * d + j);
            }
        }
        support.sort_unstable();
        support
    }

    /// The code distance.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.d
    }

    /// The number of data qubits, `d²`.
    #[must_use]
    pub fn num_data_qubits(&self) -> usize {
        self.d * self.d
    }

    /// The total register size: `d²` data + `d² − 1` ancillas.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        2 * self.d * self.d - 1
    }

    /// All checks, in construction (row-major plaquette) order.
    #[must_use]
    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    /// The checks of one kind, in construction order.
    pub fn checks_of(&self, kind: CheckKind) -> impl Iterator<Item = &Check> {
        self.checks.iter().filter(move |ch| ch.kind == kind)
    }

    /// The data-qubit index of grid position `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is off-grid.
    #[must_use]
    pub fn data_index(&self, i: usize, j: usize) -> usize {
        assert!(i < self.d && j < self.d, "data position off-grid");
        i * self.d + j
    }

    /// The support of the logical Z operator: the main diagonal
    /// (`D0, D4, D8` at `d = 3`).
    #[must_use]
    pub fn logical_z_support(&self) -> Vec<usize> {
        (0..self.d).map(|i| self.data_index(i, i)).collect()
    }

    /// The support of the logical X operator: the anti-diagonal
    /// (`D2, D4, D6` at `d = 3`).
    #[must_use]
    pub fn logical_x_support(&self) -> Vec<usize> {
        (0..self.d)
            .map(|i| self.data_index(i, self.d - 1 - i))
            .collect()
    }

    /// The logical Z operator as a Pauli string over the full register.
    #[must_use]
    pub fn logical_z_string(&self) -> PauliString {
        let mut s = PauliString::identity(self.num_qubits());
        for q in self.logical_z_support() {
            s.set_op(q, Pauli::Z);
        }
        s
    }

    /// The logical X operator as a Pauli string over the full register.
    #[must_use]
    pub fn logical_x_string(&self) -> PauliString {
        let mut s = PauliString::identity(self.num_qubits());
        for q in self.logical_x_support() {
            s.set_op(q, Pauli::X);
        }
        s
    }

    /// The stabilizer generators as Pauli strings over the full register.
    #[must_use]
    pub fn stabilizer_strings(&self) -> Vec<PauliString> {
        self.checks
            .iter()
            .map(|ch| {
                let mut s = PauliString::identity(self.num_qubits());
                let p = match ch.kind {
                    CheckKind::X => Pauli::X,
                    CheckKind::Z => Pauli::Z,
                };
                for &q in &ch.support {
                    s.set_op(q, p);
                }
                s
            })
            .collect()
    }

    /// One full ESM round, generalizing Table 5.8: reset slots, four
    /// conflict-free CNOT slots (X checks visit NE, NW, SE, SW; Z checks
    /// NE, SE, NW, SW), basis-change Hadamards, and the measurement slot.
    #[must_use]
    pub fn esm_circuit(&self) -> Circuit {
        let mut circuit = Circuit::new();

        // Slot 1: reset X ancillas.
        let mut slot = TimeSlot::new();
        for ch in self.checks_of(CheckKind::X) {
            slot.push(Operation::prep(ch.ancilla));
        }
        circuit.push_slot(slot);

        // Slot 2: reset Z ancillas + H on X ancillas.
        let mut slot = TimeSlot::new();
        for ch in self.checks_of(CheckKind::Z) {
            slot.push(Operation::prep(ch.ancilla));
        }
        for ch in self.checks_of(CheckKind::X) {
            slot.push(Operation::gate(Gate::H, &[ch.ancilla]));
        }
        circuit.push_slot(slot);

        // Slots 3-6: the CNOT schedule.
        for step in 0..4 {
            let mut slot = TimeSlot::new();
            for ch in &self.checks {
                let (r, c) = ch.coords;
                // Compass neighbour for this step, by check kind.
                let (di, dj) = match (ch.kind, step) {
                    (CheckKind::X, 0) | (CheckKind::Z, 0) => (1, 0), // NE = (r-1, c)
                    (CheckKind::X, 1) => (1, 1),                     // NW = (r-1, c-1)
                    (CheckKind::X, 2) => (0, 0),                     // SE = (r, c)
                    (CheckKind::X, 3) | (CheckKind::Z, 3) => (0, 1), // SW = (r, c-1)
                    (CheckKind::Z, 1) => (0, 0),                     // SE
                    (CheckKind::Z, 2) => (1, 1),                     // NW
                    _ => unreachable!(),
                };
                let (i, j) = (r.wrapping_sub(di), c.wrapping_sub(dj));
                if i < self.d && j < self.d {
                    let data = i * self.d + j;
                    let op = match ch.kind {
                        CheckKind::X => Operation::gate(Gate::Cnot, &[ch.ancilla, data]),
                        CheckKind::Z => Operation::gate(Gate::Cnot, &[data, ch.ancilla]),
                    };
                    slot.push(op);
                }
            }
            circuit.push_slot(slot);
        }

        // Slot 7: H on X ancillas.
        let mut slot = TimeSlot::new();
        for ch in self.checks_of(CheckKind::X) {
            slot.push(Operation::gate(Gate::H, &[ch.ancilla]));
        }
        circuit.push_slot(slot);

        // Slot 8: measure all ancillas.
        let mut slot = TimeSlot::new();
        for ch in &self.checks {
            slot.push(Operation::measure(ch.ancilla));
        }
        circuit.push_slot(slot);

        circuit
    }

    /// The syndrome pattern a set of single-qubit errors of the given
    /// type would produce, as one flag per check of the *opposite* kind
    /// (in [`checks_of`](Self::checks_of) order).
    #[must_use]
    pub fn syndrome_of(&self, error_qubits: &[usize], error: CheckKind) -> Vec<bool> {
        // X errors flip Z checks and vice versa.
        let detecting = match error {
            CheckKind::X => CheckKind::Z,
            CheckKind::Z => CheckKind::X,
        };
        self.checks_of(detecting)
            .map(|ch| {
                error_qubits
                    .iter()
                    .filter(|q| ch.support.contains(q))
                    .count()
                    % 2
                    == 1
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_matches_the_ninja_star() {
        let code = RotatedSurfaceCode::new(3);
        assert_eq!(code.num_data_qubits(), 9);
        assert_eq!(code.num_qubits(), 17);
        let x_supports: Vec<Vec<usize>> = code
            .checks_of(CheckKind::X)
            .map(|c| c.support.clone())
            .collect();
        let z_supports: Vec<Vec<usize>> = code
            .checks_of(CheckKind::Z)
            .map(|c| c.support.clone())
            .collect();
        // Table 2.1, as sets.
        let expected_x = [vec![1, 2], vec![0, 1, 3, 4], vec![4, 5, 7, 8], vec![6, 7]];
        let expected_z = [vec![0, 3], vec![1, 2, 4, 5], vec![3, 4, 6, 7], vec![5, 8]];
        for e in &expected_x {
            assert!(x_supports.contains(e), "missing X check {e:?}");
        }
        for e in &expected_z {
            assert!(z_supports.contains(e), "missing Z check {e:?}");
        }
    }

    #[test]
    fn check_counts_scale() {
        for d in [3, 5, 7, 9] {
            let code = RotatedSurfaceCode::new(d);
            assert_eq!(code.checks().len(), d * d - 1);
            let x = code.checks_of(CheckKind::X).count();
            let z = code.checks_of(CheckKind::Z).count();
            assert_eq!(x + z, d * d - 1);
            assert_eq!(x, z); // d odd: balanced
        }
    }

    #[test]
    fn stabilizers_commute() {
        for d in [3, 5] {
            let code = RotatedSurfaceCode::new(d);
            let gens = code.stabilizer_strings();
            for (i, a) in gens.iter().enumerate() {
                for b in &gens[i + 1..] {
                    assert!(a.commutes_with(b), "d={d}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn logical_operators_well_formed() {
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            let xl = code.logical_x_string();
            let zl = code.logical_z_string();
            assert!(!xl.commutes_with(&zl), "d={d}");
            for g in code.stabilizer_strings() {
                assert!(xl.commutes_with(&g), "d={d}: X_L vs {g}");
                assert!(zl.commutes_with(&g), "d={d}: Z_L vs {g}");
            }
            assert_eq!(xl.weight(), d);
            assert_eq!(zl.weight(), d);
        }
    }

    #[test]
    fn esm_structure_generalizes_table_5_8() {
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            let c = code.esm_circuit();
            assert_eq!(c.slot_count(), 8, "d={d}");
            let n_checks = d * d - 1;
            // Total CNOTs = sum of check weights.
            let total_weight: usize = code.checks().iter().map(|ch| ch.support.len()).sum();
            let census = c.census();
            assert_eq!(census.preps, n_checks);
            assert_eq!(census.measures, n_checks);
            assert_eq!(census.clifford_gates, total_weight + n_checks);
            assert_eq!(census.pauli_gates, 0);
        }
    }

    #[test]
    fn esm_cnot_slots_are_conflict_free() {
        for d in [3, 5, 7, 9] {
            let code = RotatedSurfaceCode::new(d);
            let c = code.esm_circuit();
            for (s, slot) in c.slots().iter().enumerate() {
                let mut seen = std::collections::HashSet::new();
                for op in slot {
                    for &q in op.qubits() {
                        assert!(seen.insert(q), "d={d} slot {s}: qubit {q} reused");
                    }
                }
            }
        }
    }

    #[test]
    fn each_check_completes_its_support() {
        let code = RotatedSurfaceCode::new(5);
        let c = code.esm_circuit();
        let mut partners: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for op in c.operations() {
            if op.as_gate() == Some(Gate::Cnot) {
                let q = op.qubits();
                let (anc, data) = if q[0] >= 25 {
                    (q[0], q[1])
                } else {
                    (q[1], q[0])
                };
                partners.entry(anc).or_default().push(data);
            }
        }
        for ch in code.checks() {
            let mut got = partners.remove(&ch.ancilla).unwrap_or_default();
            got.sort_unstable();
            assert_eq!(got, ch.support, "check at {:?}", ch.coords);
        }
    }

    #[test]
    fn syndrome_of_single_errors() {
        let code = RotatedSurfaceCode::new(3);
        // X on D4 flips the two bulk Z checks (supports containing 4).
        let syndrome = code.syndrome_of(&[4], CheckKind::X);
        let fired: usize = syndrome.iter().filter(|f| **f).count();
        assert_eq!(fired, 2);
        // Z on a corner flips exactly one X check.
        let syndrome = code.syndrome_of(&[0], CheckKind::Z);
        assert_eq!(syndrome.iter().filter(|f| **f).count(), 1);
    }

    #[test]
    fn logical_x_is_syndrome_free() {
        for d in [3, 5] {
            let code = RotatedSurfaceCode::new(d);
            let syndrome = code.syndrome_of(&code.logical_x_support(), CheckKind::X);
            assert!(syndrome.iter().all(|f| !f), "d={d}: X_L fires a check");
            let syndrome = code.syndrome_of(&code.logical_z_support(), CheckKind::Z);
            assert!(syndrome.iter().all(|f| !f), "d={d}: Z_L fires a check");
        }
    }

    #[test]
    #[should_panic(expected = "odd distance")]
    fn even_distance_rejected() {
        let _ = RotatedSurfaceCode::new(4);
    }
}

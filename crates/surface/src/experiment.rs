//! The distance-scaling LER experiments.
//!
//! Two drivers live here:
//!
//! - [`run_distance_ler`] — the circuit-level ablation the paper's
//!   Chapter 6 calls for (does a Pauli frame change the logical error
//!   rate for `d > 3`?). The protocol follows Listing 5.7 with the
//!   natural `d`-generalizations: each window runs `d − 1` ESM rounds;
//!   stable two-round syndrome patterns decode through the matching
//!   decoder; the correction goes through the stack — where a
//!   Pauli-frame layer absorbs it without touching the qubits.
//! - [`run_ler_surface`] — the code-capacity Monte-Carlo sweep behind
//!   the d = 3…13 threshold workload: 64 shots per word on
//!   [`ShotSlicedSim`], i.i.d. data errors injected through per-lane
//!   masks, syndromes extracted by executing the real ESM circuit on the
//!   sliced engine (packed syndrome planes read straight off the ancilla
//!   measurement words), every lane decoded by the union-find decoder,
//!   and logical failures read as one `expectation` lane word.

use std::cell::RefCell;
use std::collections::HashMap;

use qpdo_core::{
    ChpCore, ControlStack, CoreError, CounterLayer, DepolarizingModel, ErrorCounts, PauliFrameLayer,
};
use qpdo_pauli::{Pauli, PauliString};
use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_stabilizer::{ShotSlicedSim, LANES};

use crate::{CheckKind, MatchingDecoder, RotatedSurfaceCode, UnionFindDecoder};
use qpdo_circuit::{Circuit, Gate, Operation, OperationKind, TimeSlot};

/// Configuration of a distance-scaling LER run (always watches for
/// logical X errors on `|0⟩_L`, the representative case).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceLerConfig {
    /// Code distance (odd, ≥ 3).
    pub distance: usize,
    /// Physical error rate.
    pub physical_error_rate: f64,
    /// Whether the stack includes a Pauli-frame layer.
    pub with_pauli_frame: bool,
    /// Stop after this many logical errors.
    pub target_logical_errors: u64,
    /// Safety cap on windows.
    pub max_windows: u64,
    /// RNG seed.
    pub seed: u64,
}

/// The result of a distance-scaling LER run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceLerOutcome {
    /// Windows executed.
    pub windows: u64,
    /// Logical errors counted.
    pub logical_errors: u64,
    /// Operations entering the stack above the frame.
    pub ops_above_frame: u64,
    /// Operations reaching the core below the frame.
    pub ops_below_frame: u64,
    /// Time slots entering above the frame.
    pub slots_above_frame: u64,
    /// Time slots reaching below the frame.
    pub slots_below_frame: u64,
    /// Injected physical errors.
    pub injected: ErrorCounts,
}

impl DistanceLerOutcome {
    /// The logical error rate `m / R`.
    #[must_use]
    pub fn ler(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.logical_errors as f64 / self.windows as f64
        }
    }
}

/// Runs one distance-`d` LER experiment.
///
/// # Errors
///
/// Propagates stack errors.
///
/// # Panics
///
/// Panics on invalid distance or error rate.
pub fn run_distance_ler(config: &DistanceLerConfig) -> Result<DistanceLerOutcome, CoreError> {
    let code = RotatedSurfaceCode::new(config.distance);
    let x_decoder = MatchingDecoder::new(&code, CheckKind::X); // Z-check syndromes
    let z_decoder = MatchingDecoder::new(&code, CheckKind::Z); // X-check syndromes

    let below = CounterLayer::new();
    let below_counts = below.counters();
    let above = CounterLayer::new();
    let above_counts = above.counters();

    let mut stack = ControlStack::with_seed(ChpCore::new(), config.seed);
    stack.push_layer(below);
    if config.with_pauli_frame {
        stack.push_layer(PauliFrameLayer::new());
    }
    stack.push_layer(above);
    stack.set_error_model(DepolarizingModel::new(config.physical_error_rate));
    stack.create_qubits(code.num_qubits())?;

    initialize_zero(&mut stack, &code, &z_decoder)?;
    above_counts.reset();
    below_counts.reset();

    let mut reference =
        logical_z_value(&mut stack, &code).expect("fresh |0>_L has a deterministic logical value");
    let rounds = code.distance() - 1;
    let mut windows = 0u64;
    let mut logical_errors = 0u64;

    while logical_errors < config.target_logical_errors && windows < config.max_windows {
        // One window: d-1 rounds processed as (d-1)/2 decode cycles of
        // two rounds each — the SC17 scheme repeated. A syndrome pattern
        // is decoded only when it is identical in both rounds of a cycle
        // (whole-pattern stability — see qpdo-surface17's SyndromeTracker
        // for why per-check rules turn single mid-round faults into
        // logical errors); an unstable pattern defers to the next cycle.
        for _ in 0..rounds / 2 {
            let mut pair: Vec<(Vec<bool>, Vec<bool>)> = Vec::with_capacity(2);
            for _ in 0..2 {
                stack.execute_now(code.esm_circuit())?;
                pair.push(read_syndromes(&stack, &code));
            }
            let stable = |a: &Vec<bool>, b: &Vec<bool>| -> Vec<bool> {
                if a == b {
                    a.clone()
                } else {
                    vec![false; a.len()]
                }
            };
            // Stable Z-check patterns (X errors) decode to X corrections,
            // stable X-check patterns to Z corrections.
            let x_corrections = x_decoder.decode(&stable(&pair[0].1, &pair[1].1));
            let z_corrections = z_decoder.decode(&stable(&pair[0].0, &pair[1].0));
            if let Some(slot) = correction_slot(&x_corrections, &z_corrections) {
                let mut circuit = Circuit::new();
                circuit.push_slot(slot);
                stack.execute_now(circuit)?;
            }
        }
        windows += 1;

        if !has_observable_error(&mut stack, &code)? {
            if let Some(value) = logical_z_value(&mut stack, &code) {
                if value != reference {
                    logical_errors += 1;
                    reference = value;
                }
            }
        }
    }

    Ok(DistanceLerOutcome {
        windows,
        logical_errors,
        ops_above_frame: above_counts.operations(),
        ops_below_frame: below_counts.operations(),
        slots_above_frame: above_counts.time_slots(),
        slots_below_frame: below_counts.time_slots(),
        injected: stack.error_counts().expect("error model installed"),
    })
}

/// Fault-tolerant `|0⟩_L` initialization (diagnostic mode): reset data,
/// one gauge-fixing ESM round decoded with the matching decoder, then
/// confirmation rounds.
fn initialize_zero(
    stack: &mut ControlStack<ChpCore>,
    code: &RotatedSurfaceCode,
    z_decoder: &MatchingDecoder,
) -> Result<(), CoreError> {
    let mut circuit = Circuit::new();
    for q in 0..code.num_data_qubits() {
        circuit.prep(q);
    }
    stack.execute_diagnostic(circuit)?;

    stack.execute_diagnostic(code.esm_circuit())?;
    let (x_synd, z_synd) = read_syndromes(stack, code);
    debug_assert!(
        z_synd.iter().all(|s| !s),
        "Z checks deterministic on |0..0>"
    );
    // Gauge-fix the random first-round X checks with Z chains.
    let corrections = z_decoder.decode(&x_synd);
    if !corrections.is_empty() {
        let mut slot = TimeSlot::new();
        for q in corrections {
            slot.push(Operation::gate(Gate::Z, &[q]));
        }
        let mut circuit = Circuit::new();
        circuit.push_slot(slot);
        stack.execute_diagnostic(circuit)?;
    }
    for _ in 0..code.distance() - 1 {
        stack.execute_diagnostic(code.esm_circuit())?;
        let (x_synd, z_synd) = read_syndromes(stack, code);
        debug_assert!(x_synd.iter().all(|s| !s), "gauge fixed");
        debug_assert!(z_synd.iter().all(|s| !s), "error-free initialization");
    }
    Ok(())
}

/// Reads the `(x_checks, z_checks)` syndromes from the classical state.
fn read_syndromes(
    stack: &ControlStack<ChpCore>,
    code: &RotatedSurfaceCode,
) -> (Vec<bool>, Vec<bool>) {
    let read = |kind: CheckKind| -> Vec<bool> {
        code.checks_of(kind)
            .map(|ch| stack.state().bit(ch.ancilla).known().unwrap_or(false))
            .collect()
    };
    (read(CheckKind::X), read(CheckKind::Z))
}

fn has_observable_error(
    stack: &mut ControlStack<ChpCore>,
    code: &RotatedSurfaceCode,
) -> Result<bool, CoreError> {
    stack.execute_diagnostic(code.esm_circuit())?;
    let (x_synd, z_synd) = read_syndromes(stack, code);
    Ok(x_synd.iter().any(|s| *s) || z_synd.iter().any(|s| *s))
}

/// The logical Z value seen through the Pauli frame: the physical `Z_L`
/// expectation adjusted by tracked X components on its support.
fn logical_z_value(stack: &mut ControlStack<ChpCore>, code: &RotatedSurfaceCode) -> Option<bool> {
    let mut observable = PauliString::identity(stack.num_qubits());
    for q in code.logical_z_support() {
        observable.set_op(q, Pauli::Z);
    }
    let mut flip = false;
    if let Some(pf) = stack.find_layer::<PauliFrameLayer>() {
        for q in code.logical_z_support() {
            flip ^= pf.record(q).bits().0;
        }
    }
    let physical = stack
        .core_mut()
        .simulator_mut()
        .expect("qubits allocated")
        .expectation(&observable)?;
    Some(physical ^ flip)
}

/// One correction time slot from X- and Z-correction sets (merged to `Y`
/// where they overlap).
fn correction_slot(x_corrections: &[usize], z_corrections: &[usize]) -> Option<TimeSlot> {
    if x_corrections.is_empty() && z_corrections.is_empty() {
        return None;
    }
    let mut all: Vec<usize> = x_corrections.iter().chain(z_corrections).copied().collect();
    all.sort_unstable();
    all.dedup();
    let mut slot = TimeSlot::new();
    for q in all {
        let gate = match (x_corrections.contains(&q), z_corrections.contains(&q)) {
            (true, true) => Gate::Y,
            (true, false) => Gate::X,
            (false, true) => Gate::Z,
            (false, false) => unreachable!("q came from one of the sets"),
        };
        slot.push(Operation::gate(gate, &[q]));
    }
    Some(slot)
}

/// Configuration of a code-capacity LER sweep point decoded by the
/// union-find decoder on the 64-lane shot-sliced engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurfaceLerConfig {
    /// Code distance (odd, ≥ 3).
    pub distance: usize,
    /// Per-data-qubit, per-shot error probability.
    pub physical_error_rate: f64,
    /// The injected error kind: `X` errors are detected by Z checks and
    /// threaten `Z_L`, and vice versa.
    pub error: CheckKind,
    /// Monte-Carlo shots (rounded up to whole 64-lane words internally;
    /// failures are only counted on the first `shots` lanes).
    pub shots: u64,
    /// RNG seed.
    pub seed: u64,
}

/// The result of a code-capacity LER sweep point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SurfaceLerOutcome {
    /// Shots counted.
    pub shots: u64,
    /// Shots whose decoded correction produced a logical fault.
    pub failures: u64,
    /// Total defects decoded across all counted shots (a nonzero-sample
    /// witness for gates: at p > 0 a sweep that saw no defects measured
    /// nothing).
    pub defects: u64,
}

impl SurfaceLerOutcome {
    /// The logical error rate `failures / shots`.
    #[must_use]
    pub fn ler(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }
}

/// Runs one code-capacity LER point: 64-lane error injection, real ESM
/// syndrome extraction on [`ShotSlicedSim`], union-find decoding of every
/// lane, and a packed logical-failure readout.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] unless
/// `physical_error_rate ∈ [0, 1]`.
///
/// # Panics
///
/// Panics unless the distance is odd and ≥ 3.
pub fn run_ler_surface(config: &SurfaceLerConfig) -> Result<SurfaceLerOutcome, CoreError> {
    let (outcome, _stopped) = run_ler_surface_cancellable(config, &|| false)?;
    Ok(outcome)
}

/// [`run_ler_surface`] with a cooperative cancellation hook, polled once
/// per 64-shot batch. Returns the partial outcome and whether the run
/// stopped early.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] unless
/// `physical_error_rate ∈ [0, 1]`.
///
/// # Panics
///
/// Panics unless the distance is odd and ≥ 3.
pub fn run_ler_surface_cancellable(
    config: &SurfaceLerConfig,
    cancelled: &dyn Fn() -> bool,
) -> Result<(SurfaceLerOutcome, bool), CoreError> {
    run_ler_surface_resumable(config, None, cancelled, &mut |_| {})
}

/// A durable position inside a [`run_ler_surface_resumable`] sweep: the
/// number of completed whole 64-shot batches and the counters accumulated
/// over exactly those batches.
///
/// Because every batch draws from its own RNG substream, a checkpoint
/// plus the sweep config fully determines the rest of the run — resuming
/// from any recorded `SurfaceProgress` reproduces the uninterrupted
/// outcome bit for bit (see `tests/resume_oracle.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SurfaceProgress {
    /// Completed whole batches.
    pub batches: u64,
    /// Shots counted over those batches.
    pub shots: u64,
    /// Logical failures among those shots.
    pub failures: u64,
    /// Defects decoded across those shots.
    pub defects: u64,
}

thread_local! {
    // One warm decoder per (distance, error kind) per worker thread: the
    // union-find scratch arrays inside survive across decode calls *and*
    // across jobs hitting the same sweep point, so the serving path pays
    // decoder construction and steady-state allocation once per worker
    // (ROADMAP: decoder throughput on the serving path). The decoder is
    // taken out of the map for the duration of a run and put back after,
    // so the cache is never borrowed across user code.
    static DECODER_CACHE: RefCell<HashMap<(usize, CheckKind), UnionFindDecoder>> =
        RefCell::new(HashMap::new());
}

/// [`run_ler_surface_cancellable`] that can start from a previously
/// recorded [`SurfaceProgress`] checkpoint and reports a checkpoint after
/// every completed batch through `on_batch`.
///
/// `resume` restarts the sweep after `resume.batches` whole batches with
/// the recorded counters; `None` runs from scratch. A checkpoint at or
/// past the final batch returns the recorded counters untouched.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProbability`] unless
/// `physical_error_rate ∈ [0, 1]`.
///
/// # Panics
///
/// Panics unless the distance is odd and ≥ 3.
pub fn run_ler_surface_resumable(
    config: &SurfaceLerConfig,
    resume: Option<&SurfaceProgress>,
    cancelled: &dyn Fn() -> bool,
    on_batch: &mut dyn FnMut(&SurfaceProgress),
) -> Result<(SurfaceLerOutcome, bool), CoreError> {
    let p = config.physical_error_rate;
    if !(0.0..=1.0).contains(&p) {
        return Err(CoreError::InvalidProbability {
            value: format!("{p}"),
            context: "surface LER physical error rate",
        });
    }
    let code = RotatedSurfaceCode::new(config.distance);
    let decoder = DECODER_CACHE.with(|cache| {
        cache
            .borrow_mut()
            .remove(&(config.distance, config.error))
            .unwrap_or_else(|| UnionFindDecoder::new(&code, config.error))
    });
    let detecting = match config.error {
        CheckKind::X => CheckKind::Z,
        CheckKind::Z => CheckKind::X,
    };
    // X errors flip Z checks and threaten Z_L (its support crosses
    // their termination boundary); dually for Z errors.
    let observable = match config.error {
        CheckKind::X => code.logical_z_string(),
        CheckKind::Z => code.logical_x_string(),
    };
    let ancillas: Vec<usize> = code.checks_of(detecting).map(|ch| ch.ancilla).collect();
    let esm = code.esm_circuit();

    let batches = config.shots.div_ceil(LANES as u64);
    let start = resume.map_or(0, |r| r.batches.min(batches));
    let mut shots = resume.map_or(0, |r| r.shots);
    let mut failures = resume.map_or(0, |r| r.failures);
    let mut defects = resume.map_or(0, |r| r.defects);
    let mut stopped = false;
    // Per-batch working buffers, allocated once and reused.
    let mut err = vec![0u64; code.num_data_qubits()];
    let mut meas = vec![0u64; code.num_qubits()];
    let mut corr = vec![0u64; code.num_data_qubits()];
    let mut syndrome = vec![false; ancillas.len()];
    let mut correction = Vec::new();
    for batch in start..batches {
        if cancelled() {
            stopped = true;
            break;
        }
        let lanes = (config.shots - batch * LANES as u64).min(LANES as u64);
        let mask = if lanes == LANES as u64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        // One independent substream per batch: results for a prefix of
        // shots are unchanged when the total grows, and a resumed run
        // replays exactly the batches a scratch run would have.
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ (batch + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let mut sim = ShotSlicedSim::new(code.num_qubits());
        if config.error == CheckKind::Z {
            // Z errors are watched on |+…+⟩ so X_L starts deterministic.
            for q in 0..code.num_data_qubits() {
                sim.h(q);
            }
        }
        // Inject i.i.d. errors on the data qubits, one lane word each.
        err.fill(0);
        for (q, word) in err.iter_mut().enumerate() {
            for lane in 0..LANES {
                if rng.gen_bool(p) {
                    *word |= 1 << lane;
                }
            }
            match config.error {
                CheckKind::X => sim.x_masked(q, *word),
                CheckKind::Z => sim.z_masked(q, *word),
            }
        }
        // Execute the real ESM round on the sliced engine; the detecting
        // checks' ancilla measurement words are the packed syndromes.
        // (The opposite family measures randomly — first-round gauge
        // fixing — which cannot disturb the commuting observable.)
        meas.fill(0);
        run_circuit_sliced(&mut sim, &esm, &mut rng, &mut meas);
        #[cfg(debug_assertions)]
        for (i, ch) in code.checks_of(detecting).enumerate() {
            let expect = ch.support.iter().fold(0u64, |acc, &q| acc ^ err[q]);
            debug_assert_eq!(
                meas[ch.ancilla], expect,
                "packed syndrome plane disagrees with check supports (check {i})"
            );
        }
        // Decode each lane and accumulate the correction planes.
        corr.fill(0);
        for lane in 0..LANES {
            for (s, &anc) in syndrome.iter_mut().zip(&ancillas) {
                *s = (meas[anc] >> lane) & 1 == 1;
            }
            decoder.decode_into(&syndrome, &mut correction);
            for &q in &correction {
                corr[q] |= 1 << lane;
            }
        }
        for (q, &word) in corr.iter().enumerate() {
            if word != 0 {
                match config.error {
                    CheckKind::X => sim.x_masked(q, word),
                    CheckKind::Z => sim.z_masked(q, word),
                }
            }
        }
        // The observable commutes with every ESM measurement, so it
        // stays deterministic: the lane word *is* the failure word.
        let fail_word = sim
            .expectation(&observable)
            .expect("logical observable stays deterministic through ESM + correction");
        // Cross-check against pure classical bookkeeping: a lane fails
        // iff error ⊕ correction overlaps the logical support oddly.
        #[cfg(debug_assertions)]
        {
            let classical = match config.error {
                CheckKind::X => code.logical_z_support(),
                CheckKind::Z => code.logical_x_support(),
            }
            .iter()
            .fold(0u64, |acc, &q| acc ^ err[q] ^ corr[q]);
            debug_assert_eq!(
                fail_word, classical,
                "sim and classical failure words differ"
            );
        }
        shots += lanes;
        failures += u64::from((fail_word & mask).count_ones());
        for &anc in &ancillas {
            defects += u64::from((meas[anc] & mask).count_ones());
        }
        on_batch(&SurfaceProgress {
            batches: batch + 1,
            shots,
            failures,
            defects,
        });
    }
    DECODER_CACHE.with(|cache| {
        cache
            .borrow_mut()
            .insert((config.distance, config.error), decoder);
    });
    Ok((
        SurfaceLerOutcome {
            shots,
            failures,
            defects,
        },
        stopped,
    ))
}

/// Executes a Clifford circuit directly on the sliced engine, recording
/// the last measurement lane word per qubit. Random prep/measure branches
/// draw from `rng` per lane, in deterministic order.
fn run_circuit_sliced(
    sim: &mut ShotSlicedSim,
    circuit: &Circuit,
    rng: &mut StdRng,
    meas: &mut [u64],
) {
    for slot in circuit.slots() {
        for op in slot {
            let q = op.qubits();
            match op.kind() {
                OperationKind::Prep => sim.reset_with(q[0], |_| rng.gen::<bool>()),
                OperationKind::Measure => {
                    meas[q[0]] = sim.measure_with(q[0], |_| rng.gen::<bool>())
                }
                OperationKind::Gate(gate) => match gate {
                    Gate::I => {}
                    Gate::X => sim.x(q[0]),
                    Gate::Y => sim.y(q[0]),
                    Gate::Z => sim.z(q[0]),
                    Gate::H => sim.h(q[0]),
                    Gate::S => sim.s(q[0]),
                    Gate::Sdg => sim.sdg(q[0]),
                    Gate::Cnot => sim.cnot(q[0], q[1]),
                    Gate::Cz => sim.cz(q[0], q[1]),
                    Gate::Swap => sim.swap(q[0], q[1]),
                    Gate::T | Gate::Tdg | Gate::Toffoli => {
                        unreachable!("ESM schedules are Clifford-only")
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(d: usize, p: f64, with_pf: bool, seed: u64) -> DistanceLerConfig {
        DistanceLerConfig {
            distance: d,
            physical_error_rate: p,
            with_pauli_frame: with_pf,
            target_logical_errors: 3,
            max_windows: 400,
            seed,
        }
    }

    #[test]
    fn noiseless_runs_stay_clean() {
        for d in [3, 5] {
            for with_pf in [false, true] {
                let mut config = quick(d, 0.0, with_pf, 1);
                config.max_windows = 10;
                let outcome = run_distance_ler(&config).unwrap();
                assert_eq!(outcome.windows, 10);
                assert_eq!(outcome.logical_errors, 0);
            }
        }
    }

    #[test]
    fn noisy_runs_produce_errors_at_high_p() {
        let outcome = run_distance_ler(&quick(3, 0.02, false, 2)).unwrap();
        assert!(outcome.logical_errors > 0);
        assert!(outcome.ler() > 0.0);
    }

    #[test]
    fn distance_five_runs_complete() {
        let outcome = run_distance_ler(&quick(5, 0.02, true, 3)).unwrap();
        assert!(outcome.windows > 0);
        // The frame filtered the corrections.
        assert!(outcome.ops_below_frame <= outcome.ops_above_frame);
    }

    #[test]
    fn frame_savings_respect_the_cycle_bound() {
        // The experiment decodes every two rounds, so each (d-1)/2-cycle
        // window can shed at most one slot per 17-slot cycle — the SC17
        // bound applies at every distance.
        for d in [3, 5] {
            let outcome = run_distance_ler(&quick(d, 0.03, true, 4)).unwrap();
            let saving = (outcome.slots_above_frame - outcome.slots_below_frame) as f64
                / outcome.slots_above_frame as f64;
            assert!(saving > 0.0, "d={d}: the frame saved nothing at p=0.03");
            assert!(
                saving <= 1.0 / 17.0 + 1e-9,
                "d={d}: saving {saving} above the per-cycle bound"
            );
        }
    }

    fn surface(d: usize, p: f64, kind: CheckKind, shots: u64, seed: u64) -> SurfaceLerConfig {
        SurfaceLerConfig {
            distance: d,
            physical_error_rate: p,
            error: kind,
            shots,
            seed,
        }
    }

    #[test]
    fn sliced_runs_are_clean_at_p_zero() {
        for kind in [CheckKind::X, CheckKind::Z] {
            let outcome = run_ler_surface(&surface(5, 0.0, kind, 130, 7)).unwrap();
            assert_eq!(outcome.shots, 130);
            assert_eq!(outcome.failures, 0);
            assert_eq!(outcome.defects, 0);
        }
    }

    #[test]
    fn sliced_runs_fail_above_threshold() {
        // p = 0.3 is far above any surface-code threshold: failures must
        // appear, and plenty of defects must have been decoded.
        let outcome = run_ler_surface(&surface(3, 0.3, CheckKind::X, 640, 11)).unwrap();
        assert!(outcome.failures > 0, "no failures at p=0.3");
        assert!(outcome.defects > 100, "defect sampling too thin");
    }

    #[test]
    fn sliced_runs_are_seed_deterministic_and_prefix_stable() {
        let a = run_ler_surface(&surface(5, 0.08, CheckKind::X, 512, 42)).unwrap();
        let b = run_ler_surface(&surface(5, 0.08, CheckKind::X, 512, 42)).unwrap();
        assert_eq!(a, b);
        let c = run_ler_surface(&surface(5, 0.08, CheckKind::X, 512, 43)).unwrap();
        assert_ne!(a, c, "different seeds produced identical outcomes");
        // Per-batch substreams: growing the shot count must not change
        // the failures attributed to the common prefix of whole batches.
        let big = run_ler_surface(&surface(5, 0.08, CheckKind::X, 1024, 42)).unwrap();
        assert!(big.failures >= a.failures);
    }

    #[test]
    fn sliced_runs_reject_bad_probability() {
        assert!(run_ler_surface(&surface(3, 1.5, CheckKind::X, 64, 1)).is_err());
        assert!(run_ler_surface(&surface(3, -0.1, CheckKind::X, 64, 1)).is_err());
    }

    #[test]
    fn sliced_cancellation_stops_between_batches() {
        let config = surface(3, 0.05, CheckKind::X, 6400, 3);
        let (outcome, stopped) = run_ler_surface_cancellable(&config, &|| true).unwrap();
        assert!(stopped);
        assert_eq!(outcome.shots, 0);
    }

    #[test]
    fn resume_from_midpoint_matches_scratch() {
        let config = surface(3, 0.08, CheckKind::X, 520, 9);
        let scratch = run_ler_surface(&config).unwrap();
        let mut checkpoints = Vec::new();
        run_ler_surface_resumable(&config, None, &|| false, &mut |p| checkpoints.push(*p)).unwrap();
        assert_eq!(checkpoints.len(), 9, "520 shots is 9 batches");
        let mid = checkpoints[4];
        let mut replayed = 0u64;
        let (outcome, stopped) =
            run_ler_surface_resumable(&config, Some(&mid), &|| false, &mut |_| replayed += 1)
                .unwrap();
        assert!(!stopped);
        assert_eq!(outcome, scratch, "resumed run diverged from scratch");
        assert_eq!(
            replayed, 4,
            "resume re-executed already-checkpointed batches"
        );
    }

    #[test]
    fn resume_at_or_past_the_end_returns_the_checkpoint() {
        let config = surface(3, 0.08, CheckKind::X, 128, 5);
        let scratch = run_ler_surface(&config).unwrap();
        let done = SurfaceProgress {
            batches: 99,
            shots: scratch.shots,
            failures: scratch.failures,
            defects: scratch.defects,
        };
        let (outcome, stopped) =
            run_ler_surface_resumable(&config, Some(&done), &|| false, &mut |_| {
                panic!("no batch should run")
            })
            .unwrap();
        assert!(!stopped);
        assert_eq!(outcome, scratch);
    }

    #[test]
    fn sliced_ler_decreases_with_distance_below_threshold() {
        // The defining property of a working decoder: below threshold,
        // bigger codes fail less. p = 0.05 is well under the ~10%
        // code-capacity threshold.
        let small = run_ler_surface(&surface(3, 0.05, CheckKind::X, 4096, 5)).unwrap();
        let large = run_ler_surface(&surface(5, 0.05, CheckKind::X, 4096, 5)).unwrap();
        assert!(
            large.ler() < small.ler(),
            "d=5 LER {} not below d=3 LER {}",
            large.ler(),
            small.ler()
        );
    }
}

//! The distance-scaling LER experiment — the ablation the paper's
//! Chapter 6 calls for: does a Pauli frame change the logical error rate
//! for `d > 3`?
//!
//! The protocol follows Listing 5.7 with the natural `d`-generalizations:
//! each window runs `d − 1` ESM rounds; per-check majority voting over
//! the rounds filters measurement errors; the matching decoder corrects
//! the voted syndrome; and the correction goes through the stack — where
//! a Pauli-frame layer absorbs it without touching the qubits.

use qpdo_core::{
    ChpCore, ControlStack, CoreError, CounterLayer, DepolarizingModel, ErrorCounts, PauliFrameLayer,
};
use qpdo_pauli::{Pauli, PauliString};

use crate::{CheckKind, MatchingDecoder, RotatedSurfaceCode};
use qpdo_circuit::{Circuit, Gate, Operation, TimeSlot};

/// Configuration of a distance-scaling LER run (always watches for
/// logical X errors on `|0⟩_L`, the representative case).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceLerConfig {
    /// Code distance (odd, ≥ 3).
    pub distance: usize,
    /// Physical error rate.
    pub physical_error_rate: f64,
    /// Whether the stack includes a Pauli-frame layer.
    pub with_pauli_frame: bool,
    /// Stop after this many logical errors.
    pub target_logical_errors: u64,
    /// Safety cap on windows.
    pub max_windows: u64,
    /// RNG seed.
    pub seed: u64,
}

/// The result of a distance-scaling LER run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceLerOutcome {
    /// Windows executed.
    pub windows: u64,
    /// Logical errors counted.
    pub logical_errors: u64,
    /// Operations entering the stack above the frame.
    pub ops_above_frame: u64,
    /// Operations reaching the core below the frame.
    pub ops_below_frame: u64,
    /// Time slots entering above the frame.
    pub slots_above_frame: u64,
    /// Time slots reaching below the frame.
    pub slots_below_frame: u64,
    /// Injected physical errors.
    pub injected: ErrorCounts,
}

impl DistanceLerOutcome {
    /// The logical error rate `m / R`.
    #[must_use]
    pub fn ler(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.logical_errors as f64 / self.windows as f64
        }
    }
}

/// Runs one distance-`d` LER experiment.
///
/// # Errors
///
/// Propagates stack errors.
///
/// # Panics
///
/// Panics on invalid distance or error rate.
pub fn run_distance_ler(config: &DistanceLerConfig) -> Result<DistanceLerOutcome, CoreError> {
    let code = RotatedSurfaceCode::new(config.distance);
    let x_decoder = MatchingDecoder::new(&code, CheckKind::X); // Z-check syndromes
    let z_decoder = MatchingDecoder::new(&code, CheckKind::Z); // X-check syndromes

    let below = CounterLayer::new();
    let below_counts = below.counters();
    let above = CounterLayer::new();
    let above_counts = above.counters();

    let mut stack = ControlStack::with_seed(ChpCore::new(), config.seed);
    stack.push_layer(below);
    if config.with_pauli_frame {
        stack.push_layer(PauliFrameLayer::new());
    }
    stack.push_layer(above);
    stack.set_error_model(DepolarizingModel::new(config.physical_error_rate));
    stack.create_qubits(code.num_qubits())?;

    initialize_zero(&mut stack, &code, &z_decoder)?;
    above_counts.reset();
    below_counts.reset();

    let mut reference =
        logical_z_value(&mut stack, &code).expect("fresh |0>_L has a deterministic logical value");
    let rounds = code.distance() - 1;
    let mut windows = 0u64;
    let mut logical_errors = 0u64;

    while logical_errors < config.target_logical_errors && windows < config.max_windows {
        // One window: d-1 rounds processed as (d-1)/2 decode cycles of
        // two rounds each — the SC17 scheme repeated. A syndrome pattern
        // is decoded only when it is identical in both rounds of a cycle
        // (whole-pattern stability — see qpdo-surface17's SyndromeTracker
        // for why per-check rules turn single mid-round faults into
        // logical errors); an unstable pattern defers to the next cycle.
        for _ in 0..rounds / 2 {
            let mut pair: Vec<(Vec<bool>, Vec<bool>)> = Vec::with_capacity(2);
            for _ in 0..2 {
                stack.execute_now(code.esm_circuit())?;
                pair.push(read_syndromes(&stack, &code));
            }
            let stable = |a: &Vec<bool>, b: &Vec<bool>| -> Vec<bool> {
                if a == b {
                    a.clone()
                } else {
                    vec![false; a.len()]
                }
            };
            // Stable Z-check patterns (X errors) decode to X corrections,
            // stable X-check patterns to Z corrections.
            let x_corrections = x_decoder.decode(&stable(&pair[0].1, &pair[1].1));
            let z_corrections = z_decoder.decode(&stable(&pair[0].0, &pair[1].0));
            if let Some(slot) = correction_slot(&x_corrections, &z_corrections) {
                let mut circuit = Circuit::new();
                circuit.push_slot(slot);
                stack.execute_now(circuit)?;
            }
        }
        windows += 1;

        if !has_observable_error(&mut stack, &code)? {
            if let Some(value) = logical_z_value(&mut stack, &code) {
                if value != reference {
                    logical_errors += 1;
                    reference = value;
                }
            }
        }
    }

    Ok(DistanceLerOutcome {
        windows,
        logical_errors,
        ops_above_frame: above_counts.operations(),
        ops_below_frame: below_counts.operations(),
        slots_above_frame: above_counts.time_slots(),
        slots_below_frame: below_counts.time_slots(),
        injected: stack.error_counts().expect("error model installed"),
    })
}

/// Fault-tolerant `|0⟩_L` initialization (diagnostic mode): reset data,
/// one gauge-fixing ESM round decoded with the matching decoder, then
/// confirmation rounds.
fn initialize_zero(
    stack: &mut ControlStack<ChpCore>,
    code: &RotatedSurfaceCode,
    z_decoder: &MatchingDecoder,
) -> Result<(), CoreError> {
    let mut circuit = Circuit::new();
    for q in 0..code.num_data_qubits() {
        circuit.prep(q);
    }
    stack.execute_diagnostic(circuit)?;

    stack.execute_diagnostic(code.esm_circuit())?;
    let (x_synd, z_synd) = read_syndromes(stack, code);
    debug_assert!(
        z_synd.iter().all(|s| !s),
        "Z checks deterministic on |0..0>"
    );
    // Gauge-fix the random first-round X checks with Z chains.
    let corrections = z_decoder.decode(&x_synd);
    if !corrections.is_empty() {
        let mut slot = TimeSlot::new();
        for q in corrections {
            slot.push(Operation::gate(Gate::Z, &[q]));
        }
        let mut circuit = Circuit::new();
        circuit.push_slot(slot);
        stack.execute_diagnostic(circuit)?;
    }
    for _ in 0..code.distance() - 1 {
        stack.execute_diagnostic(code.esm_circuit())?;
        let (x_synd, z_synd) = read_syndromes(stack, code);
        debug_assert!(x_synd.iter().all(|s| !s), "gauge fixed");
        debug_assert!(z_synd.iter().all(|s| !s), "error-free initialization");
    }
    Ok(())
}

/// Reads the `(x_checks, z_checks)` syndromes from the classical state.
fn read_syndromes(
    stack: &ControlStack<ChpCore>,
    code: &RotatedSurfaceCode,
) -> (Vec<bool>, Vec<bool>) {
    let read = |kind: CheckKind| -> Vec<bool> {
        code.checks_of(kind)
            .map(|ch| stack.state().bit(ch.ancilla).known().unwrap_or(false))
            .collect()
    };
    (read(CheckKind::X), read(CheckKind::Z))
}

fn has_observable_error(
    stack: &mut ControlStack<ChpCore>,
    code: &RotatedSurfaceCode,
) -> Result<bool, CoreError> {
    stack.execute_diagnostic(code.esm_circuit())?;
    let (x_synd, z_synd) = read_syndromes(stack, code);
    Ok(x_synd.iter().any(|s| *s) || z_synd.iter().any(|s| *s))
}

/// The logical Z value seen through the Pauli frame: the physical `Z_L`
/// expectation adjusted by tracked X components on its support.
fn logical_z_value(stack: &mut ControlStack<ChpCore>, code: &RotatedSurfaceCode) -> Option<bool> {
    let mut observable = PauliString::identity(stack.num_qubits());
    for q in code.logical_z_support() {
        observable.set_op(q, Pauli::Z);
    }
    let mut flip = false;
    if let Some(pf) = stack.find_layer::<PauliFrameLayer>() {
        for q in code.logical_z_support() {
            flip ^= pf.record(q).bits().0;
        }
    }
    let physical = stack
        .core_mut()
        .simulator_mut()
        .expect("qubits allocated")
        .expectation(&observable)?;
    Some(physical ^ flip)
}

/// One correction time slot from X- and Z-correction sets (merged to `Y`
/// where they overlap).
fn correction_slot(x_corrections: &[usize], z_corrections: &[usize]) -> Option<TimeSlot> {
    if x_corrections.is_empty() && z_corrections.is_empty() {
        return None;
    }
    let mut all: Vec<usize> = x_corrections.iter().chain(z_corrections).copied().collect();
    all.sort_unstable();
    all.dedup();
    let mut slot = TimeSlot::new();
    for q in all {
        let gate = match (x_corrections.contains(&q), z_corrections.contains(&q)) {
            (true, true) => Gate::Y,
            (true, false) => Gate::X,
            (false, true) => Gate::Z,
            (false, false) => unreachable!("q came from one of the sets"),
        };
        slot.push(Operation::gate(gate, &[q]));
    }
    Some(slot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(d: usize, p: f64, with_pf: bool, seed: u64) -> DistanceLerConfig {
        DistanceLerConfig {
            distance: d,
            physical_error_rate: p,
            with_pauli_frame: with_pf,
            target_logical_errors: 3,
            max_windows: 400,
            seed,
        }
    }

    #[test]
    fn noiseless_runs_stay_clean() {
        for d in [3, 5] {
            for with_pf in [false, true] {
                let mut config = quick(d, 0.0, with_pf, 1);
                config.max_windows = 10;
                let outcome = run_distance_ler(&config).unwrap();
                assert_eq!(outcome.windows, 10);
                assert_eq!(outcome.logical_errors, 0);
            }
        }
    }

    #[test]
    fn noisy_runs_produce_errors_at_high_p() {
        let outcome = run_distance_ler(&quick(3, 0.02, false, 2)).unwrap();
        assert!(outcome.logical_errors > 0);
        assert!(outcome.ler() > 0.0);
    }

    #[test]
    fn distance_five_runs_complete() {
        let outcome = run_distance_ler(&quick(5, 0.02, true, 3)).unwrap();
        assert!(outcome.windows > 0);
        // The frame filtered the corrections.
        assert!(outcome.ops_below_frame <= outcome.ops_above_frame);
    }

    #[test]
    fn frame_savings_respect_the_cycle_bound() {
        // The experiment decodes every two rounds, so each (d-1)/2-cycle
        // window can shed at most one slot per 17-slot cycle — the SC17
        // bound applies at every distance.
        for d in [3, 5] {
            let outcome = run_distance_ler(&quick(d, 0.03, true, 4)).unwrap();
            let saving = (outcome.slots_above_frame - outcome.slots_below_frame) as f64
                / outcome.slots_above_frame as f64;
            assert!(saving > 0.0, "d={d}: the frame saved nothing at p=0.03");
            assert!(
                saving <= 1.0 / 17.0 + 1e-9,
                "d={d}: saving {saving} above the per-cycle bound"
            );
        }
    }
}

//! Minimum-weight defect matching for rotated surface codes.
//!
//! A set of fired checks ("defects") of one kind must be paired up — with
//! each other or with the code boundary — by error chains; the decoder
//! picks the pairing of minimum total chain length and returns the data
//! qubits of the corresponding correction chains. This is the same
//! objective the Blossom algorithm optimizes (the decoder family the
//! paper cites for larger codes); for the sparse defect sets that
//! dominate below threshold the bitmask dynamic program here is exact,
//! and dense syndromes hand off to the near-linear
//! [`UnionFindDecoder`]. The legacy greedy nearest-pair pass survives as
//! [`MatchingDecoder::decode_greedy`], pinned by regression tests as the
//! baseline the union-find path replaced.
//!
//! Geometry: X errors flip Z checks, whose plaquette coordinates step
//! diagonally (`±1, ±1`) per data-qubit error, and whose chains may
//! terminate on the top/bottom boundaries. Z errors flip X checks and
//! terminate on the left/right boundaries. Both cases reduce to the same
//! metric with the roles of rows and columns swapped.

use crate::{CheckKind, RotatedSurfaceCode, UnionFindDecoder};

/// Above this many defects the exact bitmask matching would blow up;
/// hand the syndrome to the union-find decoder.
pub(crate) const EXACT_LIMIT: usize = 12;

/// A minimum-weight matching decoder for one check family of a
/// [`RotatedSurfaceCode`].
///
/// # Example
///
/// ```
/// use qpdo_surface::{CheckKind, MatchingDecoder, RotatedSurfaceCode};
///
/// let code = RotatedSurfaceCode::new(5);
/// let decoder = MatchingDecoder::new(&code, CheckKind::X);
/// // An X error on the central data qubit fires two Z checks; the
/// // decoder proposes a single-qubit correction with the same syndrome.
/// let syndrome = code.syndrome_of(&[12], CheckKind::X);
/// let correction = decoder.decode(&syndrome);
/// assert_eq!(code.syndrome_of(&correction, CheckKind::X), syndrome);
/// assert_eq!(correction.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MatchingDecoder {
    d: usize,
    /// The error kind being corrected (X errors ↔ Z checks).
    error_kind: CheckKind,
    /// Plaquette coordinates of the detecting checks, in
    /// `checks_of(detecting_kind)` order (the syndrome order).
    check_coords: Vec<(usize, usize)>,
    /// Handles syndromes too dense for the exact bitmask DP.
    uf: UnionFindDecoder,
}

impl MatchingDecoder {
    /// A decoder correcting errors of `error_kind` on `code`.
    #[must_use]
    pub fn new(code: &RotatedSurfaceCode, error_kind: CheckKind) -> Self {
        let detecting = match error_kind {
            CheckKind::X => CheckKind::Z,
            CheckKind::Z => CheckKind::X,
        };
        MatchingDecoder {
            d: code.distance(),
            error_kind,
            check_coords: code.checks_of(detecting).map(|ch| ch.coords).collect(),
            uf: UnionFindDecoder::new(code, error_kind),
        }
    }

    /// The number of syndrome bits the decoder expects.
    #[must_use]
    pub fn syndrome_len(&self) -> usize {
        self.check_coords.len()
    }

    /// Decodes a syndrome (one flag per detecting check, in
    /// `checks_of` order) into the data qubits of a correction.
    ///
    /// Up to [`EXACT_LIMIT`] defects the pairing is exact minimum-weight
    /// (this is the small-d oracle the union-find decoder is gated
    /// against); denser syndromes go to the near-linear
    /// [`UnionFindDecoder`], which has no defect-count cap.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the code.
    #[must_use]
    pub fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        assert_eq!(
            syndrome.len(),
            self.check_coords.len(),
            "syndrome length mismatch"
        );
        let defects: Vec<(usize, usize)> = syndrome
            .iter()
            .zip(&self.check_coords)
            .filter(|(fired, _)| **fired)
            .map(|(_, &coords)| coords)
            .collect();
        if defects.is_empty() {
            return Vec::new();
        }
        if defects.len() > EXACT_LIMIT {
            return self.uf.decode(syndrome);
        }
        let pairing = self.exact_pairing(&defects);
        self.chains_of(&defects, &pairing)
    }

    /// Decodes with the legacy greedy nearest-pair fallback — the path
    /// dense syndromes took before the union-find decoder replaced it.
    /// Retained (and pinned by regression tests) as the baseline the
    /// default path is measured against.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the code.
    #[must_use]
    pub fn decode_greedy(&self, syndrome: &[bool]) -> Vec<usize> {
        assert_eq!(
            syndrome.len(),
            self.check_coords.len(),
            "syndrome length mismatch"
        );
        let defects: Vec<(usize, usize)> = syndrome
            .iter()
            .zip(&self.check_coords)
            .filter(|(fired, _)| **fired)
            .map(|(_, &coords)| coords)
            .collect();
        if defects.is_empty() {
            return Vec::new();
        }
        let pairing = self.greedy_pairing(&defects);
        self.chains_of(&defects, &pairing)
    }

    /// Materializes a pairing into correction chains, cancelling
    /// overlapping qubits.
    fn chains_of(&self, defects: &[(usize, usize)], pairing: &[Pairing]) -> Vec<usize> {
        let mut correction = Vec::new();
        for assignment in pairing {
            match *assignment {
                Pairing::Together(a, b) => {
                    correction.extend(self.chain_between(defects[a], defects[b]));
                }
                Pairing::Boundary(a) => {
                    correction.extend(self.chain_to_boundary(defects[a]));
                }
            }
        }
        // Chains may overlap on shared qubits; overlapping Paulis cancel.
        dedup_xor(&mut correction);
        correction
    }

    /// Chain length between two defects: diagonal steps, so the Chebyshev
    /// distance.
    fn pair_cost(&self, a: (usize, usize), b: (usize, usize)) -> usize {
        let dr = a.0.abs_diff(b.0);
        let dc = a.1.abs_diff(b.1);
        dr.max(dc)
    }

    /// Chain length from a defect to its terminating boundary: rows for
    /// X errors (top/bottom), columns for Z errors (left/right).
    fn boundary_cost(&self, a: (usize, usize)) -> usize {
        let along = match self.error_kind {
            CheckKind::X => a.0,
            CheckKind::Z => a.1,
        };
        along.min(self.d - along)
    }

    fn exact_pairing(&self, defects: &[(usize, usize)]) -> Vec<Pairing> {
        let n = defects.len();
        let full = (1usize << n) - 1;
        let mut best = vec![usize::MAX; full + 1];
        let mut choice: Vec<Option<Pairing>> = vec![None; full + 1];
        best[0] = 0;
        for set in 1..=full {
            let first = set.trailing_zeros() as usize;
            let rest = set & !(1 << first);
            // Pair `first` with the boundary.
            let cost = best[rest].saturating_add(self.boundary_cost(defects[first]));
            if cost < best[set] {
                best[set] = cost;
                choice[set] = Some(Pairing::Boundary(first));
            }
            // Or with any other defect in the set.
            let mut others = rest;
            while others != 0 {
                let second = others.trailing_zeros() as usize;
                others &= others - 1;
                let remaining = rest & !(1 << second);
                let cost =
                    best[remaining].saturating_add(self.pair_cost(defects[first], defects[second]));
                if cost < best[set] {
                    best[set] = cost;
                    choice[set] = Some(Pairing::Together(first, second));
                }
            }
        }
        // Reconstruct.
        let mut pairing = Vec::new();
        let mut set = full;
        while set != 0 {
            let c = choice[set].expect("all sets reachable");
            match c {
                Pairing::Boundary(a) => set &= !(1 << a),
                Pairing::Together(a, b) => set &= !((1 << a) | (1 << b)),
            }
            pairing.push(c);
        }
        pairing
    }

    fn greedy_pairing(&self, defects: &[(usize, usize)]) -> Vec<Pairing> {
        let n = defects.len();
        let mut unmatched: Vec<usize> = (0..n).collect();
        let mut pairing = Vec::new();
        while let Some(&a) = unmatched.first() {
            let boundary = self.boundary_cost(defects[a]);
            let mut best: Option<(usize, usize)> = None; // (cost, partner)
            for &b in &unmatched[1..] {
                let cost = self.pair_cost(defects[a], defects[b]);
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, b));
                }
            }
            match best {
                Some((cost, b)) if cost <= boundary => {
                    pairing.push(Pairing::Together(a, b));
                    unmatched.retain(|&x| x != a && x != b);
                }
                _ => {
                    pairing.push(Pairing::Boundary(a));
                    unmatched.retain(|&x| x != a);
                }
            }
        }
        pairing
    }

    /// The data qubits of a diagonal chain between two same-kind checks.
    ///
    /// Every intermediate coordinate must land on an *existing* check of
    /// the detecting kind so the telescoping syndrome cancellation holds:
    /// for X errors (Z checks) the zig in rows stays inside `1..=d-1`
    /// (no Z checks on the top/bottom rows); for Z errors (X checks) the
    /// zig in columns stays inside `1..=d-1`.
    fn chain_between(&self, from: (usize, usize), to: (usize, usize)) -> Vec<usize> {
        let d = self.d as isize;
        let mut qubits = Vec::new();
        let (mut r, mut c) = (from.0 as isize, from.1 as isize);
        let (tr, tc) = (to.0 as isize, to.1 as isize);
        // Zig bounds per axis: the axis hosting excluded boundary checks
        // must stay strictly inside.
        let (r_hi, c_hi) = match self.error_kind {
            CheckKind::X => (d - 1, d), // Z checks: rows 1..=d-1, cols 0..=d
            CheckKind::Z => (d, d - 1), // X checks: rows 0..=d, cols 1..=d-1
        };
        let (r_lo, c_lo) = match self.error_kind {
            CheckKind::X => (1, 0),
            CheckKind::Z => (0, 1),
        };
        while (r, c) != (tr, tc) {
            let dr = match tr.cmp(&r) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                // Rows done but columns remain: zig within the legal band
                // (defect parity guarantees an even number of zig steps).
                std::cmp::Ordering::Equal => {
                    if r < r_hi {
                        1
                    } else {
                        -1
                    }
                }
            };
            let dc = match tc.cmp(&c) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => {
                    if c < c_hi {
                        1
                    } else {
                        -1
                    }
                }
            };
            qubits.push(self.data_between((r, c), (dr, dc)));
            r += dr;
            c += dc;
            debug_assert!((r_lo..=r_hi).contains(&r) || r == tr, "row {r} off band");
            debug_assert!((c_lo..=c_hi).contains(&c) || c == tc, "col {c} off band");
        }
        qubits
    }

    /// The data qubits of the shortest chain from a check to its
    /// terminating boundary.
    fn chain_to_boundary(&self, from: (usize, usize)) -> Vec<usize> {
        let d = self.d as isize;
        let (mut r, mut c) = (from.0 as isize, from.1 as isize);
        let mut qubits = Vec::new();
        // Direction along the terminating axis; free axis stays in-range.
        match self.error_kind {
            CheckKind::X => {
                let dr: isize = if from.0 <= self.d / 2 { -1 } else { 1 };
                while r > 0 && r < d {
                    let dc: isize = if c < d { 1 } else { -1 };
                    qubits.push(self.data_between((r, c), (dr, dc)));
                    r += dr;
                    c += dc;
                    // Bounce the free axis back to keep coordinates legal.
                    if !(0..=d).contains(&c) {
                        c -= 2 * dc;
                    }
                }
            }
            CheckKind::Z => {
                let dc: isize = if from.1 <= self.d / 2 { -1 } else { 1 };
                while c > 0 && c < d {
                    let dr: isize = if r < d { 1 } else { -1 };
                    qubits.push(self.data_between((r, c), (dr, dc)));
                    r += dr;
                    c += dc;
                    if !(0..=d).contains(&r) {
                        r -= 2 * dr;
                    }
                }
            }
        }
        qubits
    }

    /// The data qubit between plaquette `(r, c)` and `(r+dr, c+dc)`.
    fn data_between(&self, from: (isize, isize), step: (isize, isize)) -> usize {
        let (r, c) = from;
        let (dr, dc) = step;
        let i = if dr > 0 { r } else { r - 1 };
        let j = if dc > 0 { c } else { c - 1 };
        debug_assert!(
            (0..self.d as isize).contains(&i) && (0..self.d as isize).contains(&j),
            "chain stepped off the data grid: ({i}, {j})"
        );
        (i as usize) * self.d + j as usize
    }
}

#[derive(Clone, Copy, Debug)]
enum Pairing {
    Together(usize, usize),
    Boundary(usize),
}

/// Removes qubits that appear an even number of times (Pauli
/// cancellation) and sorts the rest.
fn dedup_xor(qubits: &mut Vec<usize>) {
    qubits.sort_unstable();
    let mut out = Vec::with_capacity(qubits.len());
    let mut i = 0;
    while i < qubits.len() {
        let mut j = i;
        while j < qubits.len() && qubits[j] == qubits[i] {
            j += 1;
        }
        if (j - i) % 2 == 1 {
            out.push(qubits[i]);
        }
        i = j;
    }
    *qubits = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::{Rng, SeedableRng};

    fn syndrome_matches(code: &RotatedSurfaceCode, kind: CheckKind, errors: &[usize]) -> bool {
        let decoder = MatchingDecoder::new(code, kind);
        let syndrome = code.syndrome_of(errors, kind);
        let correction = decoder.decode(&syndrome);
        code.syndrome_of(&correction, kind) == syndrome
    }

    #[test]
    fn empty_syndrome_decodes_to_nothing() {
        let code = RotatedSurfaceCode::new(5);
        let decoder = MatchingDecoder::new(&code, CheckKind::X);
        assert!(decoder
            .decode(&vec![false; decoder.syndrome_len()])
            .is_empty());
    }

    #[test]
    fn single_errors_fully_corrected() {
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let decoder = MatchingDecoder::new(&code, kind);
                for q in 0..code.num_data_qubits() {
                    let syndrome = code.syndrome_of(&[q], kind);
                    let correction = decoder.decode(&syndrome);
                    // Syndrome must match exactly...
                    assert_eq!(
                        code.syndrome_of(&correction, kind),
                        syndrome,
                        "d={d} {kind:?} error on {q}"
                    );
                    // ...and error+correction must not implement a logical
                    // operator: its overlap with the crossing logical is
                    // even.
                    let logical = match kind {
                        CheckKind::X => code.logical_z_support(),
                        CheckKind::Z => code.logical_x_support(),
                    };
                    let mut combined = correction;
                    combined.push(q);
                    let overlap = combined.iter().filter(|x| logical.contains(x)).count();
                    assert_eq!(overlap % 2, 0, "d={d} {kind:?} error on {q}");
                }
            }
        }
    }

    #[test]
    fn correctable_weight_is_at_least_floor_d_half() {
        // Any (d-1)/2 errors on distinct rows decode without a logical
        // fault for X errors (a representative below-distance pattern).
        for d in [3, 5] {
            let code = RotatedSurfaceCode::new(d);
            let decoder = MatchingDecoder::new(&code, CheckKind::X);
            let t = (d - 1) / 2;
            let errors: Vec<usize> = (0..t).map(|k| code.data_index(2 * k, k)).collect();
            let syndrome = code.syndrome_of(&errors, CheckKind::X);
            let correction = decoder.decode(&syndrome);
            assert_eq!(code.syndrome_of(&correction, CheckKind::X), syndrome);
            let logical = code.logical_z_support();
            let mut combined = correction;
            combined.extend(&errors);
            dedup_xor(&mut combined);
            let overlap = combined.iter().filter(|x| logical.contains(x)).count();
            assert_eq!(overlap % 2, 0, "d={d} logical fault on correctable error");
        }
    }

    #[test]
    fn random_errors_always_produce_consistent_corrections() {
        // The correction need not equal the error, but must always clear
        // the syndrome.
        let mut rng = StdRng::seed_from_u64(77);
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            for _ in 0..200 {
                let weight = rng.gen_range(0..=d);
                let errors: Vec<usize> = (0..weight)
                    .map(|_| rng.gen_range(0..code.num_data_qubits()))
                    .collect();
                for kind in [CheckKind::X, CheckKind::Z] {
                    assert!(
                        syndrome_matches(&code, kind, &errors),
                        "d={d} {kind:?} errors {errors:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_syndromes_hit_union_find_path() {
        // Flip enough qubits that more than EXACT_LIMIT defects fire;
        // decode() must still clear the syndrome via the union-find
        // hand-off.
        let mut rng = StdRng::seed_from_u64(88);
        let code = RotatedSurfaceCode::new(9);
        for _ in 0..20 {
            let errors: Vec<usize> = (0..25)
                .map(|_| rng.gen_range(0..code.num_data_qubits()))
                .collect();
            assert!(syndrome_matches(&code, CheckKind::X, &errors));
        }
    }

    #[test]
    fn dense_default_path_matches_union_find_exactly() {
        // Above EXACT_LIMIT the default path *is* the union-find
        // decoder, byte-for-byte.
        let mut rng = StdRng::seed_from_u64(89);
        let code = RotatedSurfaceCode::new(9);
        let matching = MatchingDecoder::new(&code, CheckKind::X);
        let uf = crate::UnionFindDecoder::new(&code, CheckKind::X);
        for _ in 0..20 {
            let errors: Vec<usize> = (0..25)
                .map(|_| rng.gen_range(0..code.num_data_qubits()))
                .collect();
            let syndrome = code.syndrome_of(&errors, CheckKind::X);
            if syndrome.iter().filter(|s| **s).count() > EXACT_LIMIT {
                assert_eq!(matching.decode(&syndrome), uf.decode(&syndrome));
            }
        }
    }

    #[test]
    fn greedy_fallback_still_annihilates_dense_syndromes() {
        let mut rng = StdRng::seed_from_u64(90);
        let code = RotatedSurfaceCode::new(9);
        let decoder = MatchingDecoder::new(&code, CheckKind::X);
        for _ in 0..20 {
            let errors: Vec<usize> = (0..25)
                .map(|_| rng.gen_range(0..code.num_data_qubits()))
                .collect();
            let syndrome = code.syndrome_of(&errors, CheckKind::X);
            let correction = decoder.decode_greedy(&syndrome);
            assert_eq!(code.syndrome_of(&correction, CheckKind::X), syndrome);
        }
    }

    #[test]
    fn dedup_xor_cancels_pairs() {
        let mut v = vec![3, 1, 3, 2, 2, 2];
        dedup_xor(&mut v);
        assert_eq!(v, vec![1, 2]);
    }
}

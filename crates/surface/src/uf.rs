//! Union-find decoding for generic-distance rotated surface codes.
//!
//! The Delfosse–Nickerson union-find decoder replaces matching with a
//! near-linear-time cluster construction: every defect seeds a cluster on
//! the check graph; odd clusters grow outward by half an edge per round;
//! clusters merge (weighted union with path-halving find) when growing
//! edges meet; a cluster stops growing once it is *neutral* — even defect
//! parity, or touching a boundary vertex that can absorb one defect.
//! When every cluster is neutral, the fully-grown edges form an erasure
//! that provably supports a valid correction, extracted by peeling a
//! spanning forest leaf-by-leaf.
//!
//! The check graph here is derived purely from the check supports, with
//! no geometric assumptions: each data qubit is an edge between the (one
//! or two) detecting checks whose support contains it; qubits seen by a
//! single detecting check become edges to fresh virtual boundary
//! vertices. Because [`RotatedSurfaceCode::syndrome_of`] is defined by
//! exactly those supports, any peeled edge set annihilates its syndrome
//! by construction.
//!
//! Union-find is **not** minimum-weight: its corrections can be longer
//! than the matching decoder's, but the decoded coset — and hence the
//! logical failure rate — is what matters, and that is compared against
//! [`MatchingDecoder`](crate::MatchingDecoder) by the differential oracle
//! in `tests/uf_oracle.rs`.

use crate::{CheckKind, RotatedSurfaceCode};

/// A union-find decoder for one check family of a [`RotatedSurfaceCode`].
///
/// Unlike the exact matcher, cost is near-linear in the syndrome size, so
/// it decodes any odd distance with any defect density — it is the
/// default path above `MatchingDecoder`'s exact limit.
///
/// # Example
///
/// ```
/// use qpdo_surface::{CheckKind, RotatedSurfaceCode, UnionFindDecoder};
///
/// let code = RotatedSurfaceCode::new(13);
/// let decoder = UnionFindDecoder::new(&code, CheckKind::X);
/// let errors: Vec<usize> = (0..code.num_data_qubits()).step_by(7).collect();
/// let syndrome = code.syndrome_of(&errors, CheckKind::X);
/// let correction = decoder.decode(&syndrome);
/// assert_eq!(code.syndrome_of(&correction, CheckKind::X), syndrome);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    /// Number of detecting checks == syndrome length. Check vertices are
    /// `0..num_checks` in `checks_of` (syndrome) order; virtual boundary
    /// vertices follow.
    num_checks: usize,
    /// Check vertices plus one virtual vertex per boundary entry point.
    num_nodes: usize,
    /// `(vertex_a, vertex_b, data_qubit)` — exactly one edge per data
    /// qubit of the code.
    edges: Vec<(u32, u32, u32)>,
    /// Vertex → incident edge ids.
    adj: Vec<Vec<u32>>,
}

impl UnionFindDecoder {
    /// A decoder correcting errors of `error_kind` on `code`.
    ///
    /// # Panics
    ///
    /// Panics if a data qubit is not covered by one or two detecting
    /// checks — impossible for a well-formed rotated surface code
    /// (invariant checked at construction, not per decode).
    #[must_use]
    pub fn new(code: &RotatedSurfaceCode, error_kind: CheckKind) -> Self {
        let detecting = match error_kind {
            CheckKind::X => CheckKind::Z,
            CheckKind::Z => CheckKind::X,
        };
        // data qubit -> detecting checks whose support contains it.
        let mut owners: Vec<Vec<u32>> = vec![Vec::new(); code.num_data_qubits()];
        let mut num_checks = 0;
        for (i, ch) in code.checks_of(detecting).enumerate() {
            num_checks += 1;
            for &q in &ch.support {
                owners[q].push(i as u32);
            }
        }
        let mut edges = Vec::with_capacity(code.num_data_qubits());
        let mut num_nodes = num_checks;
        for (q, own) in owners.iter().enumerate() {
            match own.as_slice() {
                // Interior qubit: an edge between its two checks.
                [a, b] => edges.push((*a, *b, q as u32)),
                // Boundary qubit: an edge to a fresh virtual vertex, so
                // chains may terminate there.
                [a] => {
                    let virt = num_nodes as u32;
                    num_nodes += 1;
                    edges.push((*a, virt, q as u32));
                }
                _ => panic!("data qubit {q} covered by {} detecting checks", own.len()),
            }
        }
        let mut adj = vec![Vec::new(); num_nodes];
        for (e, &(a, b, _)) in edges.iter().enumerate() {
            adj[a as usize].push(e as u32);
            adj[b as usize].push(e as u32);
        }
        UnionFindDecoder {
            num_checks,
            num_nodes,
            edges,
            adj,
        }
    }

    /// The number of syndrome bits the decoder expects.
    #[must_use]
    pub fn syndrome_len(&self) -> usize {
        self.num_checks
    }

    /// Decodes a syndrome (one flag per detecting check, in `checks_of`
    /// order) into the sorted data qubits of a correction whose syndrome
    /// equals the input.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the code.
    #[must_use]
    pub fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        assert_eq!(syndrome.len(), self.num_checks, "syndrome length mismatch");
        if syndrome.iter().all(|s| !s) {
            return Vec::new();
        }
        let mut clusters = Clusters::new(self, syndrome);
        clusters.grow();
        clusters.peel(syndrome)
    }
}

/// Per-decode cluster state: a union-find forest over the graph vertices
/// with per-root parity/boundary bookkeeping, plus per-edge growth.
struct Clusters<'a> {
    dec: &'a UnionFindDecoder,
    parent: Vec<u32>,
    /// Vertices in the tree (for weighted union), valid at roots.
    size: Vec<u32>,
    /// Odd number of defects in the cluster, valid at roots.
    odd: Vec<bool>,
    /// Cluster contains a virtual boundary vertex, valid at roots.
    boundary: Vec<bool>,
    /// Frontier edge lists, valid at roots. May contain edges that have
    /// since become internal; those are dropped lazily when popped.
    frontier: Vec<Vec<u32>>,
    /// Half-edge growth per edge, saturating at 2 (= fully grown).
    growth: Vec<u8>,
}

impl<'a> Clusters<'a> {
    fn new(dec: &'a UnionFindDecoder, syndrome: &[bool]) -> Self {
        let n = dec.num_nodes;
        // Every vertex carries its full incident-edge list: merged
        // clusters then own every edge crossing their boundary (internal
        // edges are dropped lazily), so growth can expand through
        // absorbed non-defect vertices.
        let frontier = dec.adj.clone();
        Clusters {
            dec,
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            odd: syndrome
                .iter()
                .copied()
                .chain(std::iter::repeat(false))
                .take(n)
                .collect(),
            boundary: (0..n).map(|v| v >= dec.num_checks).collect(),
            frontier,
            growth: vec![0; dec.edges.len()],
        }
    }

    /// Path-halving find.
    fn find(&mut self, v: u32) -> u32 {
        let mut v = v;
        while self.parent[v as usize] != v {
            let grand = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grand;
            v = grand;
        }
        v
    }

    /// Weighted union of two distinct roots; returns the surviving root.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        debug_assert_ne!(a, b);
        let (root, child) = if self.size[a as usize] >= self.size[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        self.parent[child as usize] = root;
        self.size[root as usize] += self.size[child as usize];
        let child_odd = self.odd[child as usize];
        self.odd[root as usize] ^= child_odd;
        self.boundary[root as usize] |= self.boundary[child as usize];
        let mut moved = std::mem::take(&mut self.frontier[child as usize]);
        self.frontier[root as usize].append(&mut moved);
        root
    }

    /// A cluster keeps growing while it holds an odd number of defects
    /// and no boundary vertex to absorb the spare one.
    fn is_active(&self, root: u32) -> bool {
        self.odd[root as usize] && !self.boundary[root as usize]
    }

    /// Grows active clusters by half an edge per round until every
    /// cluster is neutral.
    fn grow(&mut self) {
        // Any cluster reaches a boundary vertex within the graph
        // diameter, so 2·|E| + 2 half-edge rounds always suffice.
        for _round in 0..2 * self.dec.edges.len() + 2 {
            let seeds: Vec<u32> = (0..self.dec.num_nodes as u32)
                .filter(|&v| self.parent[v as usize] == v && self.is_active(v))
                .collect();
            if seeds.is_empty() {
                return;
            }
            for seed in seeds {
                // A merge earlier in the round may have absorbed or
                // neutralized this cluster.
                let root = self.find(seed);
                if !self.is_active(root) {
                    continue;
                }
                self.grow_cluster(root);
            }
        }
        unreachable!("union-find growth failed to neutralize all clusters");
    }

    /// Advances every frontier edge of one cluster by half a step.
    fn grow_cluster(&mut self, root: u32) {
        let list = std::mem::take(&mut self.frontier[root as usize]);
        let mut keep = Vec::with_capacity(list.len());
        for e in list {
            let (a, b, _) = self.dec.edges[e as usize];
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                // Became internal; completing it would only add a cycle.
                continue;
            }
            self.growth[e as usize] += 1;
            if self.growth[e as usize] >= 2 {
                self.union(ra, rb);
            } else {
                keep.push(e);
            }
        }
        let root = self.find(root);
        self.frontier[root as usize].extend(keep);
    }

    /// Extracts a correction from the fully-grown edges by peeling a
    /// spanning forest: leaves carrying a defect contribute their tree
    /// edge and hand the defect to their parent; a boundary root absorbs
    /// whatever remains.
    fn peel(self, syndrome: &[bool]) -> Vec<usize> {
        let dec = self.dec;
        // Erasure adjacency: fully-grown edges only.
        let mut grown_adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); dec.num_nodes];
        for (e, &(a, b, _)) in dec.edges.iter().enumerate() {
            if self.growth[e] >= 2 {
                grown_adj[a as usize].push((b, e as u32));
                grown_adj[b as usize].push((a, e as u32));
            }
        }
        let mut defect = vec![false; dec.num_nodes];
        defect[..dec.num_checks].copy_from_slice(syndrome);
        let mut visited = vec![false; dec.num_nodes];
        let mut parent = vec![u32::MAX; dec.num_nodes];
        let mut parent_edge = vec![u32::MAX; dec.num_nodes];
        let mut correction = Vec::new();

        for v in 0..dec.num_checks as u32 {
            if !defect[v as usize] || visited[v as usize] {
                continue;
            }
            // Pass 1: collect the erasure component, preferring a
            // boundary vertex as the peeling root so it can absorb an
            // odd defect.
            let mut comp = vec![v];
            visited[v as usize] = true;
            let mut head = 0;
            while head < comp.len() {
                let u = comp[head];
                head += 1;
                for &(w, _) in &grown_adj[u as usize] {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        comp.push(w);
                    }
                }
            }
            let root = comp
                .iter()
                .copied()
                .find(|&u| u >= dec.num_checks as u32)
                .unwrap_or(v);
            // Pass 2: BFS spanning tree from the root; BFS order puts
            // parents before children, so the reverse order peels
            // leaves first.
            for &u in &comp {
                parent[u as usize] = u32::MAX;
            }
            parent[root as usize] = root;
            let mut order = vec![root];
            let mut head = 0;
            while head < order.len() {
                let u = order[head];
                head += 1;
                for &(w, e) in &grown_adj[u as usize] {
                    if parent[w as usize] == u32::MAX {
                        parent[w as usize] = u;
                        parent_edge[w as usize] = e;
                        order.push(w);
                    }
                }
            }
            for &u in order.iter().skip(1).rev() {
                if defect[u as usize] {
                    correction.push(dec.edges[parent_edge[u as usize] as usize].2 as usize);
                    defect[u as usize] = false;
                    defect[parent[u as usize] as usize] ^= true;
                }
            }
            // A residual defect at the root is legal only on a boundary
            // vertex (the virtual vertex "absorbs" it — the chain ends
            // on the open boundary).
            debug_assert!(
                !defect[root as usize] || root >= dec.num_checks as u32,
                "unpaired defect survived peeling"
            );
        }
        correction.sort_unstable();
        correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::{Rng, SeedableRng};

    #[test]
    fn graph_has_one_edge_per_data_qubit() {
        for d in [3, 5, 7, 9, 11, 13] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                assert_eq!(dec.edges.len(), code.num_data_qubits(), "d={d} {kind:?}");
                let mut qubits: Vec<u32> = dec.edges.iter().map(|&(_, _, q)| q).collect();
                qubits.sort_unstable();
                let expected: Vec<u32> = (0..code.num_data_qubits() as u32).collect();
                assert_eq!(qubits, expected, "d={d} {kind:?}");
            }
        }
    }

    #[test]
    fn empty_syndrome_decodes_to_nothing() {
        let code = RotatedSurfaceCode::new(7);
        let dec = UnionFindDecoder::new(&code, CheckKind::X);
        assert!(dec.decode(&vec![false; dec.syndrome_len()]).is_empty());
    }

    #[test]
    fn single_errors_fully_corrected_without_logical_fault() {
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                let logical = match kind {
                    CheckKind::X => code.logical_z_support(),
                    CheckKind::Z => code.logical_x_support(),
                };
                for q in 0..code.num_data_qubits() {
                    let syndrome = code.syndrome_of(&[q], kind);
                    let correction = dec.decode(&syndrome);
                    assert_eq!(
                        code.syndrome_of(&correction, kind),
                        syndrome,
                        "d={d} {kind:?} error on {q}"
                    );
                    let mut combined = correction;
                    combined.push(q);
                    let overlap = combined.iter().filter(|x| logical.contains(x)).count();
                    assert_eq!(overlap % 2, 0, "d={d} {kind:?} error on {q}");
                }
            }
        }
    }

    #[test]
    fn random_syndromes_always_annihilated() {
        let mut rng = StdRng::seed_from_u64(1009);
        for d in [3, 5, 9, 13] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                for _ in 0..100 {
                    let weight = rng.gen_range(0..=code.num_data_qubits() / 2);
                    let errors: Vec<usize> = (0..weight)
                        .map(|_| rng.gen_range(0..code.num_data_qubits()))
                        .collect();
                    let syndrome = code.syndrome_of(&errors, kind);
                    let correction = dec.decode(&syndrome);
                    assert_eq!(
                        code.syndrome_of(&correction, kind),
                        syndrome,
                        "d={d} {kind:?} errors {errors:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_all_checks_fired_terminates() {
        for d in [3, 7, 13] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                let syndrome = vec![true; dec.syndrome_len()];
                let correction = dec.decode(&syndrome);
                assert_eq!(code.syndrome_of(&correction, kind), syndrome, "d={d}");
            }
        }
    }
}

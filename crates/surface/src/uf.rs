//! Union-find decoding for generic-distance rotated surface codes.
//!
//! The Delfosse–Nickerson union-find decoder replaces matching with a
//! near-linear-time cluster construction: every defect seeds a cluster on
//! the check graph; odd clusters grow outward by half an edge per round;
//! clusters merge (weighted union with path-halving find) when growing
//! edges meet; a cluster stops growing once it is *neutral* — even defect
//! parity, or touching a boundary vertex that can absorb one defect.
//! When every cluster is neutral, the fully-grown edges form an erasure
//! that provably supports a valid correction, extracted by peeling a
//! spanning forest leaf-by-leaf.
//!
//! The check graph here is derived purely from the check supports, with
//! no geometric assumptions: each data qubit is an edge between the (one
//! or two) detecting checks whose support contains it; qubits seen by a
//! single detecting check become edges to fresh virtual boundary
//! vertices. Because [`RotatedSurfaceCode::syndrome_of`] is defined by
//! exactly those supports, any peeled edge set annihilates its syndrome
//! by construction.
//!
//! Union-find is **not** minimum-weight: its corrections can be longer
//! than the matching decoder's, but the decoded coset — and hence the
//! logical failure rate — is what matters, and that is compared against
//! [`MatchingDecoder`](crate::MatchingDecoder) by the differential oracle
//! in `tests/uf_oracle.rs`.
//!
//! ## Scratch reuse
//!
//! Decoding a 64-lane batch calls the decoder 64 times on the same
//! graph; the serving path decodes hundreds of batches per job. The
//! per-decode cluster state (union-find forest, frontier lists, growth
//! counters, peeling scratch) therefore lives *inside* the decoder,
//! behind a [`RefCell`], and is reset — never reallocated — on each
//! call. A warmed decoder runs [`UnionFindDecoder::decode_into`]
//! without touching the heap (pinned by `tests/uf_alloc.rs`), which is
//! where the `uf_decode_*` latency wins in `results/BENCH_decoder.json`
//! come from.

use std::cell::RefCell;

use crate::{CheckKind, RotatedSurfaceCode};

/// A union-find decoder for one check family of a [`RotatedSurfaceCode`].
///
/// Unlike the exact matcher, cost is near-linear in the syndrome size, so
/// it decodes any odd distance with any defect density — it is the
/// default path above `MatchingDecoder`'s exact limit.
///
/// The decoder owns its decode scratch (see the module docs), so one
/// instance should be reused across as many `decode` calls as possible;
/// [`crate::run_ler_surface`] keeps one per `(d, kind)` per worker
/// thread for exactly this reason. The scratch sits behind a
/// [`RefCell`], which makes the decoder cheap to call through a shared
/// reference but not `Sync` — give each worker its own clone.
///
/// # Example
///
/// ```
/// use qpdo_surface::{CheckKind, RotatedSurfaceCode, UnionFindDecoder};
///
/// let code = RotatedSurfaceCode::new(13);
/// let decoder = UnionFindDecoder::new(&code, CheckKind::X);
/// let errors: Vec<usize> = (0..code.num_data_qubits()).step_by(7).collect();
/// let syndrome = code.syndrome_of(&errors, CheckKind::X);
/// let correction = decoder.decode(&syndrome);
/// assert_eq!(code.syndrome_of(&correction, CheckKind::X), syndrome);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    /// Number of detecting checks == syndrome length. Check vertices are
    /// `0..num_checks` in `checks_of` (syndrome) order; virtual boundary
    /// vertices follow.
    num_checks: usize,
    /// Check vertices plus one virtual vertex per boundary entry point.
    num_nodes: usize,
    /// `(vertex_a, vertex_b, data_qubit)` — exactly one edge per data
    /// qubit of the code.
    edges: Vec<(u32, u32, u32)>,
    /// Vertex → incident edge ids.
    adj: Vec<Vec<u32>>,
    /// Per-decode cluster/peeling state, reset (not reallocated) each
    /// call.
    scratch: RefCell<Scratch>,
}

impl UnionFindDecoder {
    /// A decoder correcting errors of `error_kind` on `code`.
    ///
    /// # Panics
    ///
    /// Panics if a data qubit is not covered by one or two detecting
    /// checks — impossible for a well-formed rotated surface code
    /// (invariant checked at construction, not per decode).
    #[must_use]
    pub fn new(code: &RotatedSurfaceCode, error_kind: CheckKind) -> Self {
        let detecting = match error_kind {
            CheckKind::X => CheckKind::Z,
            CheckKind::Z => CheckKind::X,
        };
        // data qubit -> detecting checks whose support contains it.
        let mut owners: Vec<Vec<u32>> = vec![Vec::new(); code.num_data_qubits()];
        let mut num_checks = 0;
        for (i, ch) in code.checks_of(detecting).enumerate() {
            num_checks += 1;
            for &q in &ch.support {
                owners[q].push(i as u32);
            }
        }
        let mut edges = Vec::with_capacity(code.num_data_qubits());
        let mut num_nodes = num_checks;
        for (q, own) in owners.iter().enumerate() {
            match own.as_slice() {
                // Interior qubit: an edge between its two checks.
                [a, b] => edges.push((*a, *b, q as u32)),
                // Boundary qubit: an edge to a fresh virtual vertex, so
                // chains may terminate there.
                [a] => {
                    let virt = num_nodes as u32;
                    num_nodes += 1;
                    edges.push((*a, virt, q as u32));
                }
                _ => panic!("data qubit {q} covered by {} detecting checks", own.len()),
            }
        }
        let mut adj = vec![Vec::new(); num_nodes];
        for (e, &(a, b, _)) in edges.iter().enumerate() {
            adj[a as usize].push(e as u32);
            adj[b as usize].push(e as u32);
        }
        UnionFindDecoder {
            num_checks,
            num_nodes,
            edges,
            adj,
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// The number of syndrome bits the decoder expects.
    #[must_use]
    pub fn syndrome_len(&self) -> usize {
        self.num_checks
    }

    /// Decodes a syndrome (one flag per detecting check, in `checks_of`
    /// order) into the sorted data qubits of a correction whose syndrome
    /// equals the input.
    ///
    /// Allocates only the returned vector; hot paths that can reuse an
    /// output buffer should call [`UnionFindDecoder::decode_into`].
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the code.
    #[must_use]
    pub fn decode(&self, syndrome: &[bool]) -> Vec<usize> {
        let mut correction = Vec::new();
        self.decode_into(syndrome, &mut correction);
        correction
    }

    /// [`UnionFindDecoder::decode`] into a caller-owned buffer, clearing
    /// it first. With a warmed decoder and a warmed buffer this performs
    /// no heap allocation at all (pinned by `tests/uf_alloc.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length does not match the code.
    pub fn decode_into(&self, syndrome: &[bool], correction: &mut Vec<usize>) {
        assert_eq!(syndrome.len(), self.num_checks, "syndrome length mismatch");
        correction.clear();
        if syndrome.iter().all(|s| !s) {
            return;
        }
        let mut scratch = self.scratch.borrow_mut();
        let mut clusters = Clusters {
            dec: self,
            s: &mut scratch,
        };
        clusters.reset(syndrome);
        clusters.grow();
        clusters.peel(syndrome, correction);
    }
}

/// Per-decode cluster state: a union-find forest over the graph vertices
/// with per-root parity/boundary bookkeeping, per-edge growth, and the
/// peeling workspace. Lives inside the decoder and is reset — with every
/// buffer's capacity retained — on each call, so a warmed decoder never
/// reallocates it.
#[derive(Clone, Debug, Default)]
struct Scratch {
    parent: Vec<u32>,
    /// Vertices in the tree (for weighted union), valid at roots.
    size: Vec<u32>,
    /// Odd number of defects in the cluster, valid at roots.
    odd: Vec<bool>,
    /// Cluster contains a virtual boundary vertex, valid at roots.
    boundary: Vec<bool>,
    /// Frontier edge lists, valid at roots. May contain edges that have
    /// since become internal; those are dropped lazily when popped.
    frontier: Vec<Vec<u32>>,
    /// Half-edge growth per edge, saturating at 2 (= fully grown).
    growth: Vec<u8>,
    /// Growth-round seeds (active roots at the start of the round).
    seeds: Vec<u32>,
    /// The frontier list being grown, swapped out of its slot so merges
    /// can append to live frontier slots mid-iteration.
    work: Vec<u32>,
    /// Frontier edges surviving a growth round.
    keep: Vec<u32>,
    /// Peeling: erasure adjacency over fully-grown edges only.
    grown_adj: Vec<Vec<(u32, u32)>>,
    /// Peeling: live defect flags, consumed leaf-by-leaf.
    defect: Vec<bool>,
    /// Peeling: vertices already assigned to an erasure component.
    visited: Vec<bool>,
    /// Peeling: spanning-forest parent per vertex.
    peel_parent: Vec<u32>,
    /// Peeling: tree edge to the parent.
    peel_edge: Vec<u32>,
    /// Peeling: the current erasure component (pass-1 BFS order).
    comp: Vec<u32>,
    /// Peeling: spanning-tree BFS order (parents before children).
    order: Vec<u32>,
}

/// A borrow of the decoder graph plus its scratch for one decode call.
struct Clusters<'a> {
    dec: &'a UnionFindDecoder,
    s: &'a mut Scratch,
}

impl Clusters<'_> {
    /// Resets the scratch to the initial cluster state for `syndrome`.
    /// Every vertex carries its full incident-edge list: merged clusters
    /// then own every edge crossing their boundary (internal edges are
    /// dropped lazily), so growth can expand through absorbed non-defect
    /// vertices.
    fn reset(&mut self, syndrome: &[bool]) {
        let n = self.dec.num_nodes;
        let s = &mut *self.s;
        s.parent.clear();
        s.parent.extend(0..n as u32);
        s.size.clear();
        s.size.resize(n, 1);
        s.odd.clear();
        s.odd.extend(
            syndrome
                .iter()
                .copied()
                .chain(std::iter::repeat(false))
                .take(n),
        );
        s.boundary.clear();
        s.boundary.extend((0..n).map(|v| v >= self.dec.num_checks));
        s.growth.clear();
        s.growth.resize(self.dec.edges.len(), 0);
        if s.frontier.len() < n {
            s.frontier.resize_with(n, Vec::new);
        }
        for (slot, adj) in s.frontier.iter_mut().zip(&self.dec.adj) {
            slot.clear();
            slot.extend_from_slice(adj);
        }
    }

    /// Path-halving find.
    fn find(&mut self, v: u32) -> u32 {
        let mut v = v;
        while self.s.parent[v as usize] != v {
            let grand = self.s.parent[self.s.parent[v as usize] as usize];
            self.s.parent[v as usize] = grand;
            v = grand;
        }
        v
    }

    /// Weighted union of two distinct roots; returns the surviving root.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        debug_assert_ne!(a, b);
        let s = &mut *self.s;
        let (root, child) = if s.size[a as usize] >= s.size[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        s.parent[child as usize] = root;
        s.size[root as usize] += s.size[child as usize];
        let child_odd = s.odd[child as usize];
        s.odd[root as usize] ^= child_odd;
        s.boundary[root as usize] |= s.boundary[child as usize];
        // Copy-and-clear instead of moving the child's buffer: every
        // frontier buffer stays in its home slot, so slot capacities
        // ratchet to their per-slot high-water mark and a single warmed
        // pass decodes with zero allocations (tests/uf_alloc.rs).
        let moved = std::mem::take(&mut s.frontier[child as usize]);
        s.frontier[root as usize].extend_from_slice(&moved);
        let mut moved = moved;
        moved.clear();
        s.frontier[child as usize] = moved;
        root
    }

    /// A cluster keeps growing while it holds an odd number of defects
    /// and no boundary vertex to absorb the spare one.
    fn is_active(&self, root: u32) -> bool {
        self.s.odd[root as usize] && !self.s.boundary[root as usize]
    }

    /// Grows active clusters by half an edge per round until every
    /// cluster is neutral.
    fn grow(&mut self) {
        // Any cluster reaches a boundary vertex within the graph
        // diameter, so 2·|E| + 2 half-edge rounds always suffice.
        for _round in 0..2 * self.dec.edges.len() + 2 {
            let mut seeds = std::mem::take(&mut self.s.seeds);
            seeds.clear();
            seeds.extend(
                (0..self.dec.num_nodes as u32)
                    .filter(|&v| self.s.parent[v as usize] == v && self.is_active(v)),
            );
            if seeds.is_empty() {
                self.s.seeds = seeds;
                return;
            }
            for &seed in &seeds {
                // A merge earlier in the round may have absorbed or
                // neutralized this cluster.
                let root = self.find(seed);
                if !self.is_active(root) {
                    continue;
                }
                self.grow_cluster(root);
            }
            self.s.seeds = seeds;
        }
        unreachable!("union-find growth failed to neutralize all clusters");
    }

    /// Advances every frontier edge of one cluster by half a step.
    fn grow_cluster(&mut self, root: u32) {
        // Copy the list into the workspace and clear the slot in place
        // (never move buffers between slots): merges during the loop may
        // append to the slot, and home-slot buffers are what lets the
        // warmed decoder run allocation-free.
        {
            let s = &mut *self.s;
            s.work.clear();
            s.work.extend_from_slice(&s.frontier[root as usize]);
            s.frontier[root as usize].clear();
        }
        self.s.keep.clear();
        for i in 0..self.s.work.len() {
            let e = self.s.work[i];
            let (a, b, _) = self.dec.edges[e as usize];
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                // Became internal; completing it would only add a cycle.
                continue;
            }
            self.s.growth[e as usize] += 1;
            if self.s.growth[e as usize] >= 2 {
                self.union(ra, rb);
            } else {
                self.s.keep.push(e);
            }
        }
        self.s.work.clear();
        let root = self.find(root);
        let s = &mut *self.s;
        s.frontier[root as usize].extend_from_slice(&s.keep);
    }

    /// Extracts a correction from the fully-grown edges by peeling a
    /// spanning forest: leaves carrying a defect contribute their tree
    /// edge and hand the defect to their parent; a boundary root absorbs
    /// whatever remains.
    fn peel(self, syndrome: &[bool], correction: &mut Vec<usize>) {
        let dec = self.dec;
        let s = self.s;
        let n = dec.num_nodes;
        // Erasure adjacency: fully-grown edges only.
        if s.grown_adj.len() < n {
            s.grown_adj.resize_with(n, Vec::new);
        }
        for slot in s.grown_adj.iter_mut().take(n) {
            slot.clear();
        }
        for (e, &(a, b, _)) in dec.edges.iter().enumerate() {
            if s.growth[e] >= 2 {
                s.grown_adj[a as usize].push((b, e as u32));
                s.grown_adj[b as usize].push((a, e as u32));
            }
        }
        s.defect.clear();
        s.defect.resize(n, false);
        s.defect[..dec.num_checks].copy_from_slice(syndrome);
        s.visited.clear();
        s.visited.resize(n, false);
        s.peel_parent.clear();
        s.peel_parent.resize(n, u32::MAX);
        s.peel_edge.clear();
        s.peel_edge.resize(n, u32::MAX);

        for v in 0..dec.num_checks as u32 {
            if !s.defect[v as usize] || s.visited[v as usize] {
                continue;
            }
            // Pass 1: collect the erasure component, preferring a
            // boundary vertex as the peeling root so it can absorb an
            // odd defect.
            s.comp.clear();
            s.comp.push(v);
            s.visited[v as usize] = true;
            let mut head = 0;
            while head < s.comp.len() {
                let u = s.comp[head];
                head += 1;
                for i in 0..s.grown_adj[u as usize].len() {
                    let (w, _) = s.grown_adj[u as usize][i];
                    if !s.visited[w as usize] {
                        s.visited[w as usize] = true;
                        s.comp.push(w);
                    }
                }
            }
            let root = s
                .comp
                .iter()
                .copied()
                .find(|&u| u >= dec.num_checks as u32)
                .unwrap_or(v);
            // Pass 2: BFS spanning tree from the root; BFS order puts
            // parents before children, so the reverse order peels
            // leaves first.
            for i in 0..s.comp.len() {
                let u = s.comp[i];
                s.peel_parent[u as usize] = u32::MAX;
            }
            s.peel_parent[root as usize] = root;
            s.order.clear();
            s.order.push(root);
            let mut head = 0;
            while head < s.order.len() {
                let u = s.order[head];
                head += 1;
                for i in 0..s.grown_adj[u as usize].len() {
                    let (w, e) = s.grown_adj[u as usize][i];
                    if s.peel_parent[w as usize] == u32::MAX {
                        s.peel_parent[w as usize] = u;
                        s.peel_edge[w as usize] = e;
                        s.order.push(w);
                    }
                }
            }
            for &u in s.order.iter().skip(1).rev() {
                if s.defect[u as usize] {
                    correction.push(dec.edges[s.peel_edge[u as usize] as usize].2 as usize);
                    s.defect[u as usize] = false;
                    s.defect[s.peel_parent[u as usize] as usize] ^= true;
                }
            }
            // A residual defect at the root is legal only on a boundary
            // vertex (the virtual vertex "absorbs" it — the chain ends
            // on the open boundary).
            debug_assert!(
                !s.defect[root as usize] || root >= dec.num_checks as u32,
                "unpaired defect survived peeling"
            );
        }
        correction.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::{Rng, SeedableRng};

    #[test]
    fn graph_has_one_edge_per_data_qubit() {
        for d in [3, 5, 7, 9, 11, 13] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                assert_eq!(dec.edges.len(), code.num_data_qubits(), "d={d} {kind:?}");
                let mut qubits: Vec<u32> = dec.edges.iter().map(|&(_, _, q)| q).collect();
                qubits.sort_unstable();
                let expected: Vec<u32> = (0..code.num_data_qubits() as u32).collect();
                assert_eq!(qubits, expected, "d={d} {kind:?}");
            }
        }
    }

    #[test]
    fn empty_syndrome_decodes_to_nothing() {
        let code = RotatedSurfaceCode::new(7);
        let dec = UnionFindDecoder::new(&code, CheckKind::X);
        assert!(dec.decode(&vec![false; dec.syndrome_len()]).is_empty());
    }

    #[test]
    fn single_errors_fully_corrected_without_logical_fault() {
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                let logical = match kind {
                    CheckKind::X => code.logical_z_support(),
                    CheckKind::Z => code.logical_x_support(),
                };
                for q in 0..code.num_data_qubits() {
                    let syndrome = code.syndrome_of(&[q], kind);
                    let correction = dec.decode(&syndrome);
                    assert_eq!(
                        code.syndrome_of(&correction, kind),
                        syndrome,
                        "d={d} {kind:?} error on {q}"
                    );
                    let mut combined = correction;
                    combined.push(q);
                    let overlap = combined.iter().filter(|x| logical.contains(x)).count();
                    assert_eq!(overlap % 2, 0, "d={d} {kind:?} error on {q}");
                }
            }
        }
    }

    #[test]
    fn random_syndromes_always_annihilated() {
        let mut rng = StdRng::seed_from_u64(1009);
        for d in [3, 5, 9, 13] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                for _ in 0..100 {
                    let weight = rng.gen_range(0..=code.num_data_qubits() / 2);
                    let errors: Vec<usize> = (0..weight)
                        .map(|_| rng.gen_range(0..code.num_data_qubits()))
                        .collect();
                    let syndrome = code.syndrome_of(&errors, kind);
                    let correction = dec.decode(&syndrome);
                    assert_eq!(
                        code.syndrome_of(&correction, kind),
                        syndrome,
                        "d={d} {kind:?} errors {errors:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_all_checks_fired_terminates() {
        for d in [3, 7, 13] {
            let code = RotatedSurfaceCode::new(d);
            for kind in [CheckKind::X, CheckKind::Z] {
                let dec = UnionFindDecoder::new(&code, kind);
                let syndrome = vec![true; dec.syndrome_len()];
                let correction = dec.decode(&syndrome);
                assert_eq!(code.syndrome_of(&correction, kind), syndrome, "d={d}");
            }
        }
    }

    /// Scratch reuse must be invisible: a fresh decoder and a heavily
    /// reused one produce identical corrections on identical syndromes,
    /// in any interleaving.
    #[test]
    fn reused_scratch_matches_fresh_decoder() {
        let mut rng = StdRng::seed_from_u64(2027);
        for d in [3, 7, 13] {
            let code = RotatedSurfaceCode::new(d);
            let reused = UnionFindDecoder::new(&code, CheckKind::X);
            let mut out = Vec::new();
            for round in 0..50 {
                let weight = rng.gen_range(0..=code.num_data_qubits());
                let errors: Vec<usize> = (0..weight)
                    .map(|_| rng.gen_range(0..code.num_data_qubits()))
                    .collect();
                let syndrome = code.syndrome_of(&errors, CheckKind::X);
                let fresh = UnionFindDecoder::new(&code, CheckKind::X);
                reused.decode_into(&syndrome, &mut out);
                assert_eq!(out, fresh.decode(&syndrome), "d={d} round {round}");
            }
        }
    }

    /// `decode_into` clears whatever the caller left in the buffer.
    #[test]
    fn decode_into_clears_the_buffer() {
        let code = RotatedSurfaceCode::new(5);
        let dec = UnionFindDecoder::new(&code, CheckKind::Z);
        let mut out = vec![7usize, 8, 9];
        dec.decode_into(&vec![false; dec.syndrome_len()], &mut out);
        assert!(out.is_empty());
    }
}

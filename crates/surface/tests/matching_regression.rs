//! Regression pins for the matching decoder around the `EXACT_LIMIT`
//! boundary, now that the union-find decoder owns the dense path.
//!
//! Two things must stay true while the default dense path evolves:
//!
//! - the legacy greedy fallback (`decode_greedy`) still produces valid
//!   corrections on both sides of the 12-defect boundary — it is the
//!   baseline the union-find decoder is measured against, and
//! - the exact path (≤ 12 defects) is byte-stable against a golden KAT,
//!   because it is the oracle the differential tests trust.

use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_surface::{CheckKind, MatchingDecoder, RotatedSurfaceCode, UnionFindDecoder};

/// A random syndrome with exactly `defects` fired checks.
fn syndrome_with_defects(len: usize, defects: usize, rng: &mut StdRng) -> Vec<bool> {
    let mut syndrome = vec![false; len];
    while syndrome.iter().filter(|s| **s).count() < defects {
        let i = rng.gen_range(0..len);
        syndrome[i] = true;
    }
    syndrome
}

#[test]
fn greedy_fallback_annihilates_at_the_exact_limit_boundary() {
    // 12 defects (last exact-path count) and 13 (first dense count):
    // the greedy fallback must clear both, as it did before the
    // union-find decoder took over the default dense path.
    let mut rng = StdRng::seed_from_u64(0xEC0);
    let code = RotatedSurfaceCode::new(9);
    for kind in [CheckKind::X, CheckKind::Z] {
        let decoder = MatchingDecoder::new(&code, kind);
        for defects in [12, 13] {
            for trial in 0..25 {
                let syndrome = syndrome_with_defects(decoder.syndrome_len(), defects, &mut rng);
                let correction = decoder.decode_greedy(&syndrome);
                assert_eq!(
                    code.syndrome_of(&correction, kind),
                    syndrome,
                    "{kind:?} {defects} defects trial {trial}"
                );
            }
        }
    }
}

#[test]
fn default_path_switches_to_union_find_above_the_limit() {
    // At exactly 13 defects, decode() must be byte-identical to the
    // union-find decoder (no greedy fallback on the default path); at
    // 12 it takes the exact path, which is minimum-weight and therefore
    // never longer than greedy's answer.
    let mut rng = StdRng::seed_from_u64(0xB0DA);
    let code = RotatedSurfaceCode::new(9);
    let decoder = MatchingDecoder::new(&code, CheckKind::X);
    let uf = UnionFindDecoder::new(&code, CheckKind::X);
    for trial in 0..25 {
        let dense = syndrome_with_defects(decoder.syndrome_len(), 13, &mut rng);
        assert_eq!(
            decoder.decode(&dense),
            uf.decode(&dense),
            "trial {trial}: dense default path is not the union-find decoder"
        );
        let sparse = syndrome_with_defects(decoder.syndrome_len(), 12, &mut rng);
        let exact = decoder.decode(&sparse);
        let greedy = decoder.decode_greedy(&sparse);
        assert_eq!(code.syndrome_of(&exact, CheckKind::X), sparse);
        assert_eq!(code.syndrome_of(&greedy, CheckKind::X), sparse);
        assert!(
            exact.len() <= greedy.len(),
            "trial {trial}: exact correction longer than greedy's"
        );
    }
}

/// Golden KAT: the exact path's corrections for fixed seeded syndromes
/// at d = 5 must never change — this is the oracle the union-find
/// differential tests are gated against, so it is pinned byte-for-byte.
///
/// Regenerate with
/// `cargo test -p qpdo-surface --test matching_regression -- --ignored --nocapture`
/// and paste the printed table if the exact path legitimately changes.
#[test]
fn exact_path_matches_golden_kat() {
    let (code, decoder, syndromes) = kat_inputs();
    let expected: [&[usize]; 10] = KAT_EXPECTED;
    for (trial, (syndrome, want)) in syndromes.iter().zip(expected).enumerate() {
        let got = decoder.decode(syndrome);
        assert_eq!(
            got, want,
            "KAT trial {trial} drifted — the exact oracle changed"
        );
        assert_eq!(code.syndrome_of(&got, CheckKind::X), *syndrome);
    }
}

const KAT_EXPECTED: [&[usize]; 10] = [
    &[16, 18, 24],
    &[11, 17],
    &[11],
    &[10, 18],
    &[2, 10, 16],
    &[2, 16, 18],
    &[4, 11, 13, 16],
    &[0, 15, 17],
    &[0, 2, 9, 19, 21],
    &[4, 11, 12, 24],
];

/// The fixed KAT inputs: seeded error patterns at d = 5 kept to the
/// exact path (≤ 12 defects).
fn kat_inputs() -> (RotatedSurfaceCode, MatchingDecoder, Vec<Vec<bool>>) {
    let code = RotatedSurfaceCode::new(5);
    let decoder = MatchingDecoder::new(&code, CheckKind::X);
    let mut rng = StdRng::seed_from_u64(0x5EEDCA7);
    let mut syndromes = Vec::new();
    while syndromes.len() < 10 {
        let errors: Vec<usize> = (0..code.num_data_qubits())
            .filter(|_| rng.gen_bool(0.15))
            .collect();
        let syndrome = code.syndrome_of(&errors, CheckKind::X);
        if syndrome.iter().filter(|s| **s).count() <= 12 && syndrome.iter().any(|s| *s) {
            syndromes.push(syndrome);
        }
    }
    (code, decoder, syndromes)
}

/// Prints the current exact-path outputs in KAT table form.
#[test]
#[ignore = "generator for KAT_EXPECTED — run with --ignored --nocapture"]
fn generate_kat() {
    let (_code, decoder, syndromes) = kat_inputs();
    for syndrome in &syndromes {
        println!("    &{:?},", decoder.decode(syndrome));
    }
}

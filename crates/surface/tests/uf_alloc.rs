//! Steady-state allocation audit for the union-find decoder.
//!
//! ROADMAP's "decoder throughput on the serving path" item: the decoder
//! used to rebuild its parent/size/frontier arrays on every `decode`
//! call. The scratch now lives inside the decoder and is reused, so a
//! warmed decoder driven through `decode_into` with a warmed output
//! buffer must not touch the heap. A counting global allocator proves
//! it.
//!
//! This file deliberately holds a single `#[test]`: Rust runs tests in
//! threads sharing one global allocator, so any sibling test's
//! allocations would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_surface::{CheckKind, RotatedSurfaceCode, UnionFindDecoder};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_decoder_decodes_without_allocating() {
    let code = RotatedSurfaceCode::new(9);
    let decoder = UnionFindDecoder::new(&code, CheckKind::X);
    let n = decoder.syndrome_len();

    // A fixed syndrome workload, dense enough to exercise growth, merges
    // and peeling. The measured window replays the exact same syndromes
    // as the warm-up, so every scratch buffer has already reached its
    // high-water mark before counting starts.
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    let workload: Vec<Vec<bool>> = (0..32)
        .map(|_| (0..n).map(|_| rng.gen_bool(0.12)).collect())
        .collect();

    let mut correction = Vec::new();
    let mut warm = 0usize;
    for syndrome in &workload {
        decoder.decode_into(syndrome, &mut correction);
        warm += correction.len();
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut measured = 0usize;
    for syndrome in &workload {
        decoder.decode_into(syndrome, &mut correction);
        measured += correction.len();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "warmed union-find decode window allocated on the heap"
    );
    // Keep the corrections observable so the loops cannot be optimized
    // away wholesale, and check the workload was not vacuous.
    assert_eq!(warm, measured);
    assert!(warm > 0, "workload decoded no corrections at all");
}

//! Differential oracle: the union-find decoder vs the exact matching
//! decoder (DESIGN.md §13).
//!
//! Union-find is *not* minimum-weight, so corrections are not compared
//! qubit-for-qubit — the decoders may legitimately pick different chains
//! of different weights. What must agree is the *decoded coset*, and the
//! observable consequence of the coset is the logical failure rate. The
//! oracle therefore drives ≥ 10k seeded error patterns per (d, kind)
//! point through both decoders at d = 3, 5 (where `MatchingDecoder` is
//! exact for every syndrome that occurs) and requires:
//!
//! 1. every union-find correction annihilates its syndrome, and
//! 2. the union-find logical-failure rate is within a few binomial
//!    standard deviations of the exact decoder's.

use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_surface::{CheckKind, MatchingDecoder, RotatedSurfaceCode, UnionFindDecoder};

const TRIALS: usize = 10_000;

/// Bernoulli(p) error pattern over the data qubits — no duplicates, so
/// GF(2) bookkeeping is by plain set parity.
fn sample_errors(code: &RotatedSurfaceCode, p: f64, rng: &mut StdRng) -> Vec<usize> {
    (0..code.num_data_qubits())
        .filter(|_| rng.gen_bool(p))
        .collect()
}

/// Whether error ⊕ correction implements the crossing logical operator.
fn logical_fault(logical: &[usize], errors: &[usize], correction: &[usize]) -> bool {
    let overlap = |qs: &[usize]| qs.iter().filter(|q| logical.contains(q)).count();
    (overlap(errors) + overlap(correction)) % 2 == 1
}

fn run_oracle(d: usize, kind: CheckKind, p: f64, seed: u64) {
    let code = RotatedSurfaceCode::new(d);
    let uf = UnionFindDecoder::new(&code, kind);
    let matching = MatchingDecoder::new(&code, kind);
    let logical = match kind {
        CheckKind::X => code.logical_z_support(),
        CheckKind::Z => code.logical_x_support(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut uf_failures = 0usize;
    let mut matching_failures = 0usize;
    for trial in 0..TRIALS {
        let errors = sample_errors(&code, p, &mut rng);
        let syndrome = code.syndrome_of(&errors, kind);

        let uf_corr = uf.decode(&syndrome);
        assert_eq!(
            code.syndrome_of(&uf_corr, kind),
            syndrome,
            "d={d} {kind:?} trial {trial}: union-find left a residual syndrome for {errors:?}"
        );
        let matching_corr = matching.decode(&syndrome);
        assert_eq!(
            code.syndrome_of(&matching_corr, kind),
            syndrome,
            "d={d} {kind:?} trial {trial}: matching left a residual syndrome"
        );

        uf_failures += usize::from(logical_fault(&logical, &errors, &uf_corr));
        matching_failures += usize::from(logical_fault(&logical, &errors, &matching_corr));
    }

    let f_uf = uf_failures as f64 / TRIALS as f64;
    let f_m = matching_failures as f64 / TRIALS as f64;
    // Binomial standard deviation of the rate difference, upper-bounded
    // by treating the samples as independent (they share error patterns,
    // which only shrinks the true variance).
    let sigma = (f_uf * (1.0 - f_uf) / TRIALS as f64 + f_m * (1.0 - f_m) / TRIALS as f64).sqrt();
    let tolerance = 5.0 * sigma + 0.01;
    assert!(
        (f_uf - f_m).abs() <= tolerance,
        "d={d} {kind:?} p={p}: union-find failure rate {f_uf} vs matching {f_m} \
         (tolerance {tolerance:.4})"
    );
    // Both decoders must actually be exercised: a p with no failures at
    // all would make the comparison vacuous.
    assert!(
        matching_failures > 0,
        "d={d} {kind:?} p={p}: oracle saw no failures — raise p"
    );
}

#[test]
fn uf_matches_matching_failure_rate_d3_x() {
    run_oracle(3, CheckKind::X, 0.08, 0xA11CE);
}

#[test]
fn uf_matches_matching_failure_rate_d3_z() {
    run_oracle(3, CheckKind::Z, 0.08, 0xB0B);
}

#[test]
fn uf_matches_matching_failure_rate_d5_x() {
    run_oracle(5, CheckKind::X, 0.08, 0xC14E5);
}

#[test]
fn uf_matches_matching_failure_rate_d5_z() {
    run_oracle(5, CheckKind::Z, 0.08, 0xD0E);
}

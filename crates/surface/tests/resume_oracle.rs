//! Resume-vs-scratch identity oracle for the checkpointed surface sweep.
//!
//! The serving layer's crash-resume story (DESIGN.md §14) rests on one
//! property: resuming `run_ler_surface_resumable` from *any* recorded
//! [`SurfaceProgress`] checkpoint and running the remaining batches must
//! reproduce the uninterrupted outcome bit for bit. Per-batch RNG
//! substreams make that true by construction; this oracle pins it by
//! replaying a sweep from every checkpoint offset, for both error kinds
//! and a ragged tail batch, and asserting byte-identical wire records.

use qpdo_surface::experiment::{
    run_ler_surface, run_ler_surface_resumable, SurfaceLerConfig, SurfaceProgress,
};
use qpdo_surface::CheckKind;

fn sweep(kind: CheckKind, shots: u64, seed: u64) -> SurfaceLerConfig {
    SurfaceLerConfig {
        distance: 5,
        physical_error_rate: 0.08,
        error: kind,
        shots,
        seed,
    }
}

/// The wire record the daemon publishes for a surface sweep; byte
/// identity of resumed results is asserted on this exact encoding.
fn record(outcome: &qpdo_surface::experiment::SurfaceLerOutcome) -> String {
    format!("{} {} {}", outcome.shots, outcome.failures, outcome.defects)
}

#[test]
fn resume_from_every_checkpoint_matches_scratch() {
    // 330 shots → 6 batches with a 10-lane ragged tail.
    for kind in [CheckKind::X, CheckKind::Z] {
        let config = sweep(kind, 330, 0xC0FFEE);
        let scratch = run_ler_surface(&config).unwrap();
        assert!(scratch.defects > 0, "workload too thin to be a real oracle");

        let mut checkpoints = Vec::new();
        let (full, stopped) =
            run_ler_surface_resumable(&config, None, &|| false, &mut |p| checkpoints.push(*p))
                .unwrap();
        assert!(!stopped);
        assert_eq!(full, scratch);
        assert_eq!(checkpoints.len(), 6);

        for (i, checkpoint) in checkpoints.iter().enumerate() {
            let mut replayed = 0u64;
            let (resumed, stopped) =
                run_ler_surface_resumable(&config, Some(checkpoint), &|| false, &mut |_| {
                    replayed += 1;
                })
                .unwrap();
            assert!(!stopped);
            assert_eq!(
                record(&resumed),
                record(&scratch),
                "{kind:?}: resume from checkpoint {i} diverged from scratch"
            );
            assert_eq!(
                replayed,
                5 - i as u64,
                "{kind:?}: resume from checkpoint {i} re-executed completed batches"
            );
        }
    }
}

#[test]
fn checkpoints_are_monotonic_and_consistent() {
    let config = sweep(CheckKind::X, 640, 7);
    let mut checkpoints: Vec<SurfaceProgress> = Vec::new();
    run_ler_surface_resumable(&config, None, &|| false, &mut |p| checkpoints.push(*p)).unwrap();
    assert_eq!(checkpoints.len(), 10);
    for (i, p) in checkpoints.iter().enumerate() {
        assert_eq!(p.batches, i as u64 + 1);
        assert_eq!(p.shots, p.batches * 64, "whole batches count 64 shots each");
        assert!(p.failures <= p.shots);
    }
    for pair in checkpoints.windows(2) {
        assert!(pair[1].shots > pair[0].shots);
        assert!(pair[1].failures >= pair[0].failures);
        assert!(pair[1].defects >= pair[0].defects);
    }
}

#[test]
fn cancellation_mid_sweep_leaves_a_resumable_checkpoint() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let config = sweep(CheckKind::X, 640, 21);
    let scratch = run_ler_surface(&config).unwrap();

    // Cancel after three completed batches, as a deadline or SIGKILL
    // window would; the last on_batch checkpoint must resume cleanly.
    let polls = AtomicU64::new(0);
    let mut last = SurfaceProgress::default();
    let (partial, stopped) = run_ler_surface_resumable(
        &config,
        None,
        &|| polls.fetch_add(1, Ordering::Relaxed) >= 3,
        &mut |p| last = *p,
    )
    .unwrap();
    assert!(stopped);
    assert_eq!(last.batches, 3);
    assert_eq!(partial.shots, last.shots);

    let (resumed, stopped) =
        run_ler_surface_resumable(&config, Some(&last), &|| false, &mut |_| {}).unwrap();
    assert!(!stopped);
    assert_eq!(record(&resumed), record(&scratch));
}

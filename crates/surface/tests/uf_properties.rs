//! Property tests for the union-find decoder's invariants at every
//! distance the scaling workload sweeps (d = 3…13).
//!
//! The invariants (DESIGN.md §13):
//!
//! - `decode(syndrome_of(E))` returns a correction with *exactly* the
//!   input syndrome, for every error pattern — including dense ones
//!   whose defect count is far past the matcher's `EXACT_LIMIT`.
//! - the empty syndrome decodes to the empty correction,
//! - a single-defect syndrome pairs to the *correct* boundary: the
//!   correction's logical-overlap parity equals the exact matcher's
//!   (which provably takes the nearest boundary).

use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_surface::{CheckKind, MatchingDecoder, RotatedSurfaceCode, UnionFindDecoder};

const DISTANCES: [usize; 6] = [3, 5, 7, 9, 11, 13];

#[test]
fn empty_syndrome_decodes_to_empty_correction() {
    for d in DISTANCES {
        let code = RotatedSurfaceCode::new(d);
        for kind in [CheckKind::X, CheckKind::Z] {
            let dec = UnionFindDecoder::new(&code, kind);
            assert_eq!(dec.syndrome_len(), (d * d - 1) / 2, "d={d} {kind:?}");
            assert!(
                dec.decode(&vec![false; dec.syndrome_len()]).is_empty(),
                "d={d} {kind:?}"
            );
        }
    }
}

#[test]
fn random_error_syndromes_are_annihilated_at_every_distance() {
    let mut rng = StdRng::seed_from_u64(2024);
    for d in DISTANCES {
        let code = RotatedSurfaceCode::new(d);
        for kind in [CheckKind::X, CheckKind::Z] {
            let dec = UnionFindDecoder::new(&code, kind);
            for trial in 0..200 {
                // Sweep the density from sparse to heavily saturated.
                let p = f64::from(trial % 10).mul_add(0.05, 0.02);
                let errors: Vec<usize> = (0..code.num_data_qubits())
                    .filter(|_| rng.gen_bool(p))
                    .collect();
                let syndrome = code.syndrome_of(&errors, kind);
                let correction = dec.decode(&syndrome);
                assert_eq!(
                    code.syndrome_of(&correction, kind),
                    syndrome,
                    "d={d} {kind:?} trial {trial} p={p}"
                );
            }
        }
    }
}

#[test]
fn dense_syndromes_past_exact_limit_are_annihilated() {
    // Force defect counts that the exact matcher could never take
    // (> 12), all the way up to every check fired at d = 13.
    let mut rng = StdRng::seed_from_u64(31337);
    for d in [7, 9, 11, 13] {
        let code = RotatedSurfaceCode::new(d);
        for kind in [CheckKind::X, CheckKind::Z] {
            let dec = UnionFindDecoder::new(&code, kind);
            for _ in 0..50 {
                let mut syndrome = vec![false; dec.syndrome_len()];
                // At least 13 fired checks, arbitrary subsets beyond.
                let defects = rng.gen_range(13..=dec.syndrome_len());
                while syndrome.iter().filter(|s| **s).count() < defects {
                    let i = rng.gen_range(0..syndrome.len());
                    syndrome[i] = true;
                }
                let correction = dec.decode(&syndrome);
                assert_eq!(
                    code.syndrome_of(&correction, kind),
                    syndrome,
                    "d={d} {kind:?}"
                );
            }
            // The fully saturated syndrome.
            let syndrome = vec![true; dec.syndrome_len()];
            let correction = dec.decode(&syndrome);
            assert_eq!(
                code.syndrome_of(&correction, kind),
                syndrome,
                "d={d} {kind:?}"
            );
        }
    }
}

#[test]
fn single_defect_syndromes_pair_to_the_correct_boundary() {
    // One fired check must be matched to the *nearest* terminating
    // boundary. The witness is homological: the union-find chain and the
    // exact matcher's minimum-weight chain must have equal overlap
    // parity with the crossing logical operator (chains to opposite
    // boundaries differ by a logical and would disagree).
    for d in DISTANCES {
        let code = RotatedSurfaceCode::new(d);
        for kind in [CheckKind::X, CheckKind::Z] {
            let uf = UnionFindDecoder::new(&code, kind);
            let matching = MatchingDecoder::new(&code, kind);
            let logical = match kind {
                CheckKind::X => code.logical_z_support(),
                CheckKind::Z => code.logical_x_support(),
            };
            let parity = |qs: &[usize]| qs.iter().filter(|q| logical.contains(q)).count() % 2;
            for i in 0..uf.syndrome_len() {
                let mut syndrome = vec![false; uf.syndrome_len()];
                syndrome[i] = true;
                let uf_corr = uf.decode(&syndrome);
                assert_eq!(
                    code.syndrome_of(&uf_corr, kind),
                    syndrome,
                    "d={d} {kind:?} defect {i}"
                );
                let matching_corr = matching.decode(&syndrome);
                assert_eq!(
                    parity(&uf_corr),
                    parity(&matching_corr),
                    "d={d} {kind:?} defect {i}: union-find went to the wrong boundary"
                );
            }
        }
    }
}

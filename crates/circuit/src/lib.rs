//! Circuit intermediate representation for the QPDO platform.
//!
//! Implements the shared data structures of Section 4.2.2 of *Pauli Frames
//! for Quantum Computer Architectures*: a [`Circuit`] is a sequence of
//! [`TimeSlot`]s, each holding [`Operation`]s that execute in parallel
//! (every qubit participates in at most one operation per slot — Fig 4.4).
//!
//! Operations are qubit initialization ([`Operation::prep`]), measurement
//! ([`Operation::measure`]) and [`Gate`]s. Gates are classified into the
//! groups of Section 2.3.3 — Pauli, (other) Clifford, and non-Clifford —
//! which is exactly the classification the Pauli arbiter dispatches on
//! (Table 3.1).
//!
//! # Example
//!
//! ```
//! use qpdo_circuit::{Circuit, Gate, GateKind};
//!
//! let mut bell = Circuit::new();
//! bell.prep(0).prep(1).h(0).cnot(0, 1).measure_all(2);
//! assert_eq!(bell.slot_count(), 4); // [prep,prep] [h] [cnot] [m,m]
//! assert_eq!(Gate::T.kind(), GateKind::NonClifford);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod gate;
mod operation;
mod slot;
mod text;

pub use builder::{Circuit, CircuitCensus};
pub use gate::{Gate, GateKind};
pub use operation::{Operation, OperationKind};
pub use slot::TimeSlot;
pub use text::ParseCircuitError;

use std::fmt;

use crate::Operation;

/// One time slot of a circuit: operations that execute in parallel.
///
/// The invariant of Fig 4.4 holds at all times: every qubit participates in
/// at most one operation per slot. All operations in a slot are assumed to
/// take the same amount of time, so a slot is the time unit of the
/// schedule analysis (Figs 3.3, 5.25–5.26).
///
/// # Example
///
/// ```
/// use qpdo_circuit::{Gate, Operation, TimeSlot};
///
/// let mut slot = TimeSlot::new();
/// assert!(slot.try_push(Operation::gate(Gate::H, &[0])));
/// assert!(slot.try_push(Operation::gate(Gate::Cnot, &[1, 2])));
/// assert!(!slot.try_push(Operation::measure(2))); // q2 already busy
/// assert_eq!(slot.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TimeSlot {
    operations: Vec<Operation>,
}

impl TimeSlot {
    /// An empty time slot.
    #[must_use]
    pub fn new() -> Self {
        TimeSlot::default()
    }

    /// The number of operations in the slot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// `true` if the slot holds no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// The operations in insertion order.
    #[must_use]
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Whether any operation in the slot touches qubit `q`.
    #[must_use]
    pub fn uses_qubit(&self, q: usize) -> bool {
        self.operations.iter().any(|op| op.qubits().contains(&q))
    }

    /// Whether `op` can be added without violating the one-op-per-qubit
    /// invariant.
    #[must_use]
    pub fn accepts(&self, op: &Operation) -> bool {
        op.qubits().iter().all(|&q| !self.uses_qubit(q))
    }

    /// Adds `op` if it fits; returns whether it was added.
    pub fn try_push(&mut self, op: Operation) -> bool {
        if self.accepts(&op) {
            self.operations.push(op);
            true
        } else {
            false
        }
    }

    /// Adds `op`, panicking if it conflicts.
    ///
    /// # Panics
    ///
    /// Panics if another operation in the slot already uses one of `op`'s
    /// qubits.
    pub fn push(&mut self, op: Operation) {
        assert!(
            self.accepts(&op),
            "operation {op} conflicts with slot {self}"
        );
        self.operations.push(op);
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.operations.iter()
    }

    /// Removes all operations matching the predicate, returning them.
    pub fn drain_where<F>(&mut self, mut predicate: F) -> Vec<Operation>
    where
        F: FnMut(&Operation) -> bool,
    {
        let mut removed = Vec::new();
        self.operations.retain(|op| {
            if predicate(op) {
                removed.push(op.clone());
                false
            } else {
                true
            }
        });
        removed
    }
}

impl fmt::Display for TimeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.operations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TimeSlot {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.operations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn conflict_detection() {
        let mut slot = TimeSlot::new();
        slot.push(Operation::gate(Gate::Cnot, &[0, 1]));
        assert!(slot.uses_qubit(0));
        assert!(slot.uses_qubit(1));
        assert!(!slot.uses_qubit(2));
        assert!(!slot.accepts(&Operation::gate(Gate::H, &[1])));
        assert!(slot.accepts(&Operation::gate(Gate::H, &[2])));
    }

    #[test]
    fn try_push_rejects_conflicts() {
        let mut slot = TimeSlot::new();
        assert!(slot.try_push(Operation::measure(0)));
        assert!(!slot.try_push(Operation::prep(0)));
        assert_eq!(slot.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicts with slot")]
    fn push_panics_on_conflict() {
        let mut slot = TimeSlot::new();
        slot.push(Operation::gate(Gate::H, &[0]));
        slot.push(Operation::gate(Gate::X, &[0]));
    }

    #[test]
    fn drain_where_removes_matching() {
        let mut slot = TimeSlot::new();
        slot.push(Operation::gate(Gate::X, &[0]));
        slot.push(Operation::gate(Gate::H, &[1]));
        slot.push(Operation::gate(Gate::Z, &[2]));
        let paulis = slot.drain_where(Operation::is_pauli_gate);
        assert_eq!(paulis.len(), 2);
        assert_eq!(slot.len(), 1);
        assert_eq!(slot.operations()[0].as_gate(), Some(Gate::H));
    }

    #[test]
    fn display_joins_with_semicolons() {
        let mut slot = TimeSlot::new();
        slot.push(Operation::gate(Gate::H, &[0]));
        slot.push(Operation::measure(1));
        assert_eq!(slot.to_string(), "h q0; measure q1");
    }
}

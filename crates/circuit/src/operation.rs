use std::fmt;

use crate::{Gate, GateKind};

/// What an [`Operation`] does: initialization, measurement or a gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperationKind {
    /// Reset the qubit to `|0⟩` in the computational basis.
    Prep,
    /// Measure the qubit in the computational basis.
    Measure,
    /// Apply a quantum gate.
    Gate(Gate),
}

/// A single scheduled operation: a kind plus the qubits it acts on.
///
/// # Example
///
/// ```
/// use qpdo_circuit::{Gate, Operation};
///
/// let op = Operation::gate(Gate::Cnot, &[0, 1]);
/// assert_eq!(op.qubits(), &[0, 1]);
/// assert!(!op.is_pauli_gate());
/// assert_eq!(op.to_string(), "cnot q0,q1");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Operation {
    kind: OperationKind,
    qubits: Vec<usize>,
}

impl Operation {
    /// A qubit initialization to `|0⟩`.
    #[must_use]
    pub fn prep(q: usize) -> Self {
        Operation {
            kind: OperationKind::Prep,
            qubits: vec![q],
        }
    }

    /// A computational-basis measurement.
    #[must_use]
    pub fn measure(q: usize) -> Self {
        Operation {
            kind: OperationKind::Measure,
            qubits: vec![q],
        }
    }

    /// A gate on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate arity or if
    /// the same qubit appears twice.
    #[must_use]
    pub fn gate(gate: Gate, qubits: &[usize]) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {gate} takes {} qubit(s), got {:?}",
            gate.arity(),
            qubits
        );
        for (i, a) in qubits.iter().enumerate() {
            for b in &qubits[i + 1..] {
                assert_ne!(a, b, "gate {gate} repeats qubit {a}");
            }
        }
        Operation {
            kind: OperationKind::Gate(gate),
            qubits: qubits.to_vec(),
        }
    }

    /// The operation kind.
    #[must_use]
    pub fn kind(&self) -> OperationKind {
        self.kind
    }

    /// The qubits the operation acts on, in gate-operand order (e.g.
    /// control before target for `CNOT`).
    #[must_use]
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The gate, if this operation is a gate.
    #[must_use]
    pub fn as_gate(&self) -> Option<Gate> {
        match self.kind {
            OperationKind::Gate(g) => Some(g),
            _ => None,
        }
    }

    /// `true` if the operation is a qubit initialization.
    #[must_use]
    pub fn is_prep(&self) -> bool {
        self.kind == OperationKind::Prep
    }

    /// `true` if the operation is a measurement.
    #[must_use]
    pub fn is_measure(&self) -> bool {
        self.kind == OperationKind::Measure
    }

    /// `true` if the operation is a Pauli-group gate (trackable by a Pauli
    /// frame without touching the qubit).
    #[must_use]
    pub fn is_pauli_gate(&self) -> bool {
        matches!(self.kind, OperationKind::Gate(g) if g.kind() == GateKind::Pauli)
    }

    /// `true` if the operation is a non-Clifford gate (forces a frame
    /// flush).
    #[must_use]
    pub fn is_non_clifford_gate(&self) -> bool {
        matches!(self.kind, OperationKind::Gate(g) if g.kind() == GateKind::NonClifford)
    }

    /// The largest qubit index the operation touches.
    #[must_use]
    pub fn max_qubit(&self) -> usize {
        *self
            .qubits
            .iter()
            .max()
            .expect("operations touch >=1 qubit")
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mnemonic = match self.kind {
            OperationKind::Prep => "prep_z",
            OperationKind::Measure => "measure",
            OperationKind::Gate(g) => g.name(),
        };
        write!(f, "{mnemonic} ")?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "q{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = Operation::prep(3);
        assert!(p.is_prep());
        assert_eq!(p.qubits(), &[3]);
        assert_eq!(p.as_gate(), None);

        let m = Operation::measure(0);
        assert!(m.is_measure());

        let g = Operation::gate(Gate::Toffoli, &[0, 2, 4]);
        assert_eq!(g.as_gate(), Some(Gate::Toffoli));
        assert_eq!(g.max_qubit(), 4);
    }

    #[test]
    fn classification() {
        assert!(Operation::gate(Gate::X, &[0]).is_pauli_gate());
        assert!(!Operation::gate(Gate::H, &[0]).is_pauli_gate());
        assert!(Operation::gate(Gate::T, &[0]).is_non_clifford_gate());
        assert!(!Operation::measure(0).is_pauli_gate());
        assert!(!Operation::prep(0).is_non_clifford_gate());
    }

    #[test]
    fn display_format() {
        assert_eq!(Operation::prep(1).to_string(), "prep_z q1");
        assert_eq!(Operation::measure(2).to_string(), "measure q2");
        assert_eq!(
            Operation::gate(Gate::Cnot, &[0, 7]).to_string(),
            "cnot q0,q7"
        );
    }

    #[test]
    #[should_panic(expected = "takes 2 qubit(s)")]
    fn wrong_arity_panics() {
        let _ = Operation::gate(Gate::Cnot, &[0]);
    }

    #[test]
    #[should_panic(expected = "repeats qubit")]
    fn repeated_qubit_panics() {
        let _ = Operation::gate(Gate::Cz, &[1, 1]);
    }
}

//! A QASM-like plain-text format for circuits.
//!
//! One line per time slot; operations separated by `;`; qubit operands
//! written `q<N>` and separated by `,`. Blank lines and `#` comments are
//! ignored. This mirrors the textual interface the paper used to drive the
//! QX Simulator over QASM.
//!
//! ```text
//! # odd Bell state
//! prep_z q0; prep_z q1
//! h q0
//! cnot q0,q1
//! x q0
//! measure q0; measure q1
//! ```

use std::fmt;
use std::str::FromStr;

use crate::{Circuit, Gate, Operation, TimeSlot};

/// Error returned when parsing circuit text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCircuitError {
    line: usize,
    message: String,
}

impl ParseCircuitError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseCircuitError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line of the failure.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCircuitError {}

fn parse_qubit(token: &str, line: usize) -> Result<usize, ParseCircuitError> {
    let digits = token.strip_prefix('q').ok_or_else(|| {
        ParseCircuitError::new(line, format!("expected qubit operand, got {token:?}"))
    })?;
    digits
        .parse()
        .map_err(|_| ParseCircuitError::new(line, format!("invalid qubit index {digits:?}")))
}

fn parse_operation(text: &str, line: usize) -> Result<Operation, ParseCircuitError> {
    let text = text.trim();
    let (mnemonic, operands) = text
        .split_once(char::is_whitespace)
        .ok_or_else(|| ParseCircuitError::new(line, format!("missing operands in {text:?}")))?;
    let qubits = operands
        .split(',')
        .map(|tok| parse_qubit(tok.trim(), line))
        .collect::<Result<Vec<_>, _>>()?;
    let single = |qubits: &[usize]| -> Result<usize, ParseCircuitError> {
        if qubits.len() == 1 {
            Ok(qubits[0])
        } else {
            Err(ParseCircuitError::new(
                line,
                format!("{mnemonic} takes exactly one qubit"),
            ))
        }
    };
    match mnemonic {
        "prep_z" => Ok(Operation::prep(single(&qubits)?)),
        "measure" => Ok(Operation::measure(single(&qubits)?)),
        name => {
            let gate = Gate::from_name(name).ok_or_else(|| {
                ParseCircuitError::new(line, format!("unknown mnemonic {name:?}"))
            })?;
            if qubits.len() != gate.arity() {
                return Err(ParseCircuitError::new(
                    line,
                    format!(
                        "{name} takes {} qubit(s), got {}",
                        gate.arity(),
                        qubits.len()
                    ),
                ));
            }
            Ok(Operation::gate(gate, &qubits))
        }
    }
}

impl FromStr for Circuit {
    type Err = ParseCircuitError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut circuit = Circuit::new();
        for (idx, raw_line) in s.lines().enumerate() {
            let line_no = idx + 1;
            let content = raw_line.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut slot = TimeSlot::new();
            for op_text in content.split(';') {
                let op = parse_operation(op_text, line_no)?;
                if !slot.try_push(op) {
                    return Err(ParseCircuitError::new(
                        line_no,
                        "qubit used twice in one time slot",
                    ));
                }
            }
            circuit.push_slot(slot);
        }
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let text = "\
prep_z q0; prep_z q1
h q0
cnot q0,q1
measure q0; measure q1
";
        let circuit: Circuit = text.parse().unwrap();
        assert_eq!(circuit.slot_count(), 4);
        assert_eq!(circuit.operation_count(), 6);
        let reparsed: Circuit = circuit.to_string().parse().unwrap();
        assert_eq!(reparsed, circuit);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nh q0  # trailing comment\n";
        let circuit: Circuit = text.parse().unwrap();
        assert_eq!(circuit.operation_count(), 1);
    }

    #[test]
    fn all_gates_parse() {
        let text = "\
i q0
x q0
y q0
z q0
h q0
s q0
sdg q0
t q0
tdg q0
cnot q0,q1
cz q0,q1
swap q0,q1
toffoli q0,q1,q2
";
        let circuit: Circuit = text.parse().unwrap();
        assert_eq!(circuit.operation_count(), 13);
    }

    #[test]
    fn error_reports_line() {
        let err = "h q0\nbogus q1\n".parse::<Circuit>().unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn error_on_missing_operand() {
        assert!("h".parse::<Circuit>().is_err());
        assert!("h 0".parse::<Circuit>().is_err());
        assert!("cnot q0".parse::<Circuit>().is_err());
        assert!("measure q0,q1".parse::<Circuit>().is_err());
    }

    #[test]
    fn error_on_slot_conflict() {
        let err = "h q0; x q0".parse::<Circuit>().unwrap_err();
        assert!(err.to_string().contains("twice"));
    }
}

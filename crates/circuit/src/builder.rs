use std::fmt;

use crate::{Gate, GateKind, Operation, OperationKind, TimeSlot};

/// A quantum circuit: an ordered sequence of [`TimeSlot`]s.
///
/// Operations added through the builder methods are scheduled ASAP: each
/// operation lands in the earliest slot after the last slot that uses any
/// of its qubits (per-qubit program order is the only ordering constraint,
/// matching the paper's time-slot semantics).
///
/// # Example
///
/// ```
/// use qpdo_circuit::Circuit;
///
/// let mut c = Circuit::new();
/// c.h(0).h(1);        // same slot: disjoint qubits
/// c.cnot(0, 1);       // next slot: depends on both
/// assert_eq!(c.slot_count(), 2);
/// assert_eq!(c.operation_count(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Circuit {
    slots: Vec<TimeSlot>,
}

impl Circuit {
    /// An empty circuit.
    #[must_use]
    pub fn new() -> Self {
        Circuit::default()
    }

    /// The slots in execution order.
    #[must_use]
    pub fn slots(&self) -> &[TimeSlot] {
        &self.slots
    }

    /// The number of time slots.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The total number of operations across all slots.
    #[must_use]
    pub fn operation_count(&self) -> usize {
        self.slots.iter().map(TimeSlot::len).sum()
    }

    /// `true` if the circuit holds no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The number of qubits the circuit touches (1 + highest index), or 0
    /// for an empty circuit.
    #[must_use]
    pub fn qubit_count(&self) -> usize {
        self.operations()
            .map(|op| op.max_qubit() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over every operation in slot order.
    pub fn operations(&self) -> impl Iterator<Item = &Operation> {
        self.slots.iter().flat_map(TimeSlot::iter)
    }

    /// Schedules an operation ASAP (see type-level docs).
    pub fn push(&mut self, op: Operation) -> &mut Self {
        let earliest = self
            .slots
            .iter()
            .rposition(|slot| op.qubits().iter().any(|&q| slot.uses_qubit(q)))
            .map_or(0, |last_conflict| last_conflict + 1);
        if earliest == self.slots.len() {
            self.slots.push(TimeSlot::new());
        }
        self.slots[earliest].push(op);
        self
    }

    /// Appends an operation in a brand-new slot at the end.
    pub fn push_into_new_slot(&mut self, op: Operation) -> &mut Self {
        let mut slot = TimeSlot::new();
        slot.push(op);
        self.slots.push(slot);
        self
    }

    /// Appends a pre-built slot at the end.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty (empty slots would distort schedule
    /// statistics).
    pub fn push_slot(&mut self, slot: TimeSlot) -> &mut Self {
        assert!(!slot.is_empty(), "refusing to append an empty time slot");
        self.slots.push(slot);
        self
    }

    /// Appends all slots of `other` after the slots of `self` (a hard
    /// barrier between the two circuits).
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        self.slots.extend(other.slots.iter().cloned());
        self
    }

    /// Drops any slots that became empty (e.g. after filtering).
    pub fn prune_empty_slots(&mut self) -> &mut Self {
        self.slots.retain(|s| !s.is_empty());
        self
    }

    /// Counts operations of each category:
    /// `(preps, measures, pauli gates, other clifford gates, non-clifford
    /// gates)`.
    #[must_use]
    pub fn census(&self) -> CircuitCensus {
        let mut census = CircuitCensus::default();
        for op in self.operations() {
            match op.kind() {
                OperationKind::Prep => census.preps += 1,
                OperationKind::Measure => census.measures += 1,
                OperationKind::Gate(g) => match g.kind() {
                    GateKind::Pauli => census.pauli_gates += 1,
                    GateKind::Clifford => census.clifford_gates += 1,
                    GateKind::NonClifford => census.non_clifford_gates += 1,
                },
            }
        }
        census
    }

    /// The fraction of gates (not preps/measures) that are Pauli gates.
    ///
    /// This is the "up to 7 % Pauli gates" statistic of Section 3.3.
    /// Returns 0 for circuits without gates.
    #[must_use]
    pub fn pauli_gate_fraction(&self) -> f64 {
        let census = self.census();
        let gates = census.pauli_gates + census.clifford_gates + census.non_clifford_gates;
        if gates == 0 {
            0.0
        } else {
            census.pauli_gates as f64 / gates as f64
        }
    }

    // ---- builder conveniences -------------------------------------------

    /// Resets qubit `q` to `|0⟩`.
    pub fn prep(&mut self, q: usize) -> &mut Self {
        self.push(Operation::prep(q))
    }

    /// Measures qubit `q` in the computational basis.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.push(Operation::measure(q))
    }

    /// Measures qubits `0..n` in the computational basis.
    pub fn measure_all(&mut self, n: usize) -> &mut Self {
        for q in 0..n {
            self.measure(q);
        }
        self
    }

    /// Resets qubits `0..n` to `|0⟩`.
    pub fn prep_all(&mut self, n: usize) -> &mut Self {
        for q in 0..n {
            self.prep(q);
        }
        self
    }

    /// Applies a single-qubit gate.
    pub fn apply(&mut self, gate: Gate, q: usize) -> &mut Self {
        self.push(Operation::gate(gate, &[q]))
    }

    /// Identity (explicit idle).
    pub fn i(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::I, q)
    }

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::X, q)
    }

    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Y, q)
    }

    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Z, q)
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::H, q)
    }

    /// Phase gate `S`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::S, q)
    }

    /// Inverse phase gate `S†`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Sdg, q)
    }

    /// `T` gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::T, q)
    }

    /// `T†` gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Tdg, q)
    }

    /// Controlled-NOT.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Operation::gate(Gate::Cnot, &[control, target]))
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Operation::gate(Gate::Cz, &[a, b]))
    }

    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Operation::gate(Gate::Swap, &[a, b]))
    }

    /// Toffoli (controls first, target last).
    pub fn toffoli(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.push(Operation::gate(Gate::Toffoli, &[c1, c2, target]))
    }
}

/// Operation counts by category, produced by [`Circuit::census`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitCensus {
    /// Qubit initializations.
    pub preps: usize,
    /// Computational-basis measurements.
    pub measures: usize,
    /// Pauli-group gates.
    pub pauli_gates: usize,
    /// Clifford (non-Pauli) gates.
    pub clifford_gates: usize,
    /// Non-Clifford gates.
    pub non_clifford_gates: usize,
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for slot in &self.slots {
            writeln!(f, "{slot}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asap_scheduling() {
        let mut c = Circuit::new();
        c.h(0).h(1).cnot(0, 1).x(2);
        // h q0 and h q1 share slot 0; cnot needs slot 1; x q2 backfills
        // into slot 0 (no dependency).
        assert_eq!(c.slot_count(), 2);
        assert_eq!(c.slots()[0].len(), 3);
        assert_eq!(c.slots()[1].len(), 1);
    }

    #[test]
    fn per_qubit_order_is_preserved() {
        let mut c = Circuit::new();
        c.x(0).z(0).h(0);
        assert_eq!(c.slot_count(), 3);
        let gates: Vec<_> = c.operations().map(|op| op.as_gate().unwrap()).collect();
        assert_eq!(gates, [Gate::X, Gate::Z, Gate::H]);
    }

    #[test]
    fn push_into_new_slot_forces_barrier() {
        let mut c = Circuit::new();
        c.h(0);
        c.push_into_new_slot(Operation::gate(Gate::H, &[1]));
        assert_eq!(c.slot_count(), 2);
    }

    #[test]
    fn append_acts_as_barrier() {
        let mut a = Circuit::new();
        a.h(0);
        let mut b = Circuit::new();
        b.x(1);
        a.append(&b);
        assert_eq!(a.slot_count(), 2);
        assert_eq!(a.operation_count(), 2);
    }

    #[test]
    fn census_and_pauli_fraction() {
        let mut c = Circuit::new();
        c.prep(0).x(0).h(0).t(0).measure(0);
        let census = c.census();
        assert_eq!(census.preps, 1);
        assert_eq!(census.measures, 1);
        assert_eq!(census.pauli_gates, 1);
        assert_eq!(census.clifford_gates, 1);
        assert_eq!(census.non_clifford_gates, 1);
        assert!((c.pauli_gate_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn qubit_count() {
        let mut c = Circuit::new();
        assert_eq!(c.qubit_count(), 0);
        c.cnot(2, 7);
        assert_eq!(c.qubit_count(), 8);
    }

    #[test]
    fn empty_pauli_fraction_is_zero() {
        let mut c = Circuit::new();
        c.prep(0).measure(0);
        assert_eq!(c.pauli_gate_fraction(), 0.0);
    }

    #[test]
    fn prune_empty_slots() {
        let mut c = Circuit::new();
        c.x(0).h(1);
        for slot in &mut c.slots {
            slot.drain_where(Operation::is_pauli_gate);
        }
        c.prune_empty_slots();
        assert_eq!(c.operation_count(), 1);
        assert_eq!(c.slot_count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty time slot")]
    fn push_empty_slot_panics() {
        let mut c = Circuit::new();
        c.push_slot(TimeSlot::new());
    }
}

use std::fmt;

/// The quantum gates supported by the QPDO platform.
///
/// This is the union of the gate sets used throughout the paper: the Pauli
/// group generators, the Clifford generators and companions
/// (`H`, `S`, `S†`, `CNOT`, `CZ`, `SWAP`), and the non-Clifford gates used
/// by the random-circuit verification and universality discussions
/// (`T`, `T†`, Toffoli).
///
/// # Example
///
/// ```
/// use qpdo_circuit::{Gate, GateKind};
///
/// assert_eq!(Gate::X.kind(), GateKind::Pauli);
/// assert_eq!(Gate::Cnot.kind(), GateKind::Clifford);
/// assert_eq!(Gate::Toffoli.kind(), GateKind::NonClifford);
/// assert_eq!(Gate::Cnot.arity(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Gate {
    /// Identity (an explicit idle step; still counts as an operation for
    /// the error model, per Section 5.3.1).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate, `RZ(π/2)`.
    S,
    /// Inverse phase gate, `RZ(-π/2)`.
    Sdg,
    /// `RZ(π/4)` — non-Clifford.
    T,
    /// `RZ(-π/4)` — non-Clifford.
    Tdg,
    /// Controlled-NOT (control first).
    Cnot,
    /// Controlled-Z (symmetric).
    Cz,
    /// Qubit exchange.
    Swap,
    /// Controlled-controlled-NOT — non-Clifford.
    Toffoli,
}

/// The gate-group classification of Section 2.3.3, used by the Pauli
/// arbiter to dispatch operations (Table 3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Member of the Pauli group: tracked in the frame, never executed.
    Pauli,
    /// Clifford (but not Pauli): maps records, still executed.
    Clifford,
    /// Non-Clifford: forces a frame flush before execution.
    NonClifford,
}

impl Gate {
    /// Every supported gate.
    pub const ALL: [Gate; 13] = [
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Cnot,
        Gate::Cz,
        Gate::Swap,
        Gate::Toffoli,
    ];

    /// The number of qubits the gate acts on.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            Gate::Cnot | Gate::Cz | Gate::Swap => 2,
            Gate::Toffoli => 3,
            _ => 1,
        }
    }

    /// The gate-group classification (Section 2.3.3).
    #[must_use]
    pub fn kind(self) -> GateKind {
        match self {
            Gate::I | Gate::X | Gate::Y | Gate::Z => GateKind::Pauli,
            Gate::H | Gate::S | Gate::Sdg | Gate::Cnot | Gate::Cz | Gate::Swap => {
                GateKind::Clifford
            }
            Gate::T | Gate::Tdg | Gate::Toffoli => GateKind::NonClifford,
        }
    }

    /// `true` for members of the Pauli group.
    #[must_use]
    pub fn is_pauli(self) -> bool {
        self.kind() == GateKind::Pauli
    }

    /// `true` for members of the Clifford group (which contains the Pauli
    /// group).
    #[must_use]
    pub fn is_clifford(self) -> bool {
        self.kind() != GateKind::NonClifford
    }

    /// `true` for non-Clifford gates.
    #[must_use]
    pub fn is_non_clifford(self) -> bool {
        self.kind() == GateKind::NonClifford
    }

    /// The inverse gate (all supported gates have their inverse in the
    /// set).
    #[must_use]
    pub fn inverse(self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            other => other, // all remaining gates are self-inverse
        }
    }

    /// The lowercase mnemonic used by the text format (e.g. `"cnot"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gate::I => "i",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Cnot => "cnot",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Toffoli => "toffoli",
        }
    }

    /// Parses the mnemonic produced by [`name`](Gate::name)
    /// (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Gate> {
        let lower = name.to_ascii_lowercase();
        Gate::ALL.into_iter().find(|g| g.name() == lower)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_groups() {
        assert_eq!(Gate::I.kind(), GateKind::Pauli);
        assert_eq!(Gate::X.kind(), GateKind::Pauli);
        assert_eq!(Gate::Y.kind(), GateKind::Pauli);
        assert_eq!(Gate::Z.kind(), GateKind::Pauli);
        for g in [
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::Cnot,
            Gate::Cz,
            Gate::Swap,
        ] {
            assert_eq!(g.kind(), GateKind::Clifford, "{g}");
        }
        for g in [Gate::T, Gate::Tdg, Gate::Toffoli] {
            assert_eq!(g.kind(), GateKind::NonClifford, "{g}");
        }
    }

    #[test]
    fn pauli_gates_are_clifford_too() {
        // The Pauli group is a subgroup of the Clifford group.
        for g in Gate::ALL {
            if g.is_pauli() {
                assert!(g.is_clifford());
            }
        }
    }

    #[test]
    fn arity() {
        assert_eq!(Gate::H.arity(), 1);
        assert_eq!(Gate::Cnot.arity(), 2);
        assert_eq!(Gate::Cz.arity(), 2);
        assert_eq!(Gate::Swap.arity(), 2);
        assert_eq!(Gate::Toffoli.arity(), 3);
    }

    #[test]
    fn inverses() {
        for g in Gate::ALL {
            assert_eq!(g.inverse().inverse(), g);
        }
        assert_eq!(Gate::S.inverse(), Gate::Sdg);
        assert_eq!(Gate::T.inverse(), Gate::Tdg);
        assert_eq!(Gate::H.inverse(), Gate::H);
        assert_eq!(Gate::Cnot.inverse(), Gate::Cnot);
    }

    #[test]
    fn name_roundtrip() {
        for g in Gate::ALL {
            assert_eq!(Gate::from_name(g.name()), Some(g));
            assert_eq!(Gate::from_name(&g.name().to_ascii_uppercase()), Some(g));
        }
        assert_eq!(Gate::from_name("bogus"), None);
    }
}

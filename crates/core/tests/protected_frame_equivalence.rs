//! Robustness regression for the protected Pauli frame: under a
//! zero-fault plan the [`ProtectedPauliFrameLayer`] must be
//! bit-identical to the plain [`PauliFrameLayer`] — same measurement
//! outcomes, same histograms, same saved-gate counters — across seeded
//! random circuits. The parity/scrub/checkpoint machinery must be
//! invisible until a fault actually strikes.

use qpdo_core::fault::{FaultPlan, FaultRates};
use qpdo_core::testbench::{measure_all, random_circuit, BellStateHistoTb};
use qpdo_core::{
    ControlStack, FrameProtectionConfig, PauliFrameLayer, ProtectedPauliFrameLayer, SvCore,
};
use qpdo_rng::rngs::StdRng;
use qpdo_rng::SeedableRng;

/// Builds the protected layer under test: full protection, driven by an
/// explicit zero-rate fault plan (so the injection path runs but never
/// fires).
fn zero_fault_layer(seed: u64) -> ProtectedPauliFrameLayer {
    let mut layer = ProtectedPauliFrameLayer::with_config(FrameProtectionConfig::protected());
    layer.set_fault_plan(FaultPlan::new(FaultRates::zero(), seed).expect("zero rates are valid"));
    layer
}

#[test]
fn random_circuits_measure_identically_under_zero_faults() {
    const QUBITS: usize = 5;
    for trial in 0..25u64 {
        let mut workload_rng = StdRng::seed_from_u64(4000 + trial);
        let circuit = random_circuit(QUBITS, 80, &mut workload_rng);

        let mut plain = ControlStack::with_seed(SvCore::new(), 31 * trial);
        plain.push_layer(PauliFrameLayer::new());
        plain.create_qubits(QUBITS).unwrap();
        plain.execute_now(circuit.clone()).unwrap();
        let plain_bits = measure_all(&mut plain, QUBITS).unwrap();

        let mut protected = ControlStack::with_seed(SvCore::new(), 31 * trial);
        protected.push_layer(zero_fault_layer(trial));
        protected.create_qubits(QUBITS).unwrap();
        protected.execute_now(circuit).unwrap();
        let protected_bits = measure_all(&mut protected, QUBITS).unwrap();

        assert_eq!(
            plain_bits, protected_bits,
            "trial {trial}: measurement outcomes diverged"
        );

        // The frames themselves agree record for record.
        let pf: &PauliFrameLayer = plain.find_layer().unwrap();
        let ppf: &ProtectedPauliFrameLayer = protected.find_layer().unwrap();
        for q in 0..QUBITS {
            assert_eq!(
                pf.frame().record(q),
                ppf.record(q),
                "trial {trial}: frame record {q} diverged"
            );
        }
        assert_eq!(ppf.protection_stats().injected, 0);
        assert_eq!(ppf.protection_stats().detected, 0);
        assert_eq!(ppf.protection_stats().rollbacks, 0);
    }
}

#[test]
fn saved_gate_counters_match_the_plain_frame() {
    for trial in 0..10u64 {
        let mut workload_rng = StdRng::seed_from_u64(5000 + trial);
        let circuit = random_circuit(4, 150, &mut workload_rng);

        let mut plain = ControlStack::with_seed(SvCore::new(), 17 * trial);
        plain.push_layer(PauliFrameLayer::new());
        plain.create_qubits(4).unwrap();
        plain.execute_now(circuit.clone()).unwrap();

        let mut protected = ControlStack::with_seed(SvCore::new(), 17 * trial);
        protected.push_layer(zero_fault_layer(900 + trial));
        protected.create_qubits(4).unwrap();
        protected.execute_now(circuit).unwrap();

        let pf: &PauliFrameLayer = plain.find_layer().unwrap();
        let ppf: &ProtectedPauliFrameLayer = protected.find_layer().unwrap();
        assert_eq!(
            pf.filtered_gates(),
            ppf.filtered_gates(),
            "trial {trial}: filtered-gate counters diverged"
        );
        assert_eq!(
            pf.filtered_slots(),
            ppf.filtered_slots(),
            "trial {trial}: filtered-slot counters diverged"
        );
    }
}

#[test]
fn histograms_match_the_plain_frame() {
    // Fig 5.7 at test scale: the odd-Bell histogram through the
    // protected layer equals the plain layer's shot for shot.
    for (odd, seed) in [(false, 60u64), (true, 61), (true, 62)] {
        let bench = BellStateHistoTb { shots: 48, odd };

        let mut plain = ControlStack::with_seed(SvCore::new(), seed);
        plain.push_layer(PauliFrameLayer::new());
        plain.create_qubits(2).unwrap();
        let plain_histo = bench.run(&mut plain).unwrap();

        let mut protected = ControlStack::with_seed(SvCore::new(), seed);
        protected.push_layer(zero_fault_layer(seed));
        protected.create_qubits(2).unwrap();
        let protected_histo = bench.run(&mut protected).unwrap();

        for label in ["|00>", "|01>", "|10>", "|11>"] {
            assert_eq!(
                plain_histo.count(label),
                protected_histo.count(label),
                "odd={odd}: histogram bin {label} diverged"
            );
        }
    }
}

#[test]
fn planless_layer_is_also_equivalent() {
    // No fault plan installed at all: the protected layer must still
    // track exactly like the plain one (protection without injection).
    let mut workload_rng = StdRng::seed_from_u64(6000);
    let circuit = random_circuit(4, 120, &mut workload_rng);

    let mut plain = ControlStack::with_seed(SvCore::new(), 1234);
    plain.push_layer(PauliFrameLayer::new());
    plain.create_qubits(4).unwrap();
    plain.execute_now(circuit.clone()).unwrap();
    let plain_bits = measure_all(&mut plain, 4).unwrap();

    let mut protected = ControlStack::with_seed(SvCore::new(), 1234);
    protected.push_layer(ProtectedPauliFrameLayer::new());
    protected.create_qubits(4).unwrap();
    protected.execute_now(circuit).unwrap();
    let protected_bits = measure_all(&mut protected, 4).unwrap();

    assert_eq!(plain_bits, protected_bits);
}

//! The paper's Section 5.2 verification at test scale: executing random
//! circuits with and without a Pauli-frame layer yields the same final
//! quantum state up to global phase, and the same measurement statistics.

use qpdo_circuit::Circuit;
use qpdo_core::testbench::random_circuit;
use qpdo_core::{ControlStack, PauliFrameLayer, SvCore};
use qpdo_rng::rngs::StdRng;
use qpdo_rng::SeedableRng;

fn compare_up_to_global_phase(
    a: &[qpdo_statevector::Complex],
    b: &[qpdo_statevector::Complex],
    tol: f64,
) -> bool {
    assert_eq!(a.len(), b.len());
    let (anchor, _) = a
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.norm_sqr().total_cmp(&y.1.norm_sqr()))
        .unwrap();
    let ra = a[anchor];
    let rb = b[anchor];
    if ra.norm() < tol || rb.norm() < tol {
        return false;
    }
    let phase = (rb * ra.conj()).scale(1.0 / ra.norm_sqr());
    a.iter()
        .zip(b)
        .all(|(&x, &y)| (x * phase).approx_eq(y, tol))
}

#[test]
fn random_circuits_equivalent_with_and_without_frame() {
    // Scaled-down version of the paper's 100 × (10 qubits, 1000 gates):
    // the experiment binary runs the full size; tests stay quick.
    for trial in 0..20u64 {
        let mut workload_rng = StdRng::seed_from_u64(1000 + trial);
        let circuit = random_circuit(5, 60, &mut workload_rng);

        // Reference: no Pauli frame.
        let mut reference = ControlStack::with_seed(SvCore::new(), 7 * trial);
        reference.create_qubits(5).unwrap();
        reference.execute_now(circuit.clone()).unwrap();

        // With a Pauli frame, then flushed.
        let mut framed = ControlStack::with_seed(SvCore::new(), 7 * trial);
        framed.push_layer(PauliFrameLayer::new());
        framed.create_qubits(5).unwrap();
        framed.execute_now(circuit).unwrap();
        framed.flush_pauli_frames().unwrap();

        let ref_dump = reference.quantum_state().unwrap();
        let framed_dump = framed.quantum_state().unwrap();
        assert!(
            compare_up_to_global_phase(
                ref_dump.amplitudes().unwrap(),
                framed_dump.amplitudes().unwrap(),
                1e-9,
            ),
            "trial {trial}: states differ beyond global phase"
        );
    }
}

#[test]
fn frame_really_filters_gates() {
    let mut workload_rng = StdRng::seed_from_u64(99);
    let circuit = random_circuit(4, 200, &mut workload_rng);
    let paulis = circuit.census().pauli_gates as u64;
    assert!(paulis > 0, "random circuit should contain Pauli gates");

    let mut framed = ControlStack::with_seed(SvCore::new(), 99);
    framed.push_layer(PauliFrameLayer::new());
    framed.create_qubits(4).unwrap();
    framed.execute_now(circuit).unwrap();
    let pf: &PauliFrameLayer = framed.find_layer().unwrap();
    assert_eq!(pf.filtered_gates(), paulis);
}

#[test]
fn deterministic_measurements_agree() {
    // Measure after a deterministic Clifford prefix: outcomes match
    // between the framed and unframed stacks bit for bit.
    for trial in 0..10u64 {
        let mut circuit = Circuit::new();
        circuit.prep_all(3);
        circuit.x(0).h(1).h(1).y(2).z(0);
        circuit.cnot(0, 1).cnot(0, 2);
        circuit.measure_all(3);

        let mut reference = ControlStack::with_seed(SvCore::new(), trial);
        reference.create_qubits(3).unwrap();
        reference.execute_now(circuit.clone()).unwrap();

        let mut framed = ControlStack::with_seed(SvCore::new(), trial);
        framed.push_layer(PauliFrameLayer::new());
        framed.create_qubits(3).unwrap();
        framed.execute_now(circuit).unwrap();

        for q in 0..3 {
            assert_eq!(
                reference.state().bit(q),
                framed.state().bit(q),
                "trial {trial}, qubit {q}"
            );
        }
    }
}

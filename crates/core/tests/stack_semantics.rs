//! Control-stack semantics under the paper's `Core` interface
//! (Table 4.1): queueing, error propagation, bypass isolation, and the
//! quantum-state dumps of both back-ends.

use qpdo_circuit::{Circuit, Gate, Operation};
use qpdo_core::{
    BitState, ChpCore, ControlStack, CoreError, CounterLayer, DepolarizingModel, PauliFrameLayer,
    QuantumState, SvCore,
};

#[test]
fn queued_circuits_execute_in_order() {
    let mut stack = ControlStack::with_seed(ChpCore::new(), 1);
    stack.create_qubits(1).unwrap();
    let mut flip = Circuit::new();
    flip.x(0);
    let mut measure = Circuit::new();
    measure.measure(0);
    // add() queues; nothing runs until execute().
    stack.add(flip).unwrap();
    stack.add(measure).unwrap();
    assert_eq!(stack.state().bit(0), BitState::Unknown);
    stack.execute().unwrap();
    assert_eq!(stack.state().bit(0), BitState::One);
}

#[test]
fn unsupported_gate_surfaces_as_an_error() {
    let mut stack = ControlStack::with_seed(ChpCore::new(), 2);
    stack.create_qubits(1).unwrap();
    let mut c = Circuit::new();
    c.t(0);
    let err = stack.execute_now(c).unwrap_err();
    assert_eq!(err, CoreError::UnsupportedGate(Gate::T));
}

#[test]
fn frame_layer_makes_pauli_gates_free_even_on_clifford_cores() {
    // A circuit of only Pauli gates executes on a stabilizer core even
    // through... trivially; the interesting case: a tracked Y on a
    // Clifford core never materializes as a gate at all.
    let mut stack = ControlStack::with_seed(ChpCore::new(), 3);
    stack.push_layer(PauliFrameLayer::new());
    stack.create_qubits(1).unwrap();
    let mut c = Circuit::new();
    c.prep(0).y(0).measure(0);
    stack.execute_now(c).unwrap();
    assert_eq!(stack.state().bit(0), BitState::One);
}

#[test]
fn quantum_state_dump_kinds_match_cores() {
    let mut chp = ControlStack::with_seed(ChpCore::new(), 4);
    chp.create_qubits(2).unwrap();
    assert!(matches!(
        chp.quantum_state().unwrap(),
        QuantumState::Stabilizers(_)
    ));
    let mut sv = ControlStack::with_seed(SvCore::new(), 4);
    sv.create_qubits(2).unwrap();
    assert!(matches!(
        sv.quantum_state().unwrap(),
        QuantumState::Amplitudes(_)
    ));
    let empty = ControlStack::with_seed(ChpCore::new(), 4);
    assert_eq!(empty.quantum_state().unwrap_err(), CoreError::NoQubits);
}

#[test]
fn diagnostic_circuits_do_not_leak_into_counters_or_errors() {
    let counter = CounterLayer::new();
    let counts = counter.counters();
    let mut stack = ControlStack::with_seed(ChpCore::new(), 5);
    stack.push_layer(counter);
    stack.set_error_model(DepolarizingModel::new(1.0));
    stack.create_qubits(2).unwrap();

    let mut diag = Circuit::new();
    diag.prep(0).cnot(0, 1).measure(1);
    stack.execute_diagnostic(diag).unwrap();
    assert_eq!(counts.operations(), 0);
    assert_eq!(stack.error_counts().unwrap().total(), 0);
    // The diagnostic still executed: qubit 1 was measured.
    assert_ne!(stack.state().bit(1), BitState::Unknown);

    // A normal circuit afterwards is counted and noisy.
    let mut noisy = Circuit::new();
    noisy.measure(0);
    stack.execute_now(noisy).unwrap();
    assert_eq!(counts.operations(), 1);
    assert_eq!(stack.error_counts().unwrap().measurement, 1);
}

#[test]
fn push_layer_after_qubits_sizes_the_layer() {
    // Layers added late still learn the register size.
    let mut stack = ControlStack::with_seed(ChpCore::new(), 6);
    stack.create_qubits(3).unwrap();
    stack.push_layer(PauliFrameLayer::new());
    let mut c = Circuit::new();
    c.prep(2).x(2).measure(2);
    stack.execute_now(c).unwrap();
    assert_eq!(stack.state().bit(2), BitState::One);
}

#[test]
fn idle_error_accounting_scales_with_register() {
    // One single-op slot on an n-qubit register idles n-1 qubits.
    for n in [2usize, 5, 9] {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 7);
        stack.set_error_model(DepolarizingModel::new(1.0));
        stack.create_qubits(n).unwrap();
        let mut c = Circuit::new();
        c.push_into_new_slot(Operation::gate(Gate::H, &[0]));
        stack.execute_now(c).unwrap();
        assert_eq!(stack.error_counts().unwrap().idle, (n - 1) as u64);
    }
}

#[test]
fn error_model_can_be_swapped_mid_run() {
    let mut stack = ControlStack::with_seed(ChpCore::new(), 8);
    stack.create_qubits(1).unwrap();
    let mut c = Circuit::new();
    c.measure(0);
    stack.execute_now(c.clone()).unwrap();
    assert!(stack.error_counts().is_none());
    stack.set_error_model(DepolarizingModel::new(1.0));
    stack.execute_now(c.clone()).unwrap();
    assert_eq!(stack.error_counts().unwrap().measurement, 1);
    stack.clear_error_model();
    stack.execute_now(c).unwrap();
    assert!(stack.error_counts().is_none());
}

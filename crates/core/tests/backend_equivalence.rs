//! Property-based cross-validation of the two simulation back-ends: for
//! random Clifford circuits, the stabilizer tableau (CHP) and the
//! state-vector simulator (QX) must agree on every Pauli expectation
//! value and every single-qubit measurement probability.
//!
//! This is the strongest internal consistency check the platform has:
//! the two simulators share no code beyond the Pauli algebra, so any
//! agreement bug in either would show up here.

use proptest::prelude::*;
use qpdo_pauli::{Pauli, PauliString};
use qpdo_stabilizer::StabilizerSim;
use qpdo_statevector::{Complex, StateVector};

const N: usize = 4;

#[derive(Clone, Debug)]
enum CliffordOp {
    H(usize),
    S(usize),
    Sdg(usize),
    X(usize),
    Y(usize),
    Z(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
}

fn arb_op() -> impl Strategy<Value = CliffordOp> {
    let q = 0..N;
    let pair = (0..N, 0..N - 1).prop_map(|(a, b)| {
        let b = if b >= a { b + 1 } else { b };
        (a, b)
    });
    prop_oneof![
        q.clone().prop_map(CliffordOp::H),
        q.clone().prop_map(CliffordOp::S),
        q.clone().prop_map(CliffordOp::Sdg),
        q.clone().prop_map(CliffordOp::X),
        q.clone().prop_map(CliffordOp::Y),
        q.prop_map(CliffordOp::Z),
        pair.clone().prop_map(|(a, b)| CliffordOp::Cnot(a, b)),
        pair.clone().prop_map(|(a, b)| CliffordOp::Cz(a, b)),
        pair.prop_map(|(a, b)| CliffordOp::Swap(a, b)),
    ]
}

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z),
    ]
}

fn apply_all(ops: &[CliffordOp]) -> (StabilizerSim, StateVector) {
    let mut tab = StabilizerSim::new(N);
    let mut sv = StateVector::new(N);
    for op in ops {
        match *op {
            CliffordOp::H(q) => {
                tab.h(q);
                sv.h(q);
            }
            CliffordOp::S(q) => {
                tab.s(q);
                sv.s(q);
            }
            CliffordOp::Sdg(q) => {
                tab.sdg(q);
                sv.sdg(q);
            }
            CliffordOp::X(q) => {
                tab.x(q);
                sv.x(q);
            }
            CliffordOp::Y(q) => {
                tab.y(q);
                sv.y(q);
            }
            CliffordOp::Z(q) => {
                tab.z(q);
                sv.z(q);
            }
            CliffordOp::Cnot(a, b) => {
                tab.cnot(a, b);
                sv.cnot(a, b);
            }
            CliffordOp::Cz(a, b) => {
                tab.cz(a, b);
                sv.cz(a, b);
            }
            CliffordOp::Swap(a, b) => {
                tab.swap(a, b);
                sv.swap(a, b);
            }
        }
    }
    (tab, sv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every Pauli expectation agrees: the tableau reports ±1 (in the
    /// group) or "random" (0); the state vector must say the same.
    #[test]
    fn expectations_agree(
        ops in prop::collection::vec(arb_op(), 0..40),
        paulis in prop::collection::vec(arb_pauli(), N),
    ) {
        let (mut tab, sv) = apply_all(&ops);
        let observable = PauliString::new(qpdo_pauli::Phase::PlusOne, paulis);
        let sv_value = sv.pauli_expectation(&observable);
        prop_assert!(sv_value.im.abs() < 1e-9, "Hermitian expectation is real");
        match tab.expectation(&observable) {
            Some(false) => prop_assert!(
                sv_value.approx_eq(Complex::ONE, 1e-9),
                "tableau says +1, state vector says {sv_value}"
            ),
            Some(true) => prop_assert!(
                sv_value.approx_eq(-Complex::ONE, 1e-9),
                "tableau says -1, state vector says {sv_value}"
            ),
            None => prop_assert!(
                sv_value.approx_eq(Complex::ZERO, 1e-9),
                "tableau says random, state vector says {sv_value}"
            ),
        }
    }

    /// Measurement probabilities agree: stabilizer states only ever have
    /// per-qubit probabilities 0, 1/2 or 1, and the tableau's
    /// deterministic-outcome report matches.
    #[test]
    fn measurement_probabilities_agree(
        ops in prop::collection::vec(arb_op(), 0..40),
    ) {
        let (mut tab, sv) = apply_all(&ops);
        for q in 0..N {
            let p1 = sv.prob_one(q);
            match tab.peek_deterministic(q) {
                Some(false) => prop_assert!(p1.abs() < 1e-9, "q{q}: p1 = {p1}"),
                Some(true) => prop_assert!((p1 - 1.0).abs() < 1e-9, "q{q}: p1 = {p1}"),
                None => prop_assert!((p1 - 0.5).abs() < 1e-9, "q{q}: p1 = {p1}"),
            }
        }
    }

    /// Collapsing measurements agree when driven by the same coin: after
    /// forcing the tableau's random outcomes onto the state vector via
    /// post-selection-by-comparison, the two remain consistent.
    #[test]
    fn collapse_chains_stay_consistent(
        ops in prop::collection::vec(arb_op(), 0..30),
        more_ops in prop::collection::vec(arb_op(), 0..15),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let (mut tab, mut sv) = apply_all(&ops);
        // Measure every qubit on the tableau with a seeded RNG; replay
        // the SAME outcome on the state vector by measuring with a
        // matched RNG stream is not guaranteed, so assert consistency
        // via probabilities instead: after the tableau collapses, apply
        // the same projective outcome to the state vector by hand.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for q in 0..N {
            let outcome = tab.measure(q, &mut rng);
            let p1 = sv.prob_one(q);
            // The tableau outcome must have non-zero probability.
            let p_outcome = if outcome { p1 } else { 1.0 - p1 };
            prop_assert!(p_outcome > 1e-9, "impossible outcome sampled");
            // Project the state vector onto the same outcome (retry with
            // fresh RNG seeds until the sampled branch matches; the
            // outcome has probability >= 1/2 - eps so this terminates).
            let mut attempt = 0u64;
            loop {
                let mut forced = rand::rngs::StdRng::seed_from_u64(1000 + attempt);
                let mut trial = sv.clone();
                if trial.measure(q, &mut forced) == outcome {
                    sv = trial;
                    break;
                }
                attempt += 1;
                prop_assert!(attempt < 256, "projection retry runaway");
            }
        }
        // Continue with more unitaries; expectations must still agree.
        for op in &more_ops {
            match *op {
                CliffordOp::H(q) => { tab.h(q); sv.h(q); }
                CliffordOp::S(q) => { tab.s(q); sv.s(q); }
                CliffordOp::Sdg(q) => { tab.sdg(q); sv.sdg(q); }
                CliffordOp::X(q) => { tab.x(q); sv.x(q); }
                CliffordOp::Y(q) => { tab.y(q); sv.y(q); }
                CliffordOp::Z(q) => { tab.z(q); sv.z(q); }
                CliffordOp::Cnot(a, b) => { tab.cnot(a, b); sv.cnot(a, b); }
                CliffordOp::Cz(a, b) => { tab.cz(a, b); sv.cz(a, b); }
                CliffordOp::Swap(a, b) => { tab.swap(a, b); sv.swap(a, b); }
            }
        }
        for q in 0..N {
            let p1 = sv.prob_one(q);
            match tab.peek_deterministic(q) {
                Some(false) => prop_assert!(p1.abs() < 1e-9),
                Some(true) => prop_assert!((p1 - 1.0).abs() < 1e-9),
                None => prop_assert!((p1 - 0.5).abs() < 1e-9),
            }
        }
    }
}

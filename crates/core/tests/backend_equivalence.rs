//! Property-based cross-validation of the two simulation back-ends: for
//! random Clifford circuits, the stabilizer tableau (CHP) and the
//! state-vector simulator (QX) must agree on every Pauli expectation
//! value and every single-qubit measurement probability.
//!
//! This is the strongest internal consistency check the platform has:
//! the two simulators share no code beyond the Pauli algebra, so any
//! agreement bug in either would show up here.
//!
//! Formerly a `proptest` suite; now deterministic seeded property loops
//! over `qpdo-rng` with the same case count (96), fixed seeds, and
//! counterexample reporting in every assertion message (no shrinking,
//! but fully reproducible).

use qpdo_pauli::{Pauli, PauliString};
use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_stabilizer::StabilizerSim;
use qpdo_statevector::{Complex, StateVector};

const N: usize = 4;
const CASES: usize = 96;

#[derive(Clone, Copy, Debug)]
enum CliffordOp {
    H(usize),
    S(usize),
    Sdg(usize),
    X(usize),
    Y(usize),
    Z(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
}

fn rand_pair(rng: &mut StdRng) -> (usize, usize) {
    let a = rng.gen_range(0..N);
    let b = rng.gen_range(0..N - 1);
    let b = if b >= a { b + 1 } else { b };
    (a, b)
}

fn rand_op(rng: &mut StdRng) -> CliffordOp {
    match rng.gen_range(0..9u8) {
        0 => CliffordOp::H(rng.gen_range(0..N)),
        1 => CliffordOp::S(rng.gen_range(0..N)),
        2 => CliffordOp::Sdg(rng.gen_range(0..N)),
        3 => CliffordOp::X(rng.gen_range(0..N)),
        4 => CliffordOp::Y(rng.gen_range(0..N)),
        5 => CliffordOp::Z(rng.gen_range(0..N)),
        6 => {
            let (a, b) = rand_pair(rng);
            CliffordOp::Cnot(a, b)
        }
        7 => {
            let (a, b) = rand_pair(rng);
            CliffordOp::Cz(a, b)
        }
        _ => {
            let (a, b) = rand_pair(rng);
            CliffordOp::Swap(a, b)
        }
    }
}

fn rand_ops(rng: &mut StdRng, max_len: usize) -> Vec<CliffordOp> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rand_op(rng)).collect()
}

fn rand_pauli(rng: &mut StdRng) -> Pauli {
    Pauli::ALL[rng.gen_range(0..4)]
}

fn apply_one(op: CliffordOp, tab: &mut StabilizerSim, sv: &mut StateVector) {
    match op {
        CliffordOp::H(q) => {
            tab.h(q);
            sv.h(q);
        }
        CliffordOp::S(q) => {
            tab.s(q);
            sv.s(q);
        }
        CliffordOp::Sdg(q) => {
            tab.sdg(q);
            sv.sdg(q);
        }
        CliffordOp::X(q) => {
            tab.x(q);
            sv.x(q);
        }
        CliffordOp::Y(q) => {
            tab.y(q);
            sv.y(q);
        }
        CliffordOp::Z(q) => {
            tab.z(q);
            sv.z(q);
        }
        CliffordOp::Cnot(a, b) => {
            tab.cnot(a, b);
            sv.cnot(a, b);
        }
        CliffordOp::Cz(a, b) => {
            tab.cz(a, b);
            sv.cz(a, b);
        }
        CliffordOp::Swap(a, b) => {
            tab.swap(a, b);
            sv.swap(a, b);
        }
    }
}

fn apply_all(ops: &[CliffordOp]) -> (StabilizerSim, StateVector) {
    let mut tab = StabilizerSim::new(N);
    let mut sv = StateVector::new(N);
    for op in ops {
        apply_one(*op, &mut tab, &mut sv);
    }
    (tab, sv)
}

/// Every Pauli expectation agrees: the tableau reports ±1 (in the
/// group) or "random" (0); the state vector must say the same.
#[test]
fn expectations_agree() {
    let mut rng = StdRng::seed_from_u64(0xBE01);
    for case in 0..CASES {
        let ops = rand_ops(&mut rng, 40);
        let paulis: Vec<Pauli> = (0..N).map(|_| rand_pauli(&mut rng)).collect();
        let (mut tab, sv) = apply_all(&ops);
        let observable = PauliString::new(qpdo_pauli::Phase::PlusOne, paulis);
        let sv_value = sv.pauli_expectation(&observable);
        assert!(
            sv_value.im.abs() < 1e-9,
            "case {case}: Hermitian expectation must be real; ops={ops:?} obs={observable}"
        );
        match tab.expectation(&observable) {
            Some(false) => assert!(
                sv_value.approx_eq(Complex::ONE, 1e-9),
                "case {case}: tableau says +1, state vector says {sv_value}; ops={ops:?} obs={observable}"
            ),
            Some(true) => assert!(
                sv_value.approx_eq(-Complex::ONE, 1e-9),
                "case {case}: tableau says -1, state vector says {sv_value}; ops={ops:?} obs={observable}"
            ),
            None => assert!(
                sv_value.approx_eq(Complex::ZERO, 1e-9),
                "case {case}: tableau says random, state vector says {sv_value}; ops={ops:?} obs={observable}"
            ),
        }
    }
}

/// Measurement probabilities agree: stabilizer states only ever have
/// per-qubit probabilities 0, 1/2 or 1, and the tableau's
/// deterministic-outcome report matches.
#[test]
fn measurement_probabilities_agree() {
    let mut rng = StdRng::seed_from_u64(0xBE02);
    for case in 0..CASES {
        let ops = rand_ops(&mut rng, 40);
        let (mut tab, sv) = apply_all(&ops);
        for q in 0..N {
            let p1 = sv.prob_one(q);
            match tab.peek_deterministic(q) {
                Some(false) => {
                    assert!(p1.abs() < 1e-9, "case {case}: q{q}: p1 = {p1}; ops={ops:?}");
                }
                Some(true) => assert!(
                    (p1 - 1.0).abs() < 1e-9,
                    "case {case}: q{q}: p1 = {p1}; ops={ops:?}"
                ),
                None => assert!(
                    (p1 - 0.5).abs() < 1e-9,
                    "case {case}: q{q}: p1 = {p1}; ops={ops:?}"
                ),
            }
        }
    }
}

/// Collapsing measurements agree when driven by the same coin: after
/// forcing the tableau's random outcomes onto the state vector via
/// post-selection-by-comparison, the two remain consistent.
#[test]
fn collapse_chains_stay_consistent() {
    let mut rng = StdRng::seed_from_u64(0xBE03);
    for case in 0..CASES {
        let ops = rand_ops(&mut rng, 30);
        let more_ops = rand_ops(&mut rng, 15);
        let seed = rng.gen_range(0u64..1000);
        let (mut tab, mut sv) = apply_all(&ops);
        // Measure every qubit on the tableau with a seeded RNG; replaying
        // the SAME outcome on the state vector by measuring with a
        // matched RNG stream is not guaranteed, so assert consistency
        // via probabilities instead: after the tableau collapses, apply
        // the same projective outcome to the state vector by hand.
        let mut measure_rng = StdRng::seed_from_u64(seed);
        for q in 0..N {
            let outcome = tab.measure(q, &mut measure_rng);
            let p1 = sv.prob_one(q);
            // The tableau outcome must have non-zero probability.
            let p_outcome = if outcome { p1 } else { 1.0 - p1 };
            assert!(
                p_outcome > 1e-9,
                "case {case}: impossible outcome sampled; q{q} ops={ops:?} seed={seed}"
            );
            // Project the state vector onto the same outcome (retry with
            // fresh RNG seeds until the sampled branch matches; the
            // outcome has probability >= 1/2 - eps so this terminates).
            let mut attempt = 0u64;
            loop {
                let mut forced = StdRng::seed_from_u64(1000 + attempt);
                let mut trial = sv.clone();
                if trial.measure(q, &mut forced) == outcome {
                    sv = trial;
                    break;
                }
                attempt += 1;
                assert!(
                    attempt < 256,
                    "case {case}: projection retry runaway; q{q} ops={ops:?} seed={seed}"
                );
            }
        }
        // Continue with more unitaries; expectations must still agree.
        for op in &more_ops {
            apply_one(*op, &mut tab, &mut sv);
        }
        for q in 0..N {
            let p1 = sv.prob_one(q);
            match tab.peek_deterministic(q) {
                Some(false) => assert!(
                    p1.abs() < 1e-9,
                    "case {case}: q{q}: p1 = {p1}; ops={ops:?} more={more_ops:?} seed={seed}"
                ),
                Some(true) => assert!(
                    (p1 - 1.0).abs() < 1e-9,
                    "case {case}: q{q}: p1 = {p1}; ops={ops:?} more={more_ops:?} seed={seed}"
                ),
                None => assert!(
                    (p1 - 0.5).abs() < 1e-9,
                    "case {case}: q{q}: p1 = {p1}; ops={ops:?} more={more_ops:?} seed={seed}"
                ),
            }
        }
    }
}

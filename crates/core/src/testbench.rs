//! Ready-to-use test benches (Section 4.2.4) and workload generators.
//!
//! A test bench drives an assembled [`ControlStack`]
//! through a scenario and diagnoses the outcome — independent of which
//! core and layers the stack contains, exactly as in the paper.

use qpdo_circuit::{Circuit, Gate, Operation};
use qpdo_rng::Rng;
use qpdo_stats::Histogram;

use crate::{BitState, ControlStack, Core, CoreError};

/// The gate set of the paper's random-circuit Pauli-frame verification
/// (Section 5.2.2): `{I, X, Y, Z, H, S, CNOT, CZ, SWAP, T, T†}`.
pub const RANDOM_CIRCUIT_GATES: [Gate; 11] = [
    Gate::I,
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::H,
    Gate::S,
    Gate::Cnot,
    Gate::Cz,
    Gate::Swap,
    Gate::T,
    Gate::Tdg,
];

/// Generates a random circuit of `gates` operations over `qubits` qubits,
/// drawn uniformly from [`RANDOM_CIRCUIT_GATES`] (Fig 5.4).
///
/// # Panics
///
/// Panics if `qubits < 2` (two-qubit gates need operands).
#[must_use]
pub fn random_circuit<R: Rng + ?Sized>(qubits: usize, gates: usize, rng: &mut R) -> Circuit {
    assert!(qubits >= 2, "random circuits need at least two qubits");
    let mut circuit = Circuit::new();
    for _ in 0..gates {
        let gate = RANDOM_CIRCUIT_GATES[rng.gen_range(0..RANDOM_CIRCUIT_GATES.len())];
        match gate.arity() {
            1 => {
                let q = rng.gen_range(0..qubits);
                circuit.apply(gate, q);
            }
            2 => {
                let a = rng.gen_range(0..qubits);
                let mut b = rng.gen_range(0..qubits - 1);
                if b >= a {
                    b += 1;
                }
                circuit.push(Operation::gate(gate, &[a, b]));
            }
            _ => unreachable!("random gate set is 1- and 2-qubit only"),
        }
    }
    circuit
}

/// The Bell-state histogram test bench (`BellStateHistoTb`): prepares a
/// (possibly odd) Bell state repeatedly and histograms the measurement
/// outcomes.
///
/// With `odd = true` the circuit of Fig 5.6 is used, producing
/// `(|01⟩ + |10⟩)/√2`.
#[derive(Clone, Copy, Debug)]
pub struct BellStateHistoTb {
    /// Number of prepare-measure iterations.
    pub shots: usize,
    /// Append the `X` that turns the Bell state into the odd Bell state.
    pub odd: bool,
}

impl BellStateHistoTb {
    /// Runs the bench against a two-qubit (or larger) stack.
    ///
    /// # Errors
    ///
    /// Propagates stack errors.
    pub fn run<C: Core>(&self, stack: &mut ControlStack<C>) -> Result<Histogram, CoreError> {
        let mut histogram = Histogram::new();
        for label in ["|00>", "|01>", "|10>", "|11>"] {
            histogram.ensure_bin(label);
        }
        for _ in 0..self.shots {
            let mut circuit = Circuit::new();
            circuit.prep(0).prep(1).h(0).cnot(0, 1);
            if self.odd {
                circuit.x(0);
            }
            circuit.measure(0).measure(1);
            stack.execute_now(circuit)?;
            let label = stack
                .state()
                .ket_label(&[0, 1])
                // invariant: the circuit above measures qubits 0 and 1,
                // so both classical bits are defined.
                .expect("both qubits were measured");
            histogram.record(label);
        }
        Ok(histogram)
    }
}

/// One row of the gate-support report produced by [`GateSupportTb`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateSupportRow {
    /// The gate under test.
    pub gate: Gate,
    /// Whether the stack executed it without error.
    pub supported: bool,
}

/// The gate-support test bench (`GateSupportTb`): runs a canned script
/// exercising every gate against a control stack and reports which ones
/// execute successfully.
#[derive(Clone, Copy, Debug, Default)]
pub struct GateSupportTb;

impl GateSupportTb {
    /// Runs the bench. The stack must have at least 3 qubits.
    ///
    /// # Errors
    ///
    /// Returns an error only for non-gate failures (e.g. no qubits).
    pub fn run<C: Core>(
        &self,
        stack: &mut ControlStack<C>,
    ) -> Result<Vec<GateSupportRow>, CoreError> {
        if stack.num_qubits() < 3 {
            return Err(CoreError::NoQubits);
        }
        let mut report = Vec::new();
        for gate in Gate::ALL {
            let qs: Vec<usize> = (0..gate.arity()).collect();
            let mut circuit = Circuit::new();
            for &q in &qs {
                circuit.prep(q);
            }
            circuit.push(Operation::gate(gate, &qs));
            let supported = match stack.execute_now(circuit) {
                Ok(()) => true,
                Err(CoreError::UnsupportedGate(_)) => false,
                Err(other) => return Err(other),
            };
            report.push(GateSupportRow { gate, supported });
        }
        Ok(report)
    }
}

/// A `Send + Sync` recipe for assembling a fresh control stack from a
/// seed — the shape worker threads of the supervised shot-execution
/// engine expect: each batch builds its own stack on its own thread from
/// a deterministic RNG substream, so nothing is shared between workers.
///
/// # Example
///
/// ```
/// use qpdo_core::testbench::StackFactory;
/// use qpdo_core::{ChpCore, ControlStack, PauliFrameLayer};
///
/// let factory: StackFactory<ChpCore> = Box::new(|seed| {
///     let mut stack = ControlStack::with_seed(ChpCore::new(), seed);
///     stack.push_layer(PauliFrameLayer::new());
///     stack
/// });
/// let stack = factory(7);
/// assert_eq!(stack.layer_count(), 1);
/// ```
pub type StackFactory<C> = Box<dyn Fn(u64) -> ControlStack<C> + Send + Sync>;

/// Measures qubits `0..n` and returns their [`BitState`]s (helper for
/// custom benches).
///
/// # Errors
///
/// Propagates stack errors.
pub fn measure_all<C: Core>(
    stack: &mut ControlStack<C>,
    n: usize,
) -> Result<Vec<BitState>, CoreError> {
    let mut circuit = Circuit::new();
    circuit.measure_all(n);
    stack.execute_now(circuit)?;
    Ok((0..n).map(|q| stack.state().bit(q)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChpCore, PauliFrameLayer, SvCore};
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::SeedableRng;

    #[test]
    fn random_circuit_respects_size() {
        let mut rng = StdRng::seed_from_u64(20);
        let c = random_circuit(5, 20, &mut rng);
        assert_eq!(c.operation_count(), 20);
        assert!(c.qubit_count() <= 5);
    }

    #[test]
    fn random_circuit_covers_gate_set() {
        let mut rng = StdRng::seed_from_u64(21);
        let c = random_circuit(4, 2000, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for op in c.operations() {
            seen.insert(op.as_gate().unwrap());
        }
        assert_eq!(seen.len(), RANDOM_CIRCUIT_GATES.len());
    }

    #[test]
    fn bell_tb_even_outcomes() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 22);
        stack.create_qubits(2).unwrap();
        let histo = BellStateHistoTb {
            shots: 64,
            odd: false,
        }
        .run(&mut stack)
        .unwrap();
        assert_eq!(histo.total(), 64);
        assert_eq!(histo.count("|01>"), 0);
        assert_eq!(histo.count("|10>"), 0);
        assert!(histo.count("|00>") > 0);
        assert!(histo.count("|11>") > 0);
    }

    #[test]
    fn odd_bell_tb_with_pauli_frame() {
        // Fig 5.7: with a Pauli frame the histogram must look the same.
        let mut stack = ControlStack::with_seed(ChpCore::new(), 23);
        stack.push_layer(PauliFrameLayer::new());
        stack.create_qubits(2).unwrap();
        let histo = BellStateHistoTb {
            shots: 64,
            odd: true,
        }
        .run(&mut stack)
        .unwrap();
        assert_eq!(histo.count("|00>"), 0);
        assert_eq!(histo.count("|11>"), 0);
        assert_eq!(histo.count("|01>") + histo.count("|10>"), 64);
    }

    #[test]
    fn gate_support_reports() {
        let mut chp = ControlStack::with_seed(ChpCore::new(), 24);
        chp.create_qubits(3).unwrap();
        let report = GateSupportTb.run(&mut chp).unwrap();
        let supported: Vec<Gate> = report
            .iter()
            .filter(|r| r.supported)
            .map(|r| r.gate)
            .collect();
        assert!(supported.contains(&Gate::Cnot));
        assert!(!supported.contains(&Gate::T));

        let mut sv = ControlStack::with_seed(SvCore::new(), 24);
        sv.create_qubits(3).unwrap();
        let report = GateSupportTb.run(&mut sv).unwrap();
        assert!(report.iter().all(|r| r.supported));
    }

    #[test]
    fn gate_support_needs_qubits() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 25);
        assert!(GateSupportTb.run(&mut stack).is_err());
    }

    #[test]
    fn factories_build_stacks_on_other_threads() {
        let factory: StackFactory<ChpCore> = Box::new(|seed| {
            let mut stack = ControlStack::with_seed(ChpCore::new(), seed);
            stack.push_layer(PauliFrameLayer::new());
            stack
        });
        let handle = std::thread::spawn(move || {
            let mut stack = factory(42);
            stack.create_qubits(2).unwrap();
            BellStateHistoTb {
                shots: 8,
                odd: true,
            }
            .run(&mut stack)
            .unwrap()
            .total()
        });
        assert_eq!(handle.join().unwrap(), 8);
    }
}

//! Classical-control fault injection.
//!
//! The paper's evaluation injects *quantum* noise and assumes the
//! classical control — the PFU registers, the measurement-result channel
//! and the arbiter (Figs 3.10–3.12) — is perfect and always meets its
//! real-time deadline. This module makes the classical side a failure
//! domain of its own: a seeded, deterministic [`FaultPlan`] injects
//!
//! - bit flips into stored Pauli-frame records (the
//!   [`ProtectedPauliFrameLayer`](crate::ProtectedPauliFrameLayer)
//!   consumes these),
//! - dropped / duplicated / stale measurement results on the QCU's
//!   result channel (modelled by [`ResultChannel`]),
//! - arbiter deadline overruns (consumed by
//!   [`arch::PauliArbiter`](crate::arch::PauliArbiter)).
//!
//! Every plan owns its **own** RNG stream, separate from the stack's
//! quantum-noise RNG: installing a plan with all rates zero is
//! bit-identical to installing no plan at all.

use std::fmt;

use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};

use crate::CoreError;

/// The classes of classical-control faults the plan can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClassicalFaultKind {
    /// A stored Pauli-frame record bit flipped (x, z or parity bit).
    FrameBitFlip,
    /// A measurement result was dropped on the QCU result channel.
    ResultDrop,
    /// A measurement result was duplicated on the QCU result channel.
    ResultDuplicate,
    /// A stale (earlier) measurement result was replayed on the channel.
    ResultStale,
    /// The arbiter exceeded its real-time budget for a time slot.
    DeadlineOverrun,
}

impl fmt::Display for ClassicalFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClassicalFaultKind::FrameBitFlip => "frame bit flip",
            ClassicalFaultKind::ResultDrop => "dropped result",
            ClassicalFaultKind::ResultDuplicate => "duplicated result",
            ClassicalFaultKind::ResultStale => "stale result",
            ClassicalFaultKind::DeadlineOverrun => "deadline overrun",
        })
    }
}

/// Which stored bit of a Pauli-frame record a fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameBit {
    /// The record's x bit.
    X,
    /// The record's z bit.
    Z,
    /// The protection parity bit (x ⊕ z). Meaningless on an unprotected
    /// frame, which stores no parity — the consumer remaps it there.
    Parity,
}

/// Per-class Bernoulli rates for classical faults.
///
/// Frame flips are per record per time slot; result faults are per
/// delivered result; deadline overruns are per arbiter dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultRates {
    /// Probability a stored frame record suffers a bit flip, per record
    /// per time slot.
    pub frame_bit_flip: f64,
    /// Probability a measurement result is dropped in transit.
    pub result_drop: f64,
    /// Probability a measurement result is delivered twice.
    pub result_duplicate: f64,
    /// Probability an earlier result is replayed instead of the new one.
    pub result_stale: f64,
    /// Probability one arbiter dispatch transiently overruns its slot.
    pub deadline_overrun: f64,
}

impl FaultRates {
    /// All rates zero: a plan that never fires.
    #[must_use]
    pub fn zero() -> Self {
        FaultRates::default()
    }

    /// Only frame-record bit flips, at the given rate.
    #[must_use]
    pub fn frame_only(rate: f64) -> Self {
        FaultRates {
            frame_bit_flip: rate,
            ..FaultRates::default()
        }
    }

    /// Checks every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProbability`] naming the offending
    /// field for any rate outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fields = [
            (self.frame_bit_flip, "frame bit-flip rate"),
            (self.result_drop, "result drop rate"),
            (self.result_duplicate, "result duplicate rate"),
            (self.result_stale, "result stale rate"),
            (self.deadline_overrun, "deadline overrun rate"),
        ];
        for (value, context) in fields {
            if !(0.0..=1.0).contains(&value) {
                return Err(CoreError::InvalidProbability {
                    value: format!("{value}"),
                    context,
                });
            }
        }
        Ok(())
    }
}

/// Counters of faults a plan has injected, by class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frame-record bit flips injected.
    pub frame_bit_flips: u64,
    /// Results dropped.
    pub result_drops: u64,
    /// Results duplicated.
    pub result_duplicates: u64,
    /// Stale results replayed.
    pub result_stales: u64,
    /// Transient deadline overruns injected.
    pub deadline_overruns: u64,
}

impl FaultCounts {
    /// Total faults injected across all classes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.frame_bit_flips
            + self.result_drops
            + self.result_duplicates
            + self.result_stales
            + self.deadline_overruns
    }
}

/// A seeded, deterministic classical-fault injector.
///
/// # Example
///
/// ```
/// use qpdo_core::fault::{FaultPlan, FaultRates};
///
/// let mut plan = FaultPlan::new(FaultRates::frame_only(1.0), 7).unwrap();
/// assert!(plan.sample_frame_bit_flip().is_some());
/// let mut silent = FaultPlan::new(FaultRates::zero(), 7).unwrap();
/// assert!(silent.sample_frame_bit_flip().is_none());
/// assert_eq!(silent.counts().total(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rates: FaultRates,
    rng: StdRng,
    counts: FaultCounts,
}

impl FaultPlan {
    /// A plan firing at the given rates, deterministic from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProbability`] for any rate outside
    /// `[0, 1]`.
    pub fn new(rates: FaultRates, seed: u64) -> Result<Self, CoreError> {
        rates.validate()?;
        Ok(FaultPlan {
            rates,
            rng: StdRng::seed_from_u64(seed),
            counts: FaultCounts::default(),
        })
    }

    /// A plan that never fires (useful as an inert default).
    #[must_use]
    pub fn inert(seed: u64) -> Self {
        FaultPlan {
            rates: FaultRates::zero(),
            rng: StdRng::seed_from_u64(seed),
            counts: FaultCounts::default(),
        }
    }

    /// The configured rates.
    #[must_use]
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Faults injected so far, by class.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// One Bernoulli draw, exact at the endpoints: `p <= 0` never fires
    /// and `p >= 1` always fires, neither consuming randomness.
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        p >= 1.0 || self.rng.gen::<f64>() < p
    }

    /// Samples whether one stored frame record is struck this time slot;
    /// on a hit, which bit flips (uniform over x, z, parity).
    pub fn sample_frame_bit_flip(&mut self) -> Option<FrameBit> {
        if !self.bernoulli(self.rates.frame_bit_flip) {
            return None;
        }
        self.counts.frame_bit_flips += 1;
        Some(match self.rng.gen_range(0..3u8) {
            0 => FrameBit::X,
            1 => FrameBit::Z,
            _ => FrameBit::Parity,
        })
    }

    /// Samples the fate of one result delivery on the channel. At most
    /// one fault class fires per delivery (drop wins over duplicate over
    /// stale).
    pub fn sample_result_fault(&mut self) -> Option<ClassicalFaultKind> {
        if self.bernoulli(self.rates.result_drop) {
            self.counts.result_drops += 1;
            return Some(ClassicalFaultKind::ResultDrop);
        }
        if self.bernoulli(self.rates.result_duplicate) {
            self.counts.result_duplicates += 1;
            return Some(ClassicalFaultKind::ResultDuplicate);
        }
        if self.bernoulli(self.rates.result_stale) {
            self.counts.result_stales += 1;
            return Some(ClassicalFaultKind::ResultStale);
        }
        None
    }

    /// Samples whether one arbiter dispatch transiently overruns its
    /// deadline (a retry re-samples and may succeed).
    pub fn sample_deadline_overrun(&mut self) -> bool {
        if self.bernoulli(self.rates.deadline_overrun) {
            self.counts.deadline_overruns += 1;
            true
        } else {
            false
        }
    }
}

/// A sequence-numbered measurement result travelling the faulty channel.
///
/// The sequence number is what lets a *protected* receiver detect
/// duplicates, stale replays and gaps; an unprotected receiver ignores
/// it and consumes whatever arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultMessage {
    /// The physical qubit the result belongs to.
    pub qubit: usize,
    /// Monotonic per-qubit send sequence number.
    pub seq: u64,
    /// The raw measurement value.
    pub value: bool,
}

/// The QCU's measurement-result channel with fault injection: results
/// sent by the Physical Execution Layer may be dropped, duplicated or
/// replaced by a stale earlier result on their way to the QCU.
///
/// # Example
///
/// ```
/// use qpdo_core::fault::{FaultPlan, FaultRates, ResultChannel};
///
/// let mut chan = ResultChannel::new(FaultPlan::inert(0), 4);
/// let delivered = chan.send(2, true);
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].qubit, 2);
/// assert!(delivered[0].value);
/// ```
#[derive(Clone, Debug)]
pub struct ResultChannel {
    plan: FaultPlan,
    /// Per-qubit send counter.
    next_seq: Vec<u64>,
    /// Per-qubit last message that made it onto the wire (stale source).
    last_sent: Vec<Option<ResultMessage>>,
}

impl ResultChannel {
    /// A channel over `qubits` physical qubits driven by `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan, qubits: usize) -> Self {
        ResultChannel {
            plan,
            next_seq: vec![0; qubits],
            last_sent: vec![None; qubits],
        }
    }

    /// Faults injected by the channel so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.plan.counts()
    }

    /// Sends one raw result; returns what actually arrives at the QCU
    /// (possibly nothing, possibly twice, possibly an old result).
    pub fn send(&mut self, qubit: usize, value: bool) -> Vec<ResultMessage> {
        let message = ResultMessage {
            qubit,
            seq: self.next_seq[qubit],
            value,
        };
        self.next_seq[qubit] += 1;
        match self.plan.sample_result_fault() {
            Some(ClassicalFaultKind::ResultDrop) => Vec::new(),
            Some(ClassicalFaultKind::ResultDuplicate) => {
                self.last_sent[qubit] = Some(message);
                vec![message, message]
            }
            Some(ClassicalFaultKind::ResultStale) => match self.last_sent[qubit] {
                // The new result is lost; an earlier one arrives instead.
                Some(old) => vec![old],
                None => {
                    self.last_sent[qubit] = Some(message);
                    vec![message]
                }
            },
            _ => {
                self.last_sent[qubit] = Some(message);
                vec![message]
            }
        }
    }

    /// Re-sends a result **fault-free** with a fresh sequence number.
    ///
    /// This is the QCU's drop-recovery path: the measured qubit has
    /// already collapsed, so re-reading it reproduces the value, and the
    /// fresh sequence number lets the protected receiver accept what it
    /// previously never saw (or rejected as stale).
    pub fn reissue(&mut self, qubit: usize, value: bool) -> ResultMessage {
        let message = ResultMessage {
            qubit,
            seq: self.next_seq[qubit],
            value,
        };
        self.next_seq[qubit] += 1;
        self.last_sent[qubit] = Some(message);
        message
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_rates_rejected() {
        let mut rates = FaultRates::zero();
        rates.result_drop = 1.5;
        let err = FaultPlan::new(rates, 0).unwrap_err();
        assert!(err.to_string().contains("drop rate"));
        assert!(FaultRates::frame_only(-0.1).validate().is_err());
        assert!(FaultRates::frame_only(1.0).validate().is_ok());
    }

    #[test]
    fn zero_rates_consume_no_randomness() {
        let mut plan = FaultPlan::new(FaultRates::zero(), 9).unwrap();
        for _ in 0..100 {
            assert!(plan.sample_frame_bit_flip().is_none());
            assert!(plan.sample_result_fault().is_none());
            assert!(!plan.sample_deadline_overrun());
        }
        // The RNG stream was never touched: it still matches a fresh one.
        let mut fresh = StdRng::seed_from_u64(9);
        assert_eq!(plan.rng.gen::<u64>(), fresh.gen::<u64>());
        assert_eq!(plan.counts(), FaultCounts::default());
    }

    #[test]
    fn unit_rates_always_fire_without_threshold_draws() {
        let mut rates = FaultRates::zero();
        rates.deadline_overrun = 1.0;
        let mut plan = FaultPlan::new(rates, 10).unwrap();
        for _ in 0..50 {
            assert!(plan.sample_deadline_overrun());
        }
        // p = 1 is exact: no Bernoulli draw, so the stream is untouched.
        let mut fresh = StdRng::seed_from_u64(10);
        assert_eq!(plan.rng.gen::<u64>(), fresh.gen::<u64>());
        assert_eq!(plan.counts().deadline_overruns, 50);
    }

    #[test]
    fn plans_are_deterministic_from_their_seed() {
        let rates = FaultRates::frame_only(0.3);
        let mut a = FaultPlan::new(rates, 42).unwrap();
        let mut b = FaultPlan::new(rates, 42).unwrap();
        let hits_a: Vec<_> = (0..200).map(|_| a.sample_frame_bit_flip()).collect();
        let hits_b: Vec<_> = (0..200).map(|_| b.sample_frame_bit_flip()).collect();
        assert_eq!(hits_a, hits_b);
        assert!(hits_a.iter().any(Option::is_some));
        assert!(hits_a.iter().any(Option::is_none));
    }

    #[test]
    fn frame_flips_cover_all_three_bits() {
        let mut plan = FaultPlan::new(FaultRates::frame_only(1.0), 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(format!("{:?}", plan.sample_frame_bit_flip().unwrap()));
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(plan.counts().frame_bit_flips, 100);
    }

    #[test]
    fn channel_drop_duplicate_stale() {
        // Drop everything.
        let mut rates = FaultRates::zero();
        rates.result_drop = 1.0;
        let mut chan = ResultChannel::new(FaultPlan::new(rates, 0).unwrap(), 2);
        assert!(chan.send(0, true).is_empty());
        assert_eq!(chan.counts().result_drops, 1);

        // Duplicate everything.
        let mut rates = FaultRates::zero();
        rates.result_duplicate = 1.0;
        let mut chan = ResultChannel::new(FaultPlan::new(rates, 0).unwrap(), 2);
        let out = chan.send(1, false);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);

        // Stale: the second send replays the first result.
        let mut rates = FaultRates::zero();
        rates.result_stale = 1.0;
        let mut chan = ResultChannel::new(FaultPlan::new(rates, 0).unwrap(), 1);
        let first = chan.send(0, true);
        assert_eq!(first.len(), 1); // nothing older to replay yet
        let second = chan.send(0, false);
        assert_eq!(second, first); // old value, old sequence number
    }

    #[test]
    fn channel_sequence_numbers_ascend_per_qubit() {
        let mut chan = ResultChannel::new(FaultPlan::inert(0), 2);
        assert_eq!(chan.send(0, false)[0].seq, 0);
        assert_eq!(chan.send(0, true)[0].seq, 1);
        assert_eq!(chan.send(1, true)[0].seq, 0);
    }
}

use std::any::Any;

use qpdo_circuit::Circuit;
use qpdo_rng::rngs::StdRng;

/// Execution context handed to layers while a circuit travels down the
/// stack.
pub struct LayerContext<'a> {
    /// The stack's random number generator.
    pub rng: &'a mut StdRng,
    /// `true` while a diagnostic circuit runs in the paper's *bypass mode*
    /// (Section 5.3.1): instrumentation layers must not count, and the
    /// stack injects no errors.
    pub bypass: bool,
}

/// A layer in a QPDO control stack (Fig 4.3a).
///
/// Layers sit between the top-level experiment and the simulation core.
/// Every circuit headed for the core passes through
/// [`process_circuit`](Layer::process_circuit) top-to-bottom; every raw
/// measurement outcome produced by the core passes through
/// [`process_measurement`](Layer::process_measurement) bottom-to-top.
///
/// All layers share this one interface, which is what lets stacks be
/// assembled freely (Pauli frames at any level, counters anywhere,
/// concatenated QEC layers, …).
///
/// Layers are `Send` so an assembled [`crate::ControlStack`] can be
/// constructed on (or moved to) a worker thread of the supervised
/// shot-execution engine — a stack is single-threaded while running, but
/// its batches execute on a pool.
pub trait Layer: Any + Send {
    /// A short layer name for logs and reports.
    fn name(&self) -> &str;

    /// Called when the stack allocates `n` more qubits.
    fn on_create_qubits(&mut self, _n: usize) {}

    /// Transforms a circuit on its way down to the core.
    fn process_circuit(&mut self, circuit: Circuit, ctx: &mut LayerContext<'_>) -> Circuit;

    /// Maps a raw measurement result on its way up from the core.
    fn process_measurement(&mut self, _qubit: usize, raw: bool) -> bool {
        raw
    }

    /// Hands back any operations the layer withheld and must now execute
    /// on the layers below (e.g. a Pauli-frame flush). Returns `None` when
    /// there is nothing pending.
    fn drain_flush(&mut self) -> Option<Circuit> {
        None
    }

    /// Upcast for stack introspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for stack introspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Passthrough;

    impl Layer for Passthrough {
        fn name(&self) -> &str {
            "passthrough"
        }
        fn process_circuit(&mut self, circuit: Circuit, _ctx: &mut LayerContext<'_>) -> Circuit {
            circuit
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn default_methods() {
        use qpdo_rng::SeedableRng;
        let mut layer = Passthrough;
        assert!(layer.process_measurement(0, true));
        assert!(!layer.process_measurement(3, false));
        assert!(layer.drain_flush().is_none());
        layer.on_create_qubits(4);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = LayerContext {
            rng: &mut rng,
            bypass: false,
        };
        let mut c = Circuit::new();
        c.h(0);
        let out = layer.process_circuit(c.clone(), &mut ctx);
        assert_eq!(out, c);
    }
}

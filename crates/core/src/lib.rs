//! QPDO core: the layered control-stack framework of Chapter 4 and the
//! Pauli-frame machinery of Chapter 3 of *Pauli Frames for Quantum
//! Computer Architectures*.
//!
//! # Architecture
//!
//! A [`ControlStack`] is a **core** (simulation back-end) with zero or more
//! **layers** stacked on top (Fig 4.3). Circuits enter at the top, are
//! transformed by each layer on the way down, and execute on the core;
//! measurement results travel back up through the layers:
//!
//! - [`ChpCore`] — stabilizer back-end (fast, Clifford-only).
//! - [`SvCore`] — universal state-vector back-end.
//! - [`PauliFrameLayer`] — the paper's contribution: tracks Pauli gates in
//!   classical records instead of executing them (Table 3.1).
//! - [`CounterLayer`] — counts gates and time slots passing a stack
//!   position (the instrumentation of Figs 5.25–5.26).
//!
//! Physical noise is injected at the execution boundary through
//! [`DepolarizingModel`], the symmetric depolarizing model of
//! Section 5.3.1. Diagnostic circuits run through
//! [`ControlStack::execute_diagnostic`], the paper's *bypass mode*:
//! error-free and uncounted.
//!
//! The [`arch`] module models the hardware view of Section 3.5: the
//! [`arch::PauliArbiter`] / [`arch::PauliFrameUnit`] pair (Figs 3.11–3.12),
//! the Quantum Control Unit building blocks, and the window schedule of
//! Fig 3.3.
//!
//! # Example
//!
//! ```
//! use qpdo_core::{ControlStack, PauliFrameLayer, SvCore};
//! use qpdo_circuit::Circuit;
//!
//! let mut stack = ControlStack::with_seed(SvCore::new(), 42);
//! stack.push_layer(PauliFrameLayer::new());
//! stack.create_qubits(2).unwrap();
//!
//! let mut bell = Circuit::new();
//! bell.prep(0).prep(1).h(0).cnot(0, 1).measure_all(2);
//! stack.add(bell).unwrap();
//! stack.execute().unwrap();
//! assert_eq!(stack.state().bit(0), stack.state().bit(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
mod backend;
mod error;
mod error_model;
pub mod fault;
mod layer;
mod layers;
mod stack;
mod state;
pub mod testbench;

#[cfg(feature = "reference")]
pub use backend::ReferenceChpCore;
pub use backend::{ChpCore, Core, SvCore};
pub use error::{CoreError, ShotError};
pub use error_model::{DepolarizingModel, ErrorCounts};
pub use layer::{Layer, LayerContext};
pub use layers::counter::{CounterLayer, Counters};
pub use layers::pauli_frame::PauliFrameLayer;
pub use layers::protected_pauli_frame::{
    FrameProtectionConfig, FrameProtectionStats, ProtectedPauliFrameLayer,
};
pub use stack::ControlStack;
pub use state::{BitState, QuantumState, State};

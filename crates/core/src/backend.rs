use qpdo_circuit::{Gate, Operation, OperationKind};
use qpdo_rng::RngCore;
use qpdo_stabilizer::{CliffordTableau, StabilizerSim};
use qpdo_statevector::StateVector;

use crate::{CoreError, QuantumState};

/// A simulation core: the bottom layer of every control stack (Fig 4.3b).
///
/// Cores execute individual operations against a quantum back-end and
/// report measurement outcomes. The two implementations mirror the paper's
/// back-ends: [`ChpCore`] (stabilizer) and [`SvCore`] (universal
/// state-vector).
pub trait Core {
    /// A short back-end name for logs and reports.
    fn name(&self) -> &'static str;

    /// The number of allocated qubits.
    fn num_qubits(&self) -> usize;

    /// Allocates `n` additional qubits in `|0⟩` (the paper's
    /// `createqubit(size)`).
    ///
    /// # Errors
    ///
    /// Returns an error if the back-end cannot hold the requested register.
    fn create_qubits(&mut self, n: usize) -> Result<(), CoreError>;

    /// Deallocates the entire register (the supported form of the paper's
    /// `removequbit()` — see [`CoreError::UnsupportedDeallocation`]).
    fn remove_all_qubits(&mut self);

    /// Whether this back-end can execute `gate`.
    fn supports_gate(&self, gate: Gate) -> bool;

    /// Executes a single operation. Returns `Some(outcome)` for
    /// measurements, `None` otherwise.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported gates or out-of-range qubits.
    fn apply(&mut self, op: &Operation, rng: &mut dyn RngCore) -> Result<Option<bool>, CoreError>;

    /// The quantum-state dump, if the back-end supports one.
    ///
    /// # Errors
    ///
    /// Returns an error when no qubits are allocated or the dump is
    /// unsupported.
    fn quantum_state(&self) -> Result<QuantumState, CoreError>;
}

fn check_qubits(op: &Operation, allocated: usize) -> Result<(), CoreError> {
    for &q in op.qubits() {
        if q >= allocated {
            return Err(CoreError::QubitOutOfRange {
                qubit: q,
                allocated,
            });
        }
    }
    Ok(())
}

/// Stabilizer simulation core — the stand-in for CHP (Section 4.1.2).
/// Fast, memory-light, Clifford gates only.
///
/// Generic over the tableau engine: the default `T = `[`StabilizerSim`]
/// is the word-packed production engine; any other
/// [`CliffordTableau`] (e.g. the reference oracle) slots in for
/// differential testing without touching the control stack above.
///
/// # Example
///
/// ```
/// use qpdo_core::{ChpCore, Core};
/// use qpdo_circuit::Gate;
///
/// let core = ChpCore::new();
/// assert!(core.supports_gate(Gate::Cnot));
/// assert!(!core.supports_gate(Gate::T));
/// ```
#[derive(Clone, Debug)]
pub struct ChpCore<T: CliffordTableau = StabilizerSim> {
    sim: Option<T>,
}

// Manual impl: a derived `Default` would demand `T: Default`, which the
// tableau contract deliberately does not include (engines are built via
// `with_qubits`).
impl<T: CliffordTableau> Default for ChpCore<T> {
    fn default() -> Self {
        ChpCore { sim: None }
    }
}

impl ChpCore {
    /// An empty stabilizer core over the packed production engine.
    #[must_use]
    pub fn new() -> Self {
        ChpCore::default()
    }
}

impl<T: CliffordTableau> ChpCore<T> {
    /// An empty stabilizer core over an explicit tableau engine `T`.
    #[must_use]
    pub fn empty() -> Self {
        ChpCore::default()
    }

    /// Direct access to the underlying simulator, if qubits exist.
    #[must_use]
    pub fn simulator(&self) -> Option<&T> {
        self.sim.as_ref()
    }

    /// Mutable access to the underlying simulator, if qubits exist.
    #[must_use]
    pub fn simulator_mut(&mut self) -> Option<&mut T> {
        self.sim.as_mut()
    }
}

/// A [`ChpCore`] running the cell-per-entry reference tableau — the
/// differential-oracle twin of the default packed core.
#[cfg(feature = "reference")]
pub type ReferenceChpCore = ChpCore<qpdo_stabilizer::ReferenceTableau>;

impl<T: CliffordTableau> Core for ChpCore<T> {
    fn name(&self) -> &'static str {
        T::BACKEND_NAME
    }

    fn num_qubits(&self) -> usize {
        self.sim.as_ref().map_or(0, T::num_qubits)
    }

    fn create_qubits(&mut self, n: usize) -> Result<(), CoreError> {
        if n == 0 {
            return Ok(());
        }
        match &mut self.sim {
            Some(sim) => sim.grow(n),
            None => self.sim = Some(T::with_qubits(n)),
        }
        Ok(())
    }

    fn remove_all_qubits(&mut self) {
        self.sim = None;
    }

    fn supports_gate(&self, gate: Gate) -> bool {
        !gate.is_non_clifford()
    }

    fn apply(&mut self, op: &Operation, rng: &mut dyn RngCore) -> Result<Option<bool>, CoreError> {
        let allocated = self.num_qubits();
        check_qubits(op, allocated)?;
        let sim = self.sim.as_mut().ok_or(CoreError::NoQubits)?;
        let q = op.qubits();
        match op.kind() {
            OperationKind::Prep => {
                sim.reset(q[0], rng);
                Ok(None)
            }
            OperationKind::Measure => Ok(Some(sim.measure(q[0], rng))),
            OperationKind::Gate(gate) => {
                match gate {
                    Gate::I => {}
                    Gate::X => sim.x(q[0]),
                    Gate::Y => sim.y(q[0]),
                    Gate::Z => sim.z(q[0]),
                    Gate::H => sim.h(q[0]),
                    Gate::S => sim.s(q[0]),
                    Gate::Sdg => sim.sdg(q[0]),
                    Gate::Cnot => sim.cnot(q[0], q[1]),
                    Gate::Cz => sim.cz(q[0], q[1]),
                    Gate::Swap => sim.swap(q[0], q[1]),
                    Gate::T | Gate::Tdg | Gate::Toffoli => {
                        return Err(CoreError::UnsupportedGate(gate))
                    }
                }
                Ok(None)
            }
        }
    }

    fn quantum_state(&self) -> Result<QuantumState, CoreError> {
        let sim = self.sim.as_ref().ok_or(CoreError::NoQubits)?;
        Ok(QuantumState::Stabilizers(sim.canonical_stabilizers()))
    }
}

/// Universal state-vector core backed by [`StateVector`] — the stand-in
/// for the QX Simulator (Section 4.1.1). Simulates every supported gate,
/// limited to ~30 qubits.
///
/// # Example
///
/// ```
/// use qpdo_core::{Core, SvCore};
/// use qpdo_circuit::Gate;
///
/// let core = SvCore::new();
/// assert!(core.supports_gate(Gate::Toffoli));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SvCore {
    sim: Option<StateVector>,
}

impl SvCore {
    /// An empty state-vector core (no qubits yet).
    #[must_use]
    pub fn new() -> Self {
        SvCore::default()
    }

    /// Direct access to the underlying simulator, if qubits exist.
    #[must_use]
    pub fn simulator(&self) -> Option<&StateVector> {
        self.sim.as_ref()
    }

    /// Mutable access to the underlying simulator, if qubits exist.
    #[must_use]
    pub fn simulator_mut(&mut self) -> Option<&mut StateVector> {
        self.sim.as_mut()
    }
}

impl Core for SvCore {
    fn name(&self) -> &'static str {
        "statevector"
    }

    fn num_qubits(&self) -> usize {
        self.sim.as_ref().map_or(0, StateVector::num_qubits)
    }

    fn create_qubits(&mut self, n: usize) -> Result<(), CoreError> {
        if n == 0 {
            return Ok(());
        }
        if self.num_qubits() + n > 30 {
            return Err(CoreError::RegisterTooLarge {
                requested: self.num_qubits() + n,
                maximum: 30,
            });
        }
        match &mut self.sim {
            Some(sim) => sim.grow(n),
            None => self.sim = Some(StateVector::new(n)),
        }
        Ok(())
    }

    fn remove_all_qubits(&mut self) {
        self.sim = None;
    }

    fn supports_gate(&self, _gate: Gate) -> bool {
        true
    }

    fn apply(&mut self, op: &Operation, rng: &mut dyn RngCore) -> Result<Option<bool>, CoreError> {
        let allocated = self.num_qubits();
        check_qubits(op, allocated)?;
        let sim = self.sim.as_mut().ok_or(CoreError::NoQubits)?;
        let q = op.qubits();
        match op.kind() {
            OperationKind::Prep => {
                sim.reset(q[0], rng);
                Ok(None)
            }
            OperationKind::Measure => Ok(Some(sim.measure(q[0], rng))),
            OperationKind::Gate(gate) => {
                match gate {
                    Gate::I => {}
                    Gate::X => sim.x(q[0]),
                    Gate::Y => sim.y(q[0]),
                    Gate::Z => sim.z(q[0]),
                    Gate::H => sim.h(q[0]),
                    Gate::S => sim.s(q[0]),
                    Gate::Sdg => sim.sdg(q[0]),
                    Gate::T => sim.t(q[0]),
                    Gate::Tdg => sim.tdg(q[0]),
                    Gate::Cnot => sim.cnot(q[0], q[1]),
                    Gate::Cz => sim.cz(q[0], q[1]),
                    Gate::Swap => sim.swap(q[0], q[1]),
                    Gate::Toffoli => sim.toffoli(q[0], q[1], q[2]),
                }
                Ok(None)
            }
        }
    }

    fn quantum_state(&self) -> Result<QuantumState, CoreError> {
        let sim = self.sim.as_ref().ok_or(CoreError::NoQubits)?;
        Ok(QuantumState::Amplitudes(sim.amplitudes().to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn chp_core_basics() {
        let mut core = ChpCore::new();
        assert_eq!(core.num_qubits(), 0);
        assert!(core.quantum_state().is_err());
        core.create_qubits(2).unwrap();
        assert_eq!(core.num_qubits(), 2);
        let mut rng = rng();
        core.apply(&Operation::gate(Gate::X, &[0]), &mut rng)
            .unwrap();
        let m = core
            .apply(&Operation::measure(0), &mut rng)
            .unwrap()
            .unwrap();
        assert!(m);
        core.create_qubits(3).unwrap();
        assert_eq!(core.num_qubits(), 5);
    }

    #[test]
    fn chp_rejects_non_clifford() {
        let mut core = ChpCore::new();
        core.create_qubits(1).unwrap();
        let err = core
            .apply(&Operation::gate(Gate::T, &[0]), &mut rng())
            .unwrap_err();
        assert_eq!(err, CoreError::UnsupportedGate(Gate::T));
    }

    #[test]
    fn sv_core_supports_all_gates() {
        let mut core = SvCore::new();
        core.create_qubits(3).unwrap();
        let mut rng = rng();
        for gate in Gate::ALL {
            let qs: Vec<usize> = (0..gate.arity()).collect();
            core.apply(&Operation::gate(gate, &qs), &mut rng).unwrap();
        }
    }

    #[test]
    fn out_of_range_reported() {
        let mut core = ChpCore::new();
        core.create_qubits(2).unwrap();
        let err = core.apply(&Operation::measure(5), &mut rng()).unwrap_err();
        assert_eq!(
            err,
            CoreError::QubitOutOfRange {
                qubit: 5,
                allocated: 2
            }
        );
    }

    #[test]
    fn cores_agree_on_clifford_circuit() {
        // A deterministic Clifford sequence ends in the same measurement
        // outcomes on both back-ends.
        let mut rng1 = rng();
        let mut rng2 = rng();
        let mut chp = ChpCore::new();
        let mut sv = SvCore::new();
        chp.create_qubits(2).unwrap();
        sv.create_qubits(2).unwrap();
        let ops = [
            Operation::gate(Gate::X, &[0]),
            Operation::gate(Gate::Cnot, &[0, 1]),
            Operation::gate(Gate::H, &[0]),
            Operation::gate(Gate::H, &[0]),
        ];
        for op in &ops {
            chp.apply(op, &mut rng1).unwrap();
            sv.apply(op, &mut rng2).unwrap();
        }
        for q in 0..2 {
            let a = chp.apply(&Operation::measure(q), &mut rng1).unwrap();
            let b = sv.apply(&Operation::measure(q), &mut rng2).unwrap();
            assert_eq!(a, b, "qubit {q}");
        }
    }

    #[test]
    fn quantum_state_dumps() {
        let mut rng = rng();
        let mut chp = ChpCore::new();
        chp.create_qubits(1).unwrap();
        chp.apply(&Operation::gate(Gate::H, &[0]), &mut rng)
            .unwrap();
        let dump = chp.quantum_state().unwrap();
        assert!(dump.stabilizers().is_some());

        let mut sv = SvCore::new();
        sv.create_qubits(1).unwrap();
        let dump = sv.quantum_state().unwrap();
        assert_eq!(dump.amplitudes().unwrap().len(), 2);
    }

    #[test]
    fn remove_all_resets() {
        let mut core = ChpCore::new();
        core.create_qubits(4).unwrap();
        core.remove_all_qubits();
        assert_eq!(core.num_qubits(), 0);
    }

    #[test]
    fn sv_core_qubit_limit() {
        let mut core = SvCore::new();
        assert!(core.create_qubits(31).is_err());
        core.create_qubits(10).unwrap();
        assert!(core.create_qubits(25).is_err());
    }
}

use qpdo_pauli::Pauli;
use qpdo_rng::Rng;

use crate::CoreError;

/// Counters of injected errors, readable after an experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorCounts {
    /// Pauli errors injected after single-qubit operations (incl. idles).
    pub single_qubit: u64,
    /// Two-qubit Pauli error events injected after two-qubit gates.
    pub two_qubit: u64,
    /// X errors injected before measurements.
    pub measurement: u64,
    /// Idle (identity-slot) errors, included in `single_qubit` as well.
    pub idle: u64,
}

impl ErrorCounts {
    /// Total number of error events injected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.single_qubit + self.two_qubit + self.measurement
    }
}

/// The symmetric depolarizing error model of Section 5.3.1.
///
/// For physical error rate `p`:
///
/// - every single-qubit operation (gates, resets, **and idling for one
///   time slot**) suffers `X`, `Y` or `Z`, each with probability `p/3`;
/// - a measurement suffers an `X` error (result and state flip) with
///   probability `p`;
/// - a two-qubit gate suffers one of the 15 non-identity Pauli pairs from
///   `{I,X,Y,Z}² \ {(I,I)}`, each with probability `p/15`.
///
/// # Example
///
/// ```
/// use qpdo_core::DepolarizingModel;
/// use qpdo_rng::SeedableRng;
///
/// let mut model = DepolarizingModel::new(0.5);
/// let mut rng = qpdo_rng::rngs::StdRng::seed_from_u64(1);
/// let mut hits = 0;
/// for _ in 0..1000 {
///     if model.sample_single(&mut rng).is_some() {
///         hits += 1;
///     }
/// }
/// assert!((400..600).contains(&hits)); // ~p = 0.5
/// ```
#[derive(Clone, Debug)]
pub struct DepolarizingModel {
    p: f64,
    counts: ErrorCounts,
}

impl DepolarizingModel {
    /// Creates a model with physical error rate `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`; use
    /// [`try_new`](Self::try_new) to handle that case gracefully.
    #[must_use]
    pub fn new(p: f64) -> Self {
        match DepolarizingModel::try_new(p) {
            Ok(model) => model,
            // invariant: constructor contract — the fallible path is try_new.
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a model with physical error rate `p`, rejecting (not
    /// clamping) rates outside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProbability`] when `p` is not a
    /// probability.
    pub fn try_new(p: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(CoreError::InvalidProbability {
                value: format!("{p}"),
                context: "physical error rate",
            });
        }
        Ok(DepolarizingModel {
            p,
            counts: ErrorCounts::default(),
        })
    }

    /// The physical error rate.
    #[must_use]
    pub fn physical_error_rate(&self) -> f64 {
        self.p
    }

    /// The error counters accumulated so far.
    #[must_use]
    pub fn counts(&self) -> ErrorCounts {
        self.counts
    }

    /// Resets the error counters.
    pub fn reset_counts(&mut self) {
        self.counts = ErrorCounts::default();
    }

    /// Samples the error after a single-qubit operation: `Some(X|Y|Z)`
    /// with probability `p/3` each.
    pub fn sample_single<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Pauli> {
        // p = 0 and p = 1 are exact: no threshold draw at the endpoints.
        if self.p <= 0.0 {
            return None;
        }
        if self.p < 1.0 && rng.gen::<f64>() >= self.p {
            return None;
        }
        self.counts.single_qubit += 1;
        Some(match rng.gen_range(0..3u8) {
            0 => Pauli::X,
            1 => Pauli::Y,
            _ => Pauli::Z,
        })
    }

    /// Samples the error for an idle qubit over one time slot (same
    /// distribution as [`sample_single`](Self::sample_single), tracked
    /// separately).
    pub fn sample_idle<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Pauli> {
        let err = self.sample_single(rng)?;
        self.counts.idle += 1;
        Some(err)
    }

    /// Samples the correlated error after a two-qubit gate: one of the 15
    /// non-identity pairs with probability `p/15` each. At least one
    /// element of a returned pair is non-identity.
    pub fn sample_two<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<(Pauli, Pauli)> {
        if self.p <= 0.0 {
            return None;
        }
        if self.p < 1.0 && rng.gen::<f64>() >= self.p {
            return None;
        }
        self.counts.two_qubit += 1;
        // Index 1..=15 over the 4x4 grid skips (I, I) at index 0.
        let idx = rng.gen_range(1..16u8);
        Some((
            Pauli::ALL[(idx / 4) as usize],
            Pauli::ALL[(idx % 4) as usize],
        ))
    }

    /// Samples whether a measurement suffers an X error (probability `p`).
    pub fn sample_measurement_flip<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.p <= 0.0 {
            return false;
        }
        if self.p >= 1.0 || rng.gen::<f64>() < self.p {
            self.counts.measurement += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::SeedableRng;

    #[test]
    fn zero_rate_never_errors() {
        let mut model = DepolarizingModel::new(0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(model.sample_single(&mut rng).is_none());
            assert!(model.sample_two(&mut rng).is_none());
            assert!(!model.sample_measurement_flip(&mut rng));
        }
        assert_eq!(model.counts().total(), 0);
    }

    #[test]
    fn unit_rate_always_errors() {
        let mut model = DepolarizingModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(model.sample_single(&mut rng).is_some());
            let (a, b) = model.sample_two(&mut rng).unwrap();
            assert!(a != Pauli::I || b != Pauli::I);
            assert!(model.sample_measurement_flip(&mut rng));
        }
        assert_eq!(model.counts().single_qubit, 100);
        assert_eq!(model.counts().two_qubit, 100);
        assert_eq!(model.counts().measurement, 100);
    }

    #[test]
    fn single_errors_uniform_over_xyz() {
        let mut model = DepolarizingModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..3000 {
            let p = model.sample_single(&mut rng).unwrap();
            counts[match p {
                Pauli::I => 0,
                Pauli::X => 1,
                Pauli::Y => 2,
                Pauli::Z => 3,
            }] += 1;
        }
        assert_eq!(counts[0], 0);
        for c in &counts[1..] {
            assert!((800..1200).contains(c), "counts {counts:?}");
        }
    }

    #[test]
    fn two_qubit_errors_cover_all_15_pairs() {
        let mut model = DepolarizingModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(model.sample_two(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 15);
        assert!(!seen.contains(&(Pauli::I, Pauli::I)));
    }

    #[test]
    fn idle_tracked_separately() {
        let mut model = DepolarizingModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        model.sample_idle(&mut rng);
        assert_eq!(model.counts().idle, 1);
        assert_eq!(model.counts().single_qubit, 1);
        model.reset_counts();
        assert_eq!(model.counts(), ErrorCounts::default());
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn invalid_rate_panics() {
        let _ = DepolarizingModel::new(1.5);
    }

    #[test]
    fn out_of_range_rates_are_rejected_not_clamped() {
        for p in [-0.1, 1.0001, f64::NAN, f64::INFINITY] {
            let err = DepolarizingModel::try_new(p).unwrap_err();
            assert!(matches!(err, CoreError::InvalidProbability { .. }), "{p}");
        }
        assert!(DepolarizingModel::try_new(0.0).is_ok());
        assert!(DepolarizingModel::try_new(1.0).is_ok());
    }

    #[test]
    fn endpoint_rates_draw_no_threshold_randomness() {
        // p = 0 consumes no randomness at all: the stream is untouched.
        let mut model = DepolarizingModel::new(0.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(model.sample_single(&mut rng).is_none());
            assert!(model.sample_two(&mut rng).is_none());
            assert!(!model.sample_measurement_flip(&mut rng));
        }
        let mut fresh = StdRng::seed_from_u64(11);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());

        // p = 1 never draws a threshold: measurement flips consume
        // nothing, and gate errors only draw the which-Pauli choice.
        let mut model = DepolarizingModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(12);
        let mut fresh = StdRng::seed_from_u64(12);
        assert!(model.sample_measurement_flip(&mut rng));
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
    }
}

use qpdo_circuit::{Circuit, Gate, Operation, OperationKind, TimeSlot};
use qpdo_pauli::Pauli;
use qpdo_rng::rngs::StdRng;
use qpdo_rng::SeedableRng;

use crate::{
    BitState, Core, CoreError, DepolarizingModel, ErrorCounts, Layer, LayerContext, QuantumState,
    State,
};

/// A QPDO control stack: a simulation [`Core`] plus stacked [`Layer`]s
/// (Fig 4.3a), with optional physical-noise injection at the execution
/// boundary.
///
/// Circuits are queued with [`add`](ControlStack::add) and run with
/// [`execute`](ControlStack::execute), matching the paper's shared `Core`
/// interface (Table 4.1): `createqubit`, `removequbit`, `add`, `execute`,
/// `getstate`, `getquantumstate`.
///
/// See the crate docs for an example.
pub struct ControlStack<C> {
    core: C,
    /// `layers[0]` is closest to the core; circuits enter at the end.
    layers: Vec<Box<dyn Layer>>,
    queued: Vec<Circuit>,
    rng: StdRng,
    error_model: Option<DepolarizingModel>,
    state: State,
}

impl<C: Core> ControlStack<C> {
    /// A stack over `core` seeded from OS entropy.
    #[must_use]
    pub fn new(core: C) -> Self {
        ControlStack {
            core,
            layers: Vec::new(),
            queued: Vec::new(),
            rng: StdRng::from_entropy(),
            error_model: None,
            state: State::default(),
        }
    }

    /// A stack over `core` with a deterministic RNG seed (reproducible
    /// experiments).
    #[must_use]
    pub fn with_seed(core: C, seed: u64) -> Self {
        ControlStack {
            rng: StdRng::seed_from_u64(seed),
            ..ControlStack::new(core)
        }
    }

    /// Pushes a layer on **top** of the stack (furthest from the core).
    pub fn push_layer(&mut self, layer: impl Layer) -> &mut Self {
        let mut boxed: Box<dyn Layer> = Box::new(layer);
        let n = self.num_qubits();
        if n > 0 {
            boxed.on_create_qubits(n);
        }
        self.layers.push(boxed);
        self
    }

    /// Installs (or replaces) the symmetric depolarizing error model
    /// applied at the core boundary.
    pub fn set_error_model(&mut self, model: DepolarizingModel) -> &mut Self {
        self.error_model = Some(model);
        self
    }

    /// Removes the error model.
    pub fn clear_error_model(&mut self) -> &mut Self {
        self.error_model = None;
        self
    }

    /// The injected-error counters, if an error model is installed.
    #[must_use]
    pub fn error_counts(&self) -> Option<ErrorCounts> {
        self.error_model.as_ref().map(DepolarizingModel::counts)
    }

    /// The number of allocated qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.core.num_qubits()
    }

    /// Allocates `n` additional qubits in `|0⟩`.
    ///
    /// # Errors
    ///
    /// Propagates back-end capacity errors.
    pub fn create_qubits(&mut self, n: usize) -> Result<(), CoreError> {
        self.core.create_qubits(n)?;
        for layer in &mut self.layers {
            layer.on_create_qubits(n);
        }
        self.state.grow(n);
        Ok(())
    }

    /// Deallocates the entire register and clears queued circuits.
    pub fn remove_all_qubits(&mut self) {
        self.core.remove_all_qubits();
        self.queued.clear();
        self.state = State::default();
    }

    /// Queues a circuit for execution.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit touches unallocated qubits.
    pub fn add(&mut self, circuit: Circuit) -> Result<(), CoreError> {
        let allocated = self.num_qubits();
        if circuit.qubit_count() > allocated {
            return Err(CoreError::QubitOutOfRange {
                qubit: circuit.qubit_count() - 1,
                allocated,
            });
        }
        self.queued.push(circuit);
        Ok(())
    }

    /// Executes every queued circuit in order.
    ///
    /// # Errors
    ///
    /// Propagates back-end errors; remaining queued circuits stay queued.
    pub fn execute(&mut self) -> Result<(), CoreError> {
        while !self.queued.is_empty() {
            let circuit = self.queued.remove(0);
            self.run_circuit(circuit, false)?;
        }
        Ok(())
    }

    /// Queues and immediately executes a circuit.
    ///
    /// # Errors
    ///
    /// As [`add`](ControlStack::add) and [`execute`](ControlStack::execute).
    pub fn execute_now(&mut self, circuit: Circuit) -> Result<(), CoreError> {
        self.add(circuit)?;
        self.execute()
    }

    /// Executes a diagnostic circuit in the paper's **bypass mode**
    /// (Section 5.3.1): no error injection, instrumentation layers do not
    /// count, but state-tracking layers (e.g. the Pauli frame) still
    /// process it so results stay consistent.
    ///
    /// # Errors
    ///
    /// As [`execute`](ControlStack::execute).
    pub fn execute_diagnostic(&mut self, circuit: Circuit) -> Result<(), CoreError> {
        let allocated = self.num_qubits();
        if circuit.qubit_count() > allocated {
            return Err(CoreError::QubitOutOfRange {
                qubit: circuit.qubit_count() - 1,
                allocated,
            });
        }
        self.run_circuit(circuit, true)
    }

    /// Flushes every Pauli frame in the stack: each layer's withheld
    /// Pauli gates are executed through the layers *below* it. After this
    /// the physical state matches the logical state exactly.
    ///
    /// # Errors
    ///
    /// Propagates back-end errors.
    pub fn flush_pauli_frames(&mut self) -> Result<(), CoreError> {
        // Walk from the top down so upper flushes pass through lower
        // layers (which may themselves track and later flush them — the
        // loop repeats until everything is clean).
        for i in (0..self.layers.len()).rev() {
            if let Some(flush) = self.layers[i].drain_flush() {
                self.run_circuit_from(flush, i, false)?;
            }
        }
        Ok(())
    }

    /// The binary state of every qubit (the paper's `getstate()`).
    #[must_use]
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The core's quantum-state dump (the paper's `getquantumstate()`).
    ///
    /// # Errors
    ///
    /// Returns an error when the back-end has no qubits or no dump.
    pub fn quantum_state(&self) -> Result<QuantumState, CoreError> {
        self.core.quantum_state()
    }

    /// Shared access to the core.
    #[must_use]
    pub fn core(&self) -> &C {
        &self.core
    }

    /// Mutable access to the core (e.g. to reach the raw simulator).
    #[must_use]
    pub fn core_mut(&mut self) -> &mut C {
        &mut self.core
    }

    /// The number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Downcasts the layer at `index` (0 = closest to the core).
    #[must_use]
    pub fn layer<T: Layer>(&self, index: usize) -> Option<&T> {
        self.layers.get(index)?.as_any().downcast_ref()
    }

    /// Mutable downcast of the layer at `index`.
    #[must_use]
    pub fn layer_mut<T: Layer>(&mut self, index: usize) -> Option<&mut T> {
        self.layers.get_mut(index)?.as_any_mut().downcast_mut()
    }

    /// Finds the topmost layer of concrete type `T`.
    #[must_use]
    pub fn find_layer<T: Layer>(&self) -> Option<&T> {
        self.layers
            .iter()
            .rev()
            .find_map(|l| l.as_any().downcast_ref())
    }

    /// Finds the topmost layer of concrete type `T`, mutably (e.g. to
    /// drain a protected frame layer's fault events).
    pub fn find_layer_mut<T: Layer>(&mut self) -> Option<&mut T> {
        self.layers
            .iter_mut()
            .rev()
            .find_map(|l| l.as_any_mut().downcast_mut())
    }

    /// The stack's RNG (e.g. to interleave external sampling
    /// deterministically).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn run_circuit(&mut self, circuit: Circuit, bypass: bool) -> Result<(), CoreError> {
        let top = self.layers.len();
        self.run_circuit_from(circuit, top, bypass)
    }

    /// Runs `circuit` entering the stack just below layer `entry` (i.e.
    /// through layers `entry-1 .. 0`, then the core).
    fn run_circuit_from(
        &mut self,
        circuit: Circuit,
        entry: usize,
        bypass: bool,
    ) -> Result<(), CoreError> {
        // Mark classical state: gates invalidate, preps zero. Measurement
        // outcomes are filled in below after result mapping.
        for op in circuit.operations() {
            match op.kind() {
                OperationKind::Prep => self.state.set_bit(op.qubits()[0], BitState::Zero),
                OperationKind::Measure => {}
                OperationKind::Gate(_) => {
                    for &q in op.qubits() {
                        self.state.set_bit(q, BitState::Unknown);
                    }
                }
            }
        }

        // Downward pass through the layers below the entry point.
        let mut transformed = circuit;
        for layer in self.layers[..entry].iter_mut().rev() {
            let mut ctx = LayerContext {
                rng: &mut self.rng,
                bypass,
            };
            transformed = layer.process_circuit(transformed, &mut ctx);
        }

        // Execute on the core slot by slot with noise injection.
        let n = self.num_qubits();
        for slot in transformed.slots() {
            self.execute_slot(slot, entry, bypass, n)?;
        }
        Ok(())
    }

    fn execute_slot(
        &mut self,
        slot: &TimeSlot,
        entry: usize,
        bypass: bool,
        n: usize,
    ) -> Result<(), CoreError> {
        let inject = self.error_model.is_some() && !bypass;
        for op in slot {
            // Measurement errors strike before the readout (X flips both
            // the state and the reported result).
            if inject && op.is_measure() {
                let flipped = match self.error_model.as_mut() {
                    Some(model) => model.sample_measurement_flip(&mut self.rng),
                    None => false,
                };
                if flipped {
                    self.apply_error(op.qubits()[0], Pauli::X)?;
                }
            }
            let raw = self.core.apply(op, &mut self.rng)?;
            if let Some(raw) = raw {
                let q = op.qubits()[0];
                let mut result = raw;
                for layer in self.layers[..entry].iter_mut() {
                    result = layer.process_measurement(q, result);
                }
                self.state.set_bit(q, BitState::from(result));
            }
            // Gate/prep errors strike after the operation.
            if inject && !op.is_measure() {
                self.inject_operation_error(op)?;
            }
        }
        // Idle errors: every qubit not touched this slot idles for one
        // time slot, which the model treats as an identity operation.
        if inject {
            for q in 0..n {
                if !slot.uses_qubit(q) {
                    let err = match self.error_model.as_mut() {
                        Some(model) => model.sample_idle(&mut self.rng),
                        None => None,
                    };
                    if let Some(p) = err {
                        self.apply_error(q, p)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn inject_operation_error(&mut self, op: &Operation) -> Result<(), CoreError> {
        match *op.qubits() {
            [q] => {
                let err = match self.error_model.as_mut() {
                    Some(model) => model.sample_single(&mut self.rng),
                    None => None,
                };
                if let Some(p) = err {
                    self.apply_error(q, p)?;
                }
            }
            [a, b] => {
                let err = match self.error_model.as_mut() {
                    Some(model) => model.sample_two(&mut self.rng),
                    None => None,
                };
                if let Some((pa, pb)) = err {
                    self.apply_error(a, pa)?;
                    self.apply_error(b, pb)?;
                }
            }
            ref qubits => {
                // Three-qubit gates (outside the paper's error analysis):
                // independent single-qubit depolarizing per operand.
                let qubits = qubits.to_vec();
                for q in qubits {
                    let err = match self.error_model.as_mut() {
                        Some(model) => model.sample_single(&mut self.rng),
                        None => None,
                    };
                    if let Some(p) = err {
                        self.apply_error(q, p)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies an injected error Pauli directly to the core (errors are
    /// physical: they never pass through the layers and are never
    /// counted).
    fn apply_error(&mut self, q: usize, p: Pauli) -> Result<(), CoreError> {
        let gate = match p {
            Pauli::I => return Ok(()),
            Pauli::X => Gate::X,
            Pauli::Y => Gate::Y,
            Pauli::Z => Gate::Z,
        };
        self.core
            .apply(&Operation::gate(gate, &[q]), &mut self.rng)?;
        self.state.set_bit(q, BitState::Unknown);
        Ok(())
    }
}

impl<C: Core> std::fmt::Debug for ControlStack<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlStack")
            .field("core", &self.core.name())
            .field(
                "layers",
                &self
                    .layers
                    .iter()
                    .map(|l| l.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .field("queued", &self.queued.len())
            .field("qubits", &self.num_qubits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChpCore, CounterLayer, PauliFrameLayer, SvCore};

    fn bell() -> Circuit {
        let mut c = Circuit::new();
        c.prep(0).prep(1).h(0).cnot(0, 1).measure_all(2);
        c
    }

    #[test]
    fn bell_state_correlated_on_both_cores() {
        for seed in 0..16 {
            let mut chp = ControlStack::with_seed(ChpCore::new(), seed);
            chp.create_qubits(2).unwrap();
            chp.execute_now(bell()).unwrap();
            assert_eq!(chp.state().bit(0), chp.state().bit(1));

            let mut sv = ControlStack::with_seed(SvCore::new(), seed);
            sv.create_qubits(2).unwrap();
            sv.execute_now(bell()).unwrap();
            assert_eq!(sv.state().bit(0), sv.state().bit(1));
        }
    }

    #[test]
    fn add_rejects_unallocated_qubits() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.create_qubits(1).unwrap();
        let mut c = Circuit::new();
        c.h(5);
        assert!(stack.add(c).is_err());
    }

    #[test]
    fn pauli_frame_layer_flips_results() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.push_layer(PauliFrameLayer::new());
        stack.create_qubits(1).unwrap();
        let mut c = Circuit::new();
        c.prep(0).x(0).measure(0);
        stack.execute_now(c).unwrap();
        assert_eq!(stack.state().bit(0), BitState::One);
        // The physical qubit is still |0>: the X never executed.
        let pf: &PauliFrameLayer = stack.find_layer().unwrap();
        assert_eq!(pf.filtered_gates(), 1);
    }

    #[test]
    fn counter_positions_see_different_streams() {
        // Counter above the PF layer sees the raw stream; below, the
        // filtered stream.
        let above = CounterLayer::new();
        let above_counts = above.counters();
        let below = CounterLayer::new();
        let below_counts = below.counters();
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.push_layer(below);
        stack.push_layer(PauliFrameLayer::new());
        stack.push_layer(above);
        stack.create_qubits(1).unwrap();
        let mut c = Circuit::new();
        c.prep(0).x(0).z(0).h(0).measure(0);
        stack.execute_now(c).unwrap();
        assert_eq!(above_counts.operations(), 5);
        assert_eq!(below_counts.operations(), 3); // prep, h, measure
        assert_eq!(above_counts.time_slots(), 5);
        assert_eq!(below_counts.time_slots(), 3);
    }

    #[test]
    fn diagnostic_bypasses_errors_and_counters() {
        let counter = CounterLayer::new();
        let counts = counter.counters();
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.push_layer(counter);
        stack.set_error_model(DepolarizingModel::new(1.0));
        stack.create_qubits(1).unwrap();
        let mut c = Circuit::new();
        c.prep(0).measure(0);
        stack.execute_diagnostic(c).unwrap();
        assert_eq!(counts.operations(), 0);
        assert_eq!(stack.error_counts().unwrap().total(), 0);
        // With p = 1 every diagnostic measurement would otherwise flip;
        // in bypass mode the result is clean.
        assert_eq!(stack.state().bit(0), BitState::Zero);
    }

    #[test]
    fn error_model_flips_measurements_at_p1() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.set_error_model(DepolarizingModel::new(1.0));
        stack.create_qubits(1).unwrap();
        let mut c = Circuit::new();
        c.measure(0);
        stack.execute_now(c).unwrap();
        // X error before measurement of |0> reads 1.
        assert_eq!(stack.state().bit(0), BitState::One);
        assert_eq!(stack.error_counts().unwrap().measurement, 1);
    }

    #[test]
    fn idle_errors_injected_per_slot() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.set_error_model(DepolarizingModel::new(1.0));
        stack.create_qubits(3).unwrap();
        let mut c = Circuit::new();
        c.push_into_new_slot(Operation::gate(Gate::H, &[0]));
        stack.execute_now(c).unwrap();
        let counts = stack.error_counts().unwrap();
        // Qubits 1 and 2 idled for one slot; qubit 0 got a gate error.
        assert_eq!(counts.idle, 2);
        assert_eq!(counts.single_qubit, 3);
    }

    #[test]
    fn flush_restores_physical_state() {
        let mut stack = ControlStack::with_seed(SvCore::new(), 0);
        stack.push_layer(PauliFrameLayer::new());
        stack.create_qubits(1).unwrap();
        let mut c = Circuit::new();
        c.prep(0).x(0);
        stack.execute_now(c).unwrap();
        // Physically still |0> until the flush applies the tracked X.
        let before = stack.quantum_state().unwrap();
        assert!(before.amplitudes().unwrap()[0].norm() > 0.99);
        stack.flush_pauli_frames().unwrap();
        let after = stack.quantum_state().unwrap();
        assert!(after.amplitudes().unwrap()[1].norm() > 0.99);
    }

    #[test]
    fn state_tracking_classifies_bits() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.create_qubits(3).unwrap();
        let mut c = Circuit::new();
        c.prep(0).h(1);
        stack.execute_now(c).unwrap();
        assert_eq!(stack.state().bit(0), BitState::Zero);
        assert_eq!(stack.state().bit(1), BitState::Unknown);
        assert_eq!(stack.state().bit(2), BitState::Unknown);
    }

    #[test]
    fn layer_introspection() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.push_layer(CounterLayer::new());
        stack.push_layer(PauliFrameLayer::new());
        assert_eq!(stack.layer_count(), 2);
        assert!(stack.layer::<CounterLayer>(0).is_some());
        assert!(stack.layer::<PauliFrameLayer>(1).is_some());
        assert!(stack.layer::<PauliFrameLayer>(0).is_none());
        assert!(stack.find_layer::<PauliFrameLayer>().is_some());
        assert!(stack.layer_mut::<CounterLayer>(0).is_some());
    }

    #[test]
    fn remove_all_clears_everything() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.create_qubits(2).unwrap();
        stack.add(bell()).unwrap();
        stack.remove_all_qubits();
        assert_eq!(stack.num_qubits(), 0);
        assert!(stack.state().is_empty());
    }

    #[test]
    fn stacks_are_send() {
        // The supervised shot-execution engine moves fully assembled
        // stacks into worker threads; this must stay true as layers and
        // cores evolve.
        fn assert_send<T: Send>() {}
        assert_send::<ControlStack<ChpCore>>();
        assert_send::<ControlStack<SvCore>>();
        assert_send::<Box<dyn crate::Layer>>();
    }

    #[test]
    fn debug_format_names_layers() {
        let mut stack = ControlStack::with_seed(ChpCore::new(), 0);
        stack.push_layer(PauliFrameLayer::new());
        let dbg = format!("{stack:?}");
        assert!(dbg.contains("chp"));
        assert!(dbg.contains("pauli-frame"));
    }
}

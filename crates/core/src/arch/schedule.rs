/// The window timing model of Figs 3.3 and 5.9 and the analytic bound of
/// Eq 5.12.
///
/// A *window* executes `d - 1` rounds of Error Syndrome Measurement (the
/// decoder consumes `d` rounds, reusing one from the previous window) and,
/// without a Pauli frame, one extra time slot to apply corrections. A
/// Pauli frame removes exactly that correction slot (Fig 3.3b), which
/// bounds the relative LER improvement it can ever deliver (Eq 5.12).
///
/// # Example
///
/// ```
/// use qpdo_core::arch::WindowSchedule;
///
/// let sched = WindowSchedule::new(8, 3); // ts_ESM = 8, distance 3
/// assert_eq!(sched.window_slots_without_frame(), 17);
/// assert_eq!(sched.window_slots_with_frame(), 16);
/// let bound = sched.relative_improvement_upper_bound();
/// assert!((bound - 1.0 / 17.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSchedule {
    ts_esm: usize,
    distance: usize,
}

impl WindowSchedule {
    /// A schedule for ESM circuits of `ts_esm` time slots and code
    /// distance `distance`.
    ///
    /// # Panics
    ///
    /// Panics if `ts_esm == 0` or `distance < 2`.
    #[must_use]
    pub fn new(ts_esm: usize, distance: usize) -> Self {
        assert!(ts_esm > 0, "an ESM round needs at least one time slot");
        assert!(distance >= 2, "window model needs distance >= 2");
        WindowSchedule { ts_esm, distance }
    }

    /// Time slots of one ESM round (8 for the paper's SC17 ESM,
    /// Table 5.8).
    #[must_use]
    pub fn ts_esm(&self) -> usize {
        self.ts_esm
    }

    /// The code distance.
    #[must_use]
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// ESM rounds per window: `d - 1` (one round is shared with the
    /// previous window, Fig 5.9).
    #[must_use]
    pub fn rounds_per_window(&self) -> usize {
        self.distance - 1
    }

    /// Time slots of the ESM rounds of one window (Eq 5.7).
    #[must_use]
    pub fn ts_rounds(&self) -> usize {
        self.rounds_per_window() * self.ts_esm
    }

    /// Window length in time slots **without** a Pauli frame: ESM rounds
    /// plus the correction slot (Eq 5.6 with `ts_corrections = 1`).
    #[must_use]
    pub fn window_slots_without_frame(&self) -> usize {
        self.ts_rounds() + 1
    }

    /// Window length in time slots **with** a Pauli frame: the correction
    /// slot disappears (`ts_corrections = 0`).
    #[must_use]
    pub fn window_slots_with_frame(&self) -> usize {
        self.ts_rounds()
    }

    /// Eq 5.12: the upper bound on the relative LER improvement a Pauli
    /// frame can deliver, `1 / ((d-1)·ts_ESM + 1)`.
    ///
    /// Converges to zero for large distance or long ESM rounds — the
    /// paper's argument for why no improvement is observed (or expected).
    #[must_use]
    pub fn relative_improvement_upper_bound(&self) -> f64 {
        1.0 / self.window_slots_without_frame() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc17_numbers() {
        // The paper's SC17 experiment: ts_ESM = 8, d = 3 → windows of
        // 2·8 = 16 slots (+1 correction slot without a frame).
        let s = WindowSchedule::new(8, 3);
        assert_eq!(s.rounds_per_window(), 2);
        assert_eq!(s.ts_rounds(), 16);
        assert_eq!(s.window_slots_without_frame(), 17);
        assert_eq!(s.window_slots_with_frame(), 16);
        // 1/17 ≈ 5.9% — the ~6% savings ceiling quoted in Section 5.3.2.
        let b = s.relative_improvement_upper_bound();
        assert!((b - 1.0 / 17.0).abs() < 1e-12);
        assert!(b < 0.06 && b > 0.058);
    }

    #[test]
    fn bound_decreases_with_distance() {
        let bounds: Vec<f64> = (3..=11)
            .step_by(2)
            .map(|d| WindowSchedule::new(8, d).relative_improvement_upper_bound())
            .collect();
        for pair in bounds.windows(2) {
            assert!(pair[1] < pair[0]);
        }
        // Fig 5.27: ~3% at d = 5, below 3% from d = 7 on.
        assert!((bounds[1] - 1.0 / 33.0).abs() < 1e-12);
        assert!(bounds[2] < 0.03);
    }

    #[test]
    fn bound_decreases_with_ts_esm() {
        let a = WindowSchedule::new(4, 3).relative_improvement_upper_bound();
        let b = WindowSchedule::new(16, 3).relative_improvement_upper_bound();
        assert!(b < a);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn rejects_distance_one() {
        let _ = WindowSchedule::new(8, 1);
    }
}

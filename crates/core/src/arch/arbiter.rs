use qpdo_circuit::{Gate, Operation, OperationKind};
use qpdo_pauli::Pauli;

use super::{PauliFrameUnit, PfuOutcome};
use crate::fault::FaultPlan;
use crate::CoreError;

/// A command emitted by the [`PauliArbiter`] to the Physical Execution
/// Layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PelCommand {
    /// Execute this operation on the physical qubits.
    Execute(Operation),
}

/// Counters of how the arbiter dispatched its operation stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Reset operations (forwarded to PFU **and** PEL).
    pub resets: u64,
    /// Measurement operations (forwarded to PEL; result path via PFU).
    pub measurements: u64,
    /// Pauli gates absorbed by the PFU (never reach the PEL).
    pub tracked_paulis: u64,
    /// Clifford gates (records mapped, gate forwarded).
    pub cliffords: u64,
    /// Non-Clifford gates (stream stalled, records flushed first).
    pub non_cliffords: u64,
    /// Pauli gates emitted by flushes.
    pub flush_gates: u64,
    /// Real-time deadline misses (budget exhausted or unrecovered
    /// transient overrun): the PFU was bypassed for that operation.
    pub deadline_misses: u64,
    /// Retry attempts made after an overrun was observed.
    pub deadline_retries: u64,
    /// Transient overruns that the single retry recovered.
    pub deadline_recovered: u64,
    /// Pauli gates emitted by deadline-miss flushes.
    pub deadline_flush_gates: u64,
    /// Pauli gates forwarded raw (untracked) because of a deadline miss.
    pub deadline_forwarded_paulis: u64,
}

impl ArbiterStats {
    /// Total operations received from the execution controller.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.resets
            + self.measurements
            + self.tracked_paulis
            + self.cliffords
            + self.non_cliffords
            + self.deadline_forwarded_paulis
    }

    /// Total operations forwarded to the PEL.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.resets
            + self.measurements
            + self.cliffords
            + self.non_cliffords
            + self.flush_gates
            + self.deadline_flush_gates
            + self.deadline_forwarded_paulis
    }
}

/// The Pauli arbiter of Figs 3.11–3.12: sits between the execution
/// controller and the Physical Execution Layer, consulting the
/// [`PauliFrameUnit`] to decide which operations are executed physically
/// and which are tracked classically.
///
/// # Real-time budget
///
/// Tracking is classical work that must finish before the quantum machine
/// needs the next operation. [`set_slot_budget`](Self::set_slot_budget)
/// caps the classical work units spent per time slot
/// ([`begin_time_slot`](Self::begin_time_slot) opens a slot; every
/// dispatch charges one unit). On an overrun — structural, or transient
/// via a [`FaultPlan`] — the arbiter retries once, then **misses**: it
/// flushes the affected records as physical Pauli gates and forwards the
/// operation untracked, reporting [`CoreError::DeadlineMissed`] through
/// [`drain_fault_events`](Self::drain_fault_events). Execution always
/// continues with correct quantum semantics; only the tracking advantage
/// is lost.
///
/// # Example
///
/// ```
/// use qpdo_core::arch::PauliArbiter;
/// use qpdo_circuit::{Gate, Operation};
///
/// let mut arbiter = PauliArbiter::new(17);
/// // A Pauli gate produces no PEL traffic at all:
/// assert!(arbiter
///     .dispatch(&Operation::gate(Gate::Z, &[4]))
///     .unwrap()
///     .is_empty());
/// // A Clifford gate is forwarded:
/// assert_eq!(
///     arbiter.dispatch(&Operation::gate(Gate::H, &[4])).unwrap().len(),
///     1
/// );
/// assert_eq!(arbiter.stats().tracked_paulis, 1);
/// ```
#[derive(Clone, Debug)]
pub struct PauliArbiter {
    pfu: PauliFrameUnit,
    stats: ArbiterStats,
    slot_budget: Option<u64>,
    slot_used: u64,
    fault_plan: Option<FaultPlan>,
    events: Vec<CoreError>,
}

impl PauliArbiter {
    /// An arbiter (with embedded PFU) over `n` physical qubits.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PauliArbiter {
            pfu: PauliFrameUnit::new(n),
            stats: ArbiterStats::default(),
            slot_budget: None,
            slot_used: 0,
            fault_plan: None,
            events: Vec::new(),
        }
    }

    /// The embedded Pauli Frame Unit.
    #[must_use]
    pub fn pfu(&self) -> &PauliFrameUnit {
        &self.pfu
    }

    /// Dispatch statistics so far.
    #[must_use]
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// Caps the classical work units per time slot (`None` = unlimited).
    /// A budget of zero forces every operation onto the deadline-miss
    /// path: the arbiter degenerates to a pass-through and the PFU
    /// records stay `I`.
    pub fn set_slot_budget(&mut self, budget: Option<u64>) -> &mut Self {
        self.slot_budget = budget;
        self
    }

    /// The configured per-slot budget.
    #[must_use]
    pub fn slot_budget(&self) -> Option<u64> {
        self.slot_budget
    }

    /// Installs a fault plan whose `deadline_overrun` rate injects
    /// transient overruns on top of the structural budget.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Opens a new time slot: the per-slot work counter restarts.
    pub fn begin_time_slot(&mut self) {
        self.slot_used = 0;
    }

    /// Drains the accumulated [`CoreError::DeadlineMissed`] events.
    pub fn drain_fault_events(&mut self) -> Vec<CoreError> {
        std::mem::take(&mut self.events)
    }

    /// Charges one unit of classical work and decides whether the
    /// deadline holds: retry-then-flush on overrun.
    fn deadline_ok(&mut self) -> bool {
        self.slot_used += 1;
        let structural = self.slot_budget.is_some_and(|b| self.slot_used > b);
        let transient = self
            .fault_plan
            .as_mut()
            .is_some_and(FaultPlan::sample_deadline_overrun);
        if !structural && !transient {
            return true;
        }
        self.stats.deadline_retries += 1;
        // A structural overrun cannot succeed on retry — the budget is
        // genuinely exhausted. A transient glitch is re-sampled once.
        if !structural
            && !self
                .fault_plan
                .as_mut()
                .is_some_and(FaultPlan::sample_deadline_overrun)
        {
            self.stats.deadline_recovered += 1;
            return true;
        }
        self.stats.deadline_misses += 1;
        self.events.push(CoreError::DeadlineMissed {
            used: self.slot_used,
            budget: self.slot_budget.unwrap_or(0),
        });
        false
    }

    /// Processes one operation from the execution controller, returning
    /// the PEL commands it generates, in execution order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::QubitOutOfRange`] when the operation
    /// references qubits outside the unit.
    pub fn dispatch(&mut self, op: &Operation) -> Result<Vec<PelCommand>, CoreError> {
        let allocated = self.pfu.num_qubits();
        if let Some(&qubit) = op.qubits().iter().find(|&&q| q >= allocated) {
            return Err(CoreError::QubitOutOfRange { qubit, allocated });
        }
        if !self.deadline_ok() {
            return Ok(self.dispatch_deadline_miss(op));
        }
        Ok(match self.pfu.process(op) {
            PfuOutcome::Reset => {
                self.stats.resets += 1;
                vec![PelCommand::Execute(op.clone())]
            }
            PfuOutcome::Measure { .. } => {
                self.stats.measurements += 1;
                vec![PelCommand::Execute(op.clone())]
            }
            PfuOutcome::Tracked => {
                self.stats.tracked_paulis += 1;
                Vec::new()
            }
            PfuOutcome::Mapped => {
                self.stats.cliffords += 1;
                vec![PelCommand::Execute(op.clone())]
            }
            PfuOutcome::Flushed { pauli_gates } => {
                self.stats.non_cliffords += 1;
                self.stats.flush_gates += pauli_gates.len() as u64;
                let mut commands: Vec<PelCommand> = pauli_gates
                    .into_iter()
                    .map(|(q, p)| PelCommand::Execute(Operation::gate(pauli_gate(p), &[q])))
                    .collect();
                commands.push(PelCommand::Execute(op.clone()));
                commands
            }
        })
    }

    /// The deadline-miss fallback: tracking could not complete in time,
    /// so the affected records are flushed as physical gates and the
    /// operation executes raw. Quantum semantics are preserved — the
    /// stream is exactly what a frameless controller would emit once the
    /// records are caught up.
    fn dispatch_deadline_miss(&mut self, op: &Operation) -> Vec<PelCommand> {
        let mut commands = Vec::new();
        for &q in op.qubits() {
            for p in self.pfu.flush_qubit(q) {
                self.stats.deadline_flush_gates += 1;
                commands.push(PelCommand::Execute(Operation::gate(pauli_gate(p), &[q])));
            }
        }
        let is_pauli = matches!(
            op.kind(),
            OperationKind::Gate(Gate::I | Gate::X | Gate::Y | Gate::Z)
        );
        if is_pauli {
            // The one flow that normally produces no PEL traffic: with
            // tracking unavailable, the gate must execute physically.
            self.stats.deadline_forwarded_paulis += 1;
            commands.push(PelCommand::Execute(op.clone()));
        } else {
            // Records are now I, so re-processing is semantically inert
            // (maps identities, measures uninverted) but keeps the PFU
            // and the stats coherent.
            match self.pfu.process(op) {
                PfuOutcome::Reset => self.stats.resets += 1,
                PfuOutcome::Measure { .. } => self.stats.measurements += 1,
                PfuOutcome::Mapped => self.stats.cliffords += 1,
                PfuOutcome::Flushed { pauli_gates } => {
                    debug_assert!(pauli_gates.is_empty());
                    self.stats.non_cliffords += 1;
                }
                // invariant: Pauli gates were routed to the raw branch above.
                PfuOutcome::Tracked => unreachable!("pauli handled above"),
            }
            commands.push(PelCommand::Execute(op.clone()));
        }
        commands
    }

    /// Maps a raw measurement result arriving from the PEL (step 4–5 of
    /// Fig 3.12b).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn map_measurement(&self, q: usize, raw: bool) -> bool {
        self.pfu.map_measurement(q, raw)
    }
}

fn pauli_gate(p: Pauli) -> Gate {
    match p {
        Pauli::I => Gate::I,
        Pauli::X => Gate::X,
        Pauli::Y => Gate::Y,
        Pauli::Z => Gate::Z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRates;
    use qpdo_pauli::PauliRecord;

    #[test]
    fn pauli_gates_produce_no_pel_traffic() {
        let mut arb = PauliArbiter::new(2);
        assert!(arb
            .dispatch(&Operation::gate(Gate::X, &[0]))
            .unwrap()
            .is_empty());
        assert!(arb
            .dispatch(&Operation::gate(Gate::Y, &[1]))
            .unwrap()
            .is_empty());
        assert_eq!(arb.stats().tracked_paulis, 2);
        assert_eq!(arb.stats().forwarded(), 0);
    }

    #[test]
    fn reset_and_measure_forwarded() {
        let mut arb = PauliArbiter::new(1);
        assert_eq!(arb.dispatch(&Operation::prep(0)).unwrap().len(), 1);
        assert_eq!(arb.dispatch(&Operation::measure(0)).unwrap().len(), 1);
        assert_eq!(arb.stats().resets, 1);
        assert_eq!(arb.stats().measurements, 1);
    }

    #[test]
    fn non_clifford_stalls_and_flushes() {
        let mut arb = PauliArbiter::new(1);
        arb.dispatch(&Operation::gate(Gate::X, &[0])).unwrap();
        let commands = arb.dispatch(&Operation::gate(Gate::T, &[0])).unwrap();
        assert_eq!(
            commands,
            vec![
                PelCommand::Execute(Operation::gate(Gate::X, &[0])),
                PelCommand::Execute(Operation::gate(Gate::T, &[0])),
            ]
        );
        assert_eq!(arb.pfu().record(0), PauliRecord::I);
        assert_eq!(arb.stats().flush_gates, 1);
    }

    #[test]
    fn measurement_mapping_via_record() {
        let mut arb = PauliArbiter::new(1);
        arb.dispatch(&Operation::gate(Gate::X, &[0])).unwrap();
        assert!(arb.map_measurement(0, false));
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let mut arb = PauliArbiter::new(2);
        let err = arb.dispatch(&Operation::gate(Gate::H, &[5])).unwrap_err();
        assert_eq!(
            err,
            CoreError::QubitOutOfRange {
                qubit: 5,
                allocated: 2
            }
        );
    }

    #[test]
    fn stats_accounting() {
        let mut arb = PauliArbiter::new(2);
        arb.dispatch(&Operation::prep(0)).unwrap();
        arb.dispatch(&Operation::gate(Gate::Z, &[0])).unwrap();
        arb.dispatch(&Operation::gate(Gate::H, &[0])).unwrap();
        arb.dispatch(&Operation::gate(Gate::T, &[0])).unwrap();
        arb.dispatch(&Operation::measure(0)).unwrap();
        let s = arb.stats();
        assert_eq!(s.received(), 5);
        // prep + h + t + flush(1: the Z mapped to X by H... still one
        // record) + measure
        assert_eq!(s.non_cliffords, 1);
        assert!(s.forwarded() >= 4);
    }

    #[test]
    fn zero_budget_bypasses_tracking() {
        let mut arb = PauliArbiter::new(1);
        arb.set_slot_budget(Some(0));
        arb.begin_time_slot();
        // The Pauli is forced through raw; the record never moves.
        let commands = arb.dispatch(&Operation::gate(Gate::X, &[0])).unwrap();
        assert_eq!(
            commands,
            vec![PelCommand::Execute(Operation::gate(Gate::X, &[0]))]
        );
        assert_eq!(arb.pfu().record(0), PauliRecord::I);
        let s = arb.stats();
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.deadline_forwarded_paulis, 1);
        assert_eq!(s.deadline_recovered, 0);
        let events = arb.drain_fault_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], CoreError::DeadlineMissed { .. }));
        assert!(arb.drain_fault_events().is_empty());
    }

    #[test]
    fn deadline_miss_flushes_pending_records() {
        let mut arb = PauliArbiter::new(1);
        arb.begin_time_slot();
        arb.dispatch(&Operation::gate(Gate::X, &[0])).unwrap();
        assert_eq!(arb.pfu().record(0), PauliRecord::X);
        // The budget collapses mid-stream: the pending record is emitted
        // as a physical gate before the raw H.
        arb.set_slot_budget(Some(0));
        arb.begin_time_slot();
        let commands = arb.dispatch(&Operation::gate(Gate::H, &[0])).unwrap();
        assert_eq!(
            commands,
            vec![
                PelCommand::Execute(Operation::gate(Gate::X, &[0])),
                PelCommand::Execute(Operation::gate(Gate::H, &[0])),
            ]
        );
        assert_eq!(arb.pfu().record(0), PauliRecord::I);
        assert_eq!(arb.stats().deadline_flush_gates, 1);
    }

    #[test]
    fn budget_counts_work_within_a_slot() {
        let mut arb = PauliArbiter::new(1);
        arb.set_slot_budget(Some(2));
        arb.begin_time_slot();
        assert!(arb
            .dispatch(&Operation::gate(Gate::X, &[0]))
            .unwrap()
            .is_empty());
        assert!(arb
            .dispatch(&Operation::gate(Gate::X, &[0]))
            .unwrap()
            .is_empty());
        // Third unit of work in a 2-unit slot: miss.
        arb.dispatch(&Operation::gate(Gate::X, &[0])).unwrap();
        assert_eq!(arb.stats().deadline_misses, 1);
        // A fresh slot restores the budget.
        arb.begin_time_slot();
        assert!(arb
            .dispatch(&Operation::gate(Gate::X, &[0]))
            .unwrap()
            .is_empty());
        assert_eq!(arb.stats().deadline_misses, 1);
    }

    #[test]
    fn transient_overruns_retry_then_flush() {
        let mut rates = FaultRates::zero();
        rates.deadline_overrun = 1.0;
        let mut arb = PauliArbiter::new(1);
        arb.set_fault_plan(FaultPlan::new(rates, 7).unwrap());
        arb.begin_time_slot();
        // Overrun fires on both the first attempt and the retry.
        arb.dispatch(&Operation::gate(Gate::X, &[0])).unwrap();
        let s = arb.stats();
        assert_eq!(s.deadline_retries, 1);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.deadline_recovered, 0);
    }

    #[test]
    fn transient_overrun_can_recover_on_retry() {
        let mut rates = FaultRates::zero();
        rates.deadline_overrun = 0.5;
        let mut arb = PauliArbiter::new(1);
        arb.set_fault_plan(FaultPlan::new(rates, 21).unwrap());
        for _ in 0..200 {
            arb.begin_time_slot();
            arb.dispatch(&Operation::gate(Gate::X, &[0])).unwrap();
        }
        let s = arb.stats();
        // At rate 0.5 over 200 ops, both outcomes of the retry occur.
        assert!(s.deadline_recovered > 0, "{s:?}");
        assert!(s.deadline_misses > 0, "{s:?}");
        assert_eq!(s.deadline_retries, s.deadline_recovered + s.deadline_misses);
    }
}

use qpdo_circuit::{Gate, Operation};
use qpdo_pauli::Pauli;

use super::{PauliFrameUnit, PfuOutcome};

/// A command emitted by the [`PauliArbiter`] to the Physical Execution
/// Layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PelCommand {
    /// Execute this operation on the physical qubits.
    Execute(Operation),
}

/// Counters of how the arbiter dispatched its operation stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Reset operations (forwarded to PFU **and** PEL).
    pub resets: u64,
    /// Measurement operations (forwarded to PEL; result path via PFU).
    pub measurements: u64,
    /// Pauli gates absorbed by the PFU (never reach the PEL).
    pub tracked_paulis: u64,
    /// Clifford gates (records mapped, gate forwarded).
    pub cliffords: u64,
    /// Non-Clifford gates (stream stalled, records flushed first).
    pub non_cliffords: u64,
    /// Pauli gates emitted by flushes.
    pub flush_gates: u64,
}

impl ArbiterStats {
    /// Total operations received from the execution controller.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.resets + self.measurements + self.tracked_paulis + self.cliffords + self.non_cliffords
    }

    /// Total operations forwarded to the PEL.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.resets + self.measurements + self.cliffords + self.non_cliffords + self.flush_gates
    }
}

/// The Pauli arbiter of Figs 3.11–3.12: sits between the execution
/// controller and the Physical Execution Layer, consulting the
/// [`PauliFrameUnit`] to decide which operations are executed physically
/// and which are tracked classically.
///
/// # Example
///
/// ```
/// use qpdo_core::arch::PauliArbiter;
/// use qpdo_circuit::{Gate, Operation};
///
/// let mut arbiter = PauliArbiter::new(17);
/// // A Pauli gate produces no PEL traffic at all:
/// assert!(arbiter.dispatch(&Operation::gate(Gate::Z, &[4])).is_empty());
/// // A Clifford gate is forwarded:
/// assert_eq!(arbiter.dispatch(&Operation::gate(Gate::H, &[4])).len(), 1);
/// assert_eq!(arbiter.stats().tracked_paulis, 1);
/// ```
#[derive(Clone, Debug)]
pub struct PauliArbiter {
    pfu: PauliFrameUnit,
    stats: ArbiterStats,
}

impl PauliArbiter {
    /// An arbiter (with embedded PFU) over `n` physical qubits.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PauliArbiter {
            pfu: PauliFrameUnit::new(n),
            stats: ArbiterStats::default(),
        }
    }

    /// The embedded Pauli Frame Unit.
    #[must_use]
    pub fn pfu(&self) -> &PauliFrameUnit {
        &self.pfu
    }

    /// Dispatch statistics so far.
    #[must_use]
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// Processes one operation from the execution controller, returning
    /// the PEL commands it generates, in execution order.
    ///
    /// # Panics
    ///
    /// Panics if the operation references qubits outside the unit.
    pub fn dispatch(&mut self, op: &Operation) -> Vec<PelCommand> {
        match self.pfu.process(op) {
            PfuOutcome::Reset => {
                self.stats.resets += 1;
                vec![PelCommand::Execute(op.clone())]
            }
            PfuOutcome::Measure { .. } => {
                self.stats.measurements += 1;
                vec![PelCommand::Execute(op.clone())]
            }
            PfuOutcome::Tracked => {
                self.stats.tracked_paulis += 1;
                Vec::new()
            }
            PfuOutcome::Mapped => {
                self.stats.cliffords += 1;
                vec![PelCommand::Execute(op.clone())]
            }
            PfuOutcome::Flushed { pauli_gates } => {
                self.stats.non_cliffords += 1;
                self.stats.flush_gates += pauli_gates.len() as u64;
                let mut commands: Vec<PelCommand> = pauli_gates
                    .into_iter()
                    .map(|(q, p)| {
                        let gate = match p {
                            Pauli::X => Gate::X,
                            Pauli::Y => Gate::Y,
                            Pauli::Z => Gate::Z,
                            Pauli::I => Gate::I,
                        };
                        PelCommand::Execute(Operation::gate(gate, &[q]))
                    })
                    .collect();
                commands.push(PelCommand::Execute(op.clone()));
                commands
            }
        }
    }

    /// Maps a raw measurement result arriving from the PEL (step 4–5 of
    /// Fig 3.12b).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn map_measurement(&self, q: usize, raw: bool) -> bool {
        self.pfu.map_measurement(q, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_pauli::PauliRecord;

    #[test]
    fn pauli_gates_produce_no_pel_traffic() {
        let mut arb = PauliArbiter::new(2);
        assert!(arb.dispatch(&Operation::gate(Gate::X, &[0])).is_empty());
        assert!(arb.dispatch(&Operation::gate(Gate::Y, &[1])).is_empty());
        assert_eq!(arb.stats().tracked_paulis, 2);
        assert_eq!(arb.stats().forwarded(), 0);
    }

    #[test]
    fn reset_and_measure_forwarded() {
        let mut arb = PauliArbiter::new(1);
        assert_eq!(arb.dispatch(&Operation::prep(0)).len(), 1);
        assert_eq!(arb.dispatch(&Operation::measure(0)).len(), 1);
        assert_eq!(arb.stats().resets, 1);
        assert_eq!(arb.stats().measurements, 1);
    }

    #[test]
    fn non_clifford_stalls_and_flushes() {
        let mut arb = PauliArbiter::new(1);
        arb.dispatch(&Operation::gate(Gate::X, &[0]));
        let commands = arb.dispatch(&Operation::gate(Gate::T, &[0]));
        assert_eq!(
            commands,
            vec![
                PelCommand::Execute(Operation::gate(Gate::X, &[0])),
                PelCommand::Execute(Operation::gate(Gate::T, &[0])),
            ]
        );
        assert_eq!(arb.pfu().record(0), PauliRecord::I);
        assert_eq!(arb.stats().flush_gates, 1);
    }

    #[test]
    fn measurement_mapping_via_record() {
        let mut arb = PauliArbiter::new(1);
        arb.dispatch(&Operation::gate(Gate::X, &[0]));
        assert!(arb.map_measurement(0, false));
    }

    #[test]
    fn stats_accounting() {
        let mut arb = PauliArbiter::new(2);
        arb.dispatch(&Operation::prep(0));
        arb.dispatch(&Operation::gate(Gate::Z, &[0]));
        arb.dispatch(&Operation::gate(Gate::H, &[0]));
        arb.dispatch(&Operation::gate(Gate::T, &[0]));
        arb.dispatch(&Operation::measure(0));
        let s = arb.stats();
        assert_eq!(s.received(), 5);
        // prep + h + t + flush(1: the Z mapped to X by H... still one
        // record) + measure
        assert_eq!(s.non_cliffords, 1);
        assert!(s.forwarded() >= 4);
    }
}

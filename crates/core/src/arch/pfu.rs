use std::fmt;

use qpdo_circuit::{Gate, Operation, OperationKind};
use qpdo_pauli::{Pauli, PauliFrame, PauliRecord};

/// What the Pauli Frame Unit did with one operation (the five flows of
/// Fig 3.12).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PfuOutcome {
    /// Reset forwarded; the record was set to `I` (Fig 3.12a).
    Reset,
    /// Measurement forwarded; the eventual raw result must be inverted if
    /// `invert` is set (Fig 3.12b).
    Measure {
        /// Whether the raw result must be inverted (record held `X`/`XZ`).
        invert: bool,
    },
    /// A Pauli gate was absorbed; nothing reaches the PEL (Fig 3.12c).
    Tracked,
    /// A Clifford gate: records mapped, gate forwarded (Fig 3.12d).
    Mapped,
    /// A non-Clifford gate: the returned Pauli gates must execute on the
    /// PEL *before* the gate itself (Fig 3.12e).
    Flushed {
        /// `(qubit, gate)` pairs to execute ahead of the gate.
        pauli_gates: Vec<(usize, Pauli)>,
    },
}

/// The Pauli Frame Unit of Fig 3.11: `PF data` (2 bits per qubit) plus
/// `PF logic` (the mapping tables of Tables 3.2–3.5).
///
/// For a single SC17 logical qubit this is `2 × 17 = 34` bits of memory
/// (see [`memory_bits`](PauliFrameUnit::memory_bits)).
///
/// # Example
///
/// ```
/// use qpdo_core::arch::{PauliFrameUnit, PfuOutcome};
/// use qpdo_circuit::{Gate, Operation};
///
/// let mut pfu = PauliFrameUnit::new(17);
/// assert_eq!(pfu.memory_bits(), 34);
/// let outcome = pfu.process(&Operation::gate(Gate::X, &[3]));
/// assert_eq!(outcome, PfuOutcome::Tracked);
/// ```
#[derive(Clone, Debug)]
pub struct PauliFrameUnit {
    frame: PauliFrame,
}

impl PauliFrameUnit {
    /// A PFU over `n` physical qubits, all records `I`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PauliFrameUnit {
            frame: PauliFrame::new(n),
        }
    }

    /// The number of qubits covered.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.frame.len()
    }

    /// The classical memory footprint in bits (`2n`, Section 3.5.2).
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        2 * self.frame.len()
    }

    /// The stored Pauli frame.
    #[must_use]
    pub fn frame(&self) -> &PauliFrame {
        &self.frame
    }

    /// The record of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn record(&self, q: usize) -> PauliRecord {
        self.frame.record(q)
    }

    /// Processes one operation through the PF logic, per Table 3.1 /
    /// Fig 3.12. The caller (the arbiter) decides what to forward based
    /// on the returned [`PfuOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the operation references qubits outside the unit.
    pub fn process(&mut self, op: &Operation) -> PfuOutcome {
        let q = op.qubits();
        match op.kind() {
            OperationKind::Prep => {
                self.frame.reset(q[0]);
                PfuOutcome::Reset
            }
            OperationKind::Measure => PfuOutcome::Measure {
                invert: self.frame.measurement_flipped(q[0]),
            },
            OperationKind::Gate(gate) => match gate {
                Gate::I => PfuOutcome::Tracked,
                Gate::X => {
                    self.frame.apply_pauli(q[0], Pauli::X);
                    PfuOutcome::Tracked
                }
                Gate::Y => {
                    self.frame.apply_pauli(q[0], Pauli::Y);
                    PfuOutcome::Tracked
                }
                Gate::Z => {
                    self.frame.apply_pauli(q[0], Pauli::Z);
                    PfuOutcome::Tracked
                }
                Gate::H => {
                    self.frame.apply_h(q[0]);
                    PfuOutcome::Mapped
                }
                Gate::S => {
                    self.frame.apply_s(q[0]);
                    PfuOutcome::Mapped
                }
                Gate::Sdg => {
                    self.frame.apply_sdg(q[0]);
                    PfuOutcome::Mapped
                }
                Gate::Cnot => {
                    self.frame.apply_cnot(q[0], q[1]);
                    PfuOutcome::Mapped
                }
                Gate::Cz => {
                    self.frame.apply_cz(q[0], q[1]);
                    PfuOutcome::Mapped
                }
                Gate::Swap => {
                    self.frame.apply_swap(q[0], q[1]);
                    PfuOutcome::Mapped
                }
                Gate::T | Gate::Tdg | Gate::Toffoli => {
                    let mut pauli_gates = Vec::new();
                    for &qubit in q {
                        for p in self.frame.flush(qubit) {
                            pauli_gates.push((qubit, p));
                        }
                    }
                    PfuOutcome::Flushed { pauli_gates }
                }
            },
        }
    }

    /// Flushes the stored record of qubit `q` to `I`, returning the Pauli
    /// gates that must execute physically to compensate. This is the
    /// arbiter's deadline-miss fallback: when tracking cannot complete in
    /// time, the record is materialized as gates instead.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn flush_qubit(&mut self, q: usize) -> Vec<Pauli> {
        self.frame.flush(q)
    }

    /// Maps a raw measurement result of qubit `q` through its record
    /// (step 4 of Fig 3.12b).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn map_measurement(&self, q: usize, raw: bool) -> bool {
        self.frame.map_measurement(q, raw)
    }
}

impl fmt::Display for PauliFrameUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Pauli Frame Unit: {} qubits, {} bits of PF data",
            self.num_qubits(),
            self.memory_bits()
        )?;
        write!(f, "{}", self.frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_flow() {
        let mut pfu = PauliFrameUnit::new(2);
        pfu.process(&Operation::gate(Gate::X, &[0]));
        assert_eq!(pfu.record(0), PauliRecord::X);
        assert_eq!(pfu.process(&Operation::prep(0)), PfuOutcome::Reset);
        assert_eq!(pfu.record(0), PauliRecord::I);
    }

    #[test]
    fn measure_flow_reports_inversion() {
        let mut pfu = PauliFrameUnit::new(1);
        assert_eq!(
            pfu.process(&Operation::measure(0)),
            PfuOutcome::Measure { invert: false }
        );
        pfu.process(&Operation::gate(Gate::X, &[0]));
        assert_eq!(
            pfu.process(&Operation::measure(0)),
            PfuOutcome::Measure { invert: true }
        );
        assert!(pfu.map_measurement(0, false));
    }

    #[test]
    fn pauli_flow_never_reaches_pel() {
        let mut pfu = PauliFrameUnit::new(1);
        for gate in [Gate::I, Gate::X, Gate::Y, Gate::Z] {
            assert_eq!(
                pfu.process(&Operation::gate(gate, &[0])),
                PfuOutcome::Tracked
            );
        }
    }

    #[test]
    fn clifford_flow_maps_and_forwards() {
        let mut pfu = PauliFrameUnit::new(2);
        pfu.process(&Operation::gate(Gate::X, &[0]));
        assert_eq!(
            pfu.process(&Operation::gate(Gate::H, &[0])),
            PfuOutcome::Mapped
        );
        assert_eq!(pfu.record(0), PauliRecord::Z);
        assert_eq!(
            pfu.process(&Operation::gate(Gate::Cnot, &[0, 1])),
            PfuOutcome::Mapped
        );
    }

    #[test]
    fn non_clifford_flow_flushes() {
        let mut pfu = PauliFrameUnit::new(1);
        pfu.process(&Operation::gate(Gate::Y, &[0]));
        let outcome = pfu.process(&Operation::gate(Gate::T, &[0]));
        assert_eq!(
            outcome,
            PfuOutcome::Flushed {
                pauli_gates: vec![(0, Pauli::X), (0, Pauli::Z)]
            }
        );
        assert_eq!(pfu.record(0), PauliRecord::I);
    }

    #[test]
    fn memory_footprint() {
        assert_eq!(PauliFrameUnit::new(17).memory_bits(), 34);
        let shown = PauliFrameUnit::new(3).to_string();
        assert!(shown.contains("6 bits"));
    }
}

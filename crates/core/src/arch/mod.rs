//! Hardware-oriented model of the Quantum Control Unit of Section 3.5.
//!
//! Where the [`crate::PauliFrameLayer`] models the Pauli frame as a
//! *simulation layer*, this module models it as it would be **mapped to
//! hardware** (Figs 3.10–3.12): a [`PauliFrameUnit`] of `2n` bits of
//! memory plus mapping logic, driven by a [`PauliArbiter`] that decides,
//! per operation, what reaches the Physical Execution Layer (PEL).
//!
//! The surrounding Quantum Control Unit blocks are modelled too: the
//! [`QSymbolTable`] (logical→physical address translation), the
//! [`LogicMeasurementUnit`] (parity combination of data-qubit
//! measurements) and the [`QuantumControlUnit`] execution controller that
//! dispatches instructions to them.
//!
//! [`WindowSchedule`] captures the timing argument of Fig 3.3 and the
//! upper bound of Eq 5.12 on the LER improvement a Pauli frame can buy.

mod arbiter;
mod pfu;
mod qcu;
mod schedule;

pub use arbiter::{ArbiterStats, PauliArbiter, PelCommand};
pub use pfu::{PauliFrameUnit, PfuOutcome};
pub use qcu::{
    LogicMeasurementUnit, LogicalQubitEntry, QSymbolTable, QcuInstruction, QuantumControlUnit,
};
pub use schedule::WindowSchedule;

use std::collections::BTreeMap;

use qpdo_circuit::Operation;

use super::{PauliArbiter, PelCommand};
use crate::fault::{ClassicalFaultKind, ResultChannel};
use crate::CoreError;

/// The QEC Cycle Generator callback installed into a QCU.
pub type EsmGenerator = Box<dyn FnMut(&QSymbolTable) -> Vec<Operation>>;

/// One entry of the Q Symbol Table: where a logical qubit lives and
/// whether it is still allocated (Section 3.5.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogicalQubitEntry {
    /// Physical data-qubit addresses backing the logical qubit.
    pub data_qubits: Vec<usize>,
    /// Physical ancilla-qubit addresses used by its ESM.
    pub ancilla_qubits: Vec<usize>,
    /// Whether the logical qubit is alive.
    pub alive: bool,
}

/// The Q Symbol Table: compiler-visible (virtual) qubit addresses mapped
/// to physical locations, consulted by the Q-Address Translation module.
///
/// # Example
///
/// ```
/// use qpdo_core::arch::QSymbolTable;
///
/// let mut table = QSymbolTable::new();
/// table.allocate(0, (0..9).collect(), (9..17).collect());
/// assert_eq!(table.entry(0).unwrap().data_qubits.len(), 9);
/// assert_eq!(table.translate(0, 4), Some(4));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QSymbolTable {
    entries: BTreeMap<usize, LogicalQubitEntry>,
}

impl QSymbolTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        QSymbolTable::default()
    }

    /// Registers logical qubit `logical` over the given physical qubits.
    pub fn allocate(
        &mut self,
        logical: usize,
        data_qubits: Vec<usize>,
        ancilla_qubits: Vec<usize>,
    ) {
        self.entries.insert(
            logical,
            LogicalQubitEntry {
                data_qubits,
                ancilla_qubits,
                alive: true,
            },
        );
    }

    /// Marks a logical qubit as deallocated. Returns whether it existed.
    pub fn deallocate(&mut self, logical: usize) -> bool {
        match self.entries.get_mut(&logical) {
            Some(e) => {
                e.alive = false;
                true
            }
            None => false,
        }
    }

    /// The entry for a logical qubit, if alive.
    #[must_use]
    pub fn entry(&self, logical: usize) -> Option<&LogicalQubitEntry> {
        self.entries.get(&logical).filter(|e| e.alive)
    }

    /// Translates virtual data-qubit index `virtual_idx` of `logical` to
    /// its physical address.
    #[must_use]
    pub fn translate(&self, logical: usize, virtual_idx: usize) -> Option<usize> {
        self.entry(logical)?.data_qubits.get(virtual_idx).copied()
    }

    /// Logical qubits currently alive, in index order.
    #[must_use]
    pub fn alive(&self) -> Vec<usize> {
        self.entries
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(k, _)| *k)
            .collect()
    }
}

/// The Logic Measurement Unit (Section 3.5.1): collects data-qubit
/// measurement results and combines their parity into a logical
/// measurement result (`+1`/`-1` encoded as `false`/`true`).
#[derive(Clone, Debug, Default)]
pub struct LogicMeasurementUnit {
    pending: BTreeMap<usize, PendingLogicalMeasurement>,
}

#[derive(Clone, Debug)]
struct PendingLogicalMeasurement {
    awaiting: Vec<usize>,
    parity: bool,
}

impl LogicMeasurementUnit {
    /// A unit with no pending measurements.
    #[must_use]
    pub fn new() -> Self {
        LogicMeasurementUnit::default()
    }

    /// Arms a logical measurement of `logical` awaiting results from the
    /// given physical data qubits.
    pub fn arm(&mut self, logical: usize, data_qubits: Vec<usize>) {
        self.pending.insert(
            logical,
            PendingLogicalMeasurement {
                awaiting: data_qubits,
                parity: false,
            },
        );
    }

    /// Feeds one physical measurement result. Returns `Some((logical,
    /// outcome))` when this completes a pending logical measurement —
    /// `outcome` is `true` for logical `|1⟩` (odd parity, i.e. product
    /// `-1`).
    pub fn feed(&mut self, physical_qubit: usize, result: bool) -> Option<(usize, bool)> {
        let (&logical, entry) = self
            .pending
            .iter_mut()
            .find(|(_, p)| p.awaiting.contains(&physical_qubit))?;
        entry.awaiting.retain(|&q| q != physical_qubit);
        entry.parity ^= result;
        if entry.awaiting.is_empty() {
            let outcome = entry.parity;
            self.pending.remove(&logical);
            Some((logical, outcome))
        } else {
            None
        }
    }

    /// Whether a logical measurement of `logical` is still awaiting
    /// results.
    #[must_use]
    pub fn is_pending(&self, logical: usize) -> bool {
        self.pending.contains_key(&logical)
    }
}

/// An instruction decoded by the QCU's Execution Controller
/// (Section 3.5.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QcuInstruction {
    /// A physical gate / measurement / reset, already address-translated.
    Physical(Operation),
    /// Trigger the QEC Cycle Generator for one ESM round over the whole
    /// qubit plane (the "QEC slot" instruction).
    QecSlot,
    /// Begin a logical measurement of a logical qubit.
    LogicalMeasure {
        /// The logical qubit index.
        logical: usize,
    },
    /// Deallocate a logical qubit in the symbol table.
    Deallocate {
        /// The logical qubit index.
        logical: usize,
    },
}

/// A functional model of the Quantum Control Unit of Fig 3.10: the
/// execution controller plus the Pauli arbiter/PFU, the Q Symbol Table
/// and the Logic Measurement Unit.
///
/// The QEC Cycle Generator is supplied by the QEC code layer (e.g. the
/// SC17 crate) as a closure producing ESM operations at `QecSlot`
/// instructions.
///
/// # Example
///
/// ```
/// use qpdo_core::arch::{PelCommand, QcuInstruction, QuantumControlUnit};
/// use qpdo_circuit::{Gate, Operation};
///
/// let mut qcu = QuantumControlUnit::new(17);
/// qcu.symbol_table_mut().allocate(0, (0..9).collect(), (9..17).collect());
/// // Pauli gates vanish into the frame:
/// let pel = qcu
///     .issue(QcuInstruction::Physical(Operation::gate(Gate::X, &[2])))
///     .unwrap();
/// assert!(pel.is_empty());
/// ```
pub struct QuantumControlUnit {
    arbiter: PauliArbiter,
    symbol_table: QSymbolTable,
    lmu: LogicMeasurementUnit,
    esm_generator: Option<EsmGenerator>,
    logical_results: BTreeMap<usize, bool>,
    result_channel: Option<ResultChannel>,
    /// Per-qubit highest result sequence number accepted so far.
    last_accepted: BTreeMap<usize, u64>,
    /// Per-qubit results lost in transit (dropped or displaced by a stale
    /// replay), awaiting [`reissue_pending`](Self::reissue_pending).
    pending_lost: BTreeMap<usize, u64>,
    events: Vec<CoreError>,
}

impl std::fmt::Debug for QuantumControlUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantumControlUnit")
            .field("arbiter", &self.arbiter)
            .field("symbol_table", &self.symbol_table)
            .field("has_esm_generator", &self.esm_generator.is_some())
            .field("logical_results", &self.logical_results)
            .finish_non_exhaustive()
    }
}

impl QuantumControlUnit {
    /// A QCU over `n` physical qubits, with no ESM generator installed.
    #[must_use]
    pub fn new(n: usize) -> Self {
        QuantumControlUnit {
            arbiter: PauliArbiter::new(n),
            symbol_table: QSymbolTable::new(),
            lmu: LogicMeasurementUnit::new(),
            esm_generator: None,
            logical_results: BTreeMap::new(),
            result_channel: None,
            last_accepted: BTreeMap::new(),
            pending_lost: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// Installs the QEC Cycle Generator: called at every `QecSlot`
    /// instruction with the symbol table, returning the ESM operations
    /// for the live qubit plane.
    pub fn set_esm_generator(
        &mut self,
        generator: impl FnMut(&QSymbolTable) -> Vec<Operation> + 'static,
    ) {
        self.esm_generator = Some(Box::new(generator));
    }

    /// The Pauli arbiter (and through it, the PFU).
    #[must_use]
    pub fn arbiter(&self) -> &PauliArbiter {
        &self.arbiter
    }

    /// The Q Symbol Table.
    #[must_use]
    pub fn symbol_table(&self) -> &QSymbolTable {
        &self.symbol_table
    }

    /// Mutable access to the Q Symbol Table (allocation, updates after
    /// logical Hadamard, …).
    pub fn symbol_table_mut(&mut self) -> &mut QSymbolTable {
        &mut self.symbol_table
    }

    /// Mutable access to the arbiter (budget / fault-plan configuration).
    pub fn arbiter_mut(&mut self) -> &mut PauliArbiter {
        &mut self.arbiter
    }

    /// Caps the arbiter's classical work units per time slot (each issued
    /// instruction opens a fresh slot).
    pub fn set_slot_budget(&mut self, budget: Option<u64>) {
        self.arbiter.set_slot_budget(budget);
    }

    /// Routes measurement results through a (possibly faulty)
    /// [`ResultChannel`]; the QCU then acts as the protected,
    /// sequence-checking receiver.
    pub fn set_result_channel(&mut self, channel: ResultChannel) {
        self.result_channel = Some(channel);
    }

    /// Drains the classical-fault events observed by the QCU and its
    /// arbiter (deadline misses, rejected result messages, drops).
    pub fn drain_fault_events(&mut self) -> Vec<CoreError> {
        let mut events = std::mem::take(&mut self.events);
        events.extend(self.arbiter.drain_fault_events());
        events
    }

    /// Decodes and executes one instruction, returning the PEL commands
    /// it generates. Each instruction opens a fresh real-time slot for
    /// the arbiter's budget accounting.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::QubitOutOfRange`] when an operation
    /// references qubits outside the unit.
    pub fn issue(&mut self, instruction: QcuInstruction) -> Result<Vec<PelCommand>, CoreError> {
        self.arbiter.begin_time_slot();
        match instruction {
            QcuInstruction::Physical(op) => self.arbiter.dispatch(&op),
            QcuInstruction::QecSlot => {
                let ops = match &mut self.esm_generator {
                    Some(generator) => generator(&self.symbol_table),
                    None => Vec::new(),
                };
                let mut pel = Vec::new();
                for op in &ops {
                    pel.extend(self.arbiter.dispatch(op)?);
                }
                Ok(pel)
            }
            QcuInstruction::LogicalMeasure { logical } => {
                let Some(entry) = self.symbol_table.entry(logical) else {
                    return Ok(Vec::new());
                };
                let data = entry.data_qubits.clone();
                self.lmu.arm(logical, data.clone());
                let mut pel = Vec::new();
                for &q in &data {
                    pel.extend(self.arbiter.dispatch(&Operation::measure(q))?);
                }
                Ok(pel)
            }
            QcuInstruction::Deallocate { logical } => {
                self.symbol_table.deallocate(logical);
                Ok(Vec::new())
            }
        }
    }

    /// Feeds a raw physical measurement result back from the PEL: the PFU
    /// maps it, then the Logic Measurement Unit folds it into any pending
    /// logical measurement. Returns the frame-corrected physical result.
    pub fn return_measurement(&mut self, physical_qubit: usize, raw: bool) -> bool {
        let mapped = self.arbiter.map_measurement(physical_qubit, raw);
        if let Some((logical, outcome)) = self.lmu.feed(physical_qubit, mapped) {
            self.logical_results.insert(logical, outcome);
        }
        mapped
    }

    /// Delivers a raw PEL result through the configured result channel
    /// (or directly when none is set). The QCU is the protected receiver:
    /// messages whose sequence number does not advance past the last
    /// accepted one are rejected as duplicates or stale replays, and a
    /// result lost in transit is remembered for
    /// [`reissue_pending`](Self::reissue_pending). Returns the
    /// frame-corrected results actually accepted (usually exactly one).
    pub fn deliver_measurement(&mut self, physical_qubit: usize, raw: bool) -> Vec<bool> {
        let Some(channel) = self.result_channel.as_mut() else {
            return vec![self.return_measurement(physical_qubit, raw)];
        };
        let delivered = channel.send(physical_qubit, raw);
        if delivered.is_empty() {
            *self.pending_lost.entry(physical_qubit).or_insert(0) += 1;
            self.events.push(CoreError::ClassicalFault {
                kind: ClassicalFaultKind::ResultDrop,
                qubit: Some(physical_qubit),
            });
            return Vec::new();
        }
        let mut accepted = Vec::new();
        for message in delivered {
            let last = self.last_accepted.get(&message.qubit).copied();
            if last.is_some_and(|s| message.seq <= s) {
                let kind = if last == Some(message.seq) {
                    ClassicalFaultKind::ResultDuplicate
                } else {
                    ClassicalFaultKind::ResultStale
                };
                self.events.push(CoreError::ClassicalFault {
                    kind,
                    qubit: Some(message.qubit),
                });
                continue;
            }
            self.last_accepted.insert(message.qubit, message.seq);
            accepted.push(self.return_measurement(message.qubit, message.value));
        }
        if accepted.is_empty() {
            // A stale replay displaced the fresh result: it is lost just
            // like a drop and must be reissued.
            *self.pending_lost.entry(physical_qubit).or_insert(0) += 1;
        }
        accepted
    }

    /// Whether qubit `physical_qubit` has a result lost in transit.
    #[must_use]
    pub fn has_pending_result(&self, physical_qubit: usize) -> bool {
        self.pending_lost.get(&physical_qubit).copied().unwrap_or(0) > 0
    }

    /// Recovers one lost result for `physical_qubit` by re-reading the
    /// (already collapsed) qubit: `raw` is the value the PEL reproduces.
    /// The reissue travels fault-free with a fresh sequence number.
    /// Returns the frame-corrected result, or `None` when nothing was
    /// pending.
    pub fn reissue_pending(&mut self, physical_qubit: usize, raw: bool) -> Option<bool> {
        let pending = self.pending_lost.get_mut(&physical_qubit)?;
        if *pending == 0 {
            return None;
        }
        *pending -= 1;
        let channel = self.result_channel.as_mut()?;
        let message = channel.reissue(physical_qubit, raw);
        self.last_accepted.insert(message.qubit, message.seq);
        Some(self.return_measurement(message.qubit, message.value))
    }

    /// The latest completed logical measurement result for `logical`
    /// (`true` = logical `|1⟩`).
    #[must_use]
    pub fn logical_result(&self, logical: usize) -> Option<bool> {
        self.logical_results.get(&logical).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_circuit::Gate;

    #[test]
    fn symbol_table_allocation() {
        let mut t = QSymbolTable::new();
        t.allocate(0, vec![0, 1, 2], vec![3, 4]);
        t.allocate(1, vec![5, 6, 7], vec![8]);
        assert_eq!(t.alive(), vec![0, 1]);
        assert_eq!(t.translate(1, 2), Some(7));
        assert_eq!(t.translate(1, 9), None);
        assert!(t.deallocate(0));
        assert!(t.entry(0).is_none());
        assert_eq!(t.alive(), vec![1]);
        assert!(!t.deallocate(9));
    }

    #[test]
    fn lmu_parity_combination() {
        let mut lmu = LogicMeasurementUnit::new();
        lmu.arm(0, vec![0, 1, 2]);
        assert!(lmu.is_pending(0));
        assert_eq!(lmu.feed(0, true), None);
        assert_eq!(lmu.feed(1, false), None);
        // Odd parity (one '1') -> logical |1>.
        assert_eq!(lmu.feed(2, false), Some((0, true)));
        assert!(!lmu.is_pending(0));
        // Results for unknown qubits are ignored.
        assert_eq!(lmu.feed(5, true), None);
    }

    #[test]
    fn qcu_logical_measurement_flow() {
        let mut qcu = QuantumControlUnit::new(4);
        qcu.symbol_table_mut().allocate(0, vec![0, 1, 2], vec![3]);
        let pel = qcu
            .issue(QcuInstruction::LogicalMeasure { logical: 0 })
            .unwrap();
        assert_eq!(pel.len(), 3); // three physical measurements
                                  // Return raw results: even parity -> logical |0>.
        qcu.return_measurement(0, true);
        qcu.return_measurement(1, true);
        assert_eq!(qcu.logical_result(0), None);
        qcu.return_measurement(2, false);
        assert_eq!(qcu.logical_result(0), Some(false));
    }

    #[test]
    fn qcu_pfu_maps_logical_results() {
        let mut qcu = QuantumControlUnit::new(3);
        qcu.symbol_table_mut().allocate(0, vec![0, 1, 2], vec![]);
        // Track an X on data qubit 1: its measurement result inverts,
        // flipping the logical parity.
        qcu.issue(QcuInstruction::Physical(Operation::gate(Gate::X, &[1])))
            .unwrap();
        qcu.issue(QcuInstruction::LogicalMeasure { logical: 0 })
            .unwrap();
        qcu.return_measurement(0, false);
        qcu.return_measurement(1, false); // mapped to 1 by the record
        qcu.return_measurement(2, false);
        assert_eq!(qcu.logical_result(0), Some(true));
    }

    #[test]
    fn qec_slot_uses_generator() {
        let mut qcu = QuantumControlUnit::new(2);
        qcu.symbol_table_mut().allocate(0, vec![0], vec![1]);
        qcu.set_esm_generator(|table| {
            let mut ops = Vec::new();
            for logical in table.alive() {
                let entry = table.entry(logical).unwrap();
                for &a in &entry.ancilla_qubits {
                    ops.push(Operation::prep(a));
                    ops.push(Operation::measure(a));
                }
            }
            ops
        });
        let pel = qcu.issue(QcuInstruction::QecSlot).unwrap();
        assert_eq!(pel.len(), 2);
        // Without a generator nothing happens.
        let mut bare = QuantumControlUnit::new(1);
        assert!(bare.issue(QcuInstruction::QecSlot).unwrap().is_empty());
    }

    #[test]
    fn deallocate_stops_logical_ops() {
        let mut qcu = QuantumControlUnit::new(2);
        qcu.symbol_table_mut().allocate(0, vec![0, 1], vec![]);
        qcu.issue(QcuInstruction::Deallocate { logical: 0 })
            .unwrap();
        assert!(qcu
            .issue(QcuInstruction::LogicalMeasure { logical: 0 })
            .unwrap()
            .is_empty());
    }

    #[test]
    fn direct_delivery_without_a_channel() {
        let mut qcu = QuantumControlUnit::new(1);
        assert_eq!(qcu.deliver_measurement(0, true), vec![true]);
        assert!(!qcu.has_pending_result(0));
    }

    #[test]
    fn dropped_results_are_recovered_by_reissue() {
        use crate::fault::{FaultPlan, FaultRates, ResultChannel};
        let mut rates = FaultRates::zero();
        rates.result_drop = 1.0;
        let mut qcu = QuantumControlUnit::new(2);
        qcu.set_result_channel(ResultChannel::new(FaultPlan::new(rates, 3).unwrap(), 2));
        assert!(qcu.deliver_measurement(0, true).is_empty());
        assert!(qcu.has_pending_result(0));
        let events = qcu.drain_fault_events();
        assert!(matches!(
            events[0],
            CoreError::ClassicalFault {
                kind: ClassicalFaultKind::ResultDrop,
                qubit: Some(0)
            }
        ));
        assert_eq!(qcu.reissue_pending(0, true), Some(true));
        assert!(!qcu.has_pending_result(0));
        assert_eq!(qcu.reissue_pending(0, true), None);
    }

    #[test]
    fn duplicates_are_rejected_by_sequence_check() {
        use crate::fault::{FaultPlan, FaultRates, ResultChannel};
        let mut rates = FaultRates::zero();
        rates.result_duplicate = 1.0;
        let mut qcu = QuantumControlUnit::new(1);
        qcu.set_result_channel(ResultChannel::new(FaultPlan::new(rates, 5).unwrap(), 1));
        // The duplicate arrives twice but is accepted exactly once.
        assert_eq!(qcu.deliver_measurement(0, true), vec![true]);
        assert!(!qcu.has_pending_result(0));
        let events = qcu.drain_fault_events();
        assert!(matches!(
            events[0],
            CoreError::ClassicalFault {
                kind: ClassicalFaultKind::ResultDuplicate,
                qubit: Some(0)
            }
        ));
    }

    #[test]
    fn stale_replays_are_rejected_and_recovered() {
        use crate::fault::{FaultPlan, FaultRates, ResultChannel};
        let mut rates = FaultRates::zero();
        rates.result_stale = 1.0;
        let mut qcu = QuantumControlUnit::new(1);
        qcu.set_result_channel(ResultChannel::new(FaultPlan::new(rates, 6).unwrap(), 1));
        // First send: nothing older exists, the fresh value passes.
        assert_eq!(qcu.deliver_measurement(0, false), vec![false]);
        // Second send: the old result arrives instead and is rejected;
        // the fresh value must be reissued.
        assert!(qcu.deliver_measurement(0, true).is_empty());
        assert!(qcu.has_pending_result(0));
        assert_eq!(qcu.reissue_pending(0, true), Some(true));
        // The replayed message re-carries an already-accepted sequence
        // number: rejected either way (a replay of the *latest* accepted
        // result is indistinguishable from a duplicate at the receiver).
        let events = qcu.drain_fault_events();
        assert!(matches!(
            events[0],
            CoreError::ClassicalFault { qubit: Some(0), .. }
        ));
    }

    #[test]
    fn issue_propagates_out_of_range() {
        let mut qcu = QuantumControlUnit::new(1);
        let err = qcu
            .issue(QcuInstruction::Physical(Operation::gate(Gate::H, &[4])))
            .unwrap_err();
        assert!(matches!(err, CoreError::QubitOutOfRange { qubit: 4, .. }));
    }
}

use std::fmt;

use qpdo_pauli::PauliString;
use qpdo_statevector::Complex;

/// The classical view of one qubit, per Section 4.2.2: `0`, `1`, or `x`
/// (unknown — the qubit was touched by a gate since its last
/// measurement/reset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BitState {
    /// Known `|0⟩` (after reset or a 0 measurement).
    Zero,
    /// Known `|1⟩` (after a 1 measurement).
    One,
    /// Unknown (`x` in the paper).
    #[default]
    Unknown,
}

impl BitState {
    /// The boolean value for known states, `None` for `x`.
    #[must_use]
    pub fn known(self) -> Option<bool> {
        match self {
            BitState::Zero => Some(false),
            BitState::One => Some(true),
            BitState::Unknown => None,
        }
    }
}

impl From<bool> for BitState {
    fn from(b: bool) -> Self {
        if b {
            BitState::One
        } else {
            BitState::Zero
        }
    }
}

impl fmt::Display for BitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            BitState::Zero => '0',
            BitState::One => '1',
            BitState::Unknown => 'x',
        };
        write!(f, "{c}")
    }
}

/// The binary state of every qubit in a control stack (the paper's
/// `State` shared data structure).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct State {
    bits: Vec<BitState>,
}

impl State {
    /// A state of `n` qubits, all unknown.
    #[must_use]
    pub fn new(n: usize) -> Self {
        State {
            bits: vec![BitState::Unknown; n],
        }
    }

    /// The number of qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the state covers zero qubits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Grows by `n` unknown qubits.
    pub fn grow(&mut self, n: usize) {
        self.bits.resize(self.bits.len() + n, BitState::Unknown);
    }

    /// The state of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn bit(&self, q: usize) -> BitState {
        self.bits[q]
    }

    /// Overwrites the state of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_bit(&mut self, q: usize, b: BitState) {
        self.bits[q] = b;
    }

    /// Iterates over the per-qubit states.
    pub fn iter(&self) -> impl Iterator<Item = BitState> + '_ {
        self.bits.iter().copied()
    }

    /// The measured bits of `qubits` as a ket label like `"|01⟩"`
    /// (first listed qubit leftmost), or `None` if any is unknown.
    #[must_use]
    pub fn ket_label(&self, qubits: &[usize]) -> Option<String> {
        let mut label = String::from("|");
        for &q in qubits {
            match self.bits.get(q)?.known()? {
                false => label.push('0'),
                true => label.push('1'),
            }
        }
        label.push('>');
        Some(label)
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Qubit 0 rightmost, like basis-state labels.
        for b in self.bits.iter().rev() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// A quantum-state dump from a simulation core, when supported
/// (the paper's `getquantumstate()`).
#[derive(Clone, Debug, PartialEq)]
pub enum QuantumState {
    /// Full complex amplitudes (state-vector back-end), qubit 0 =
    /// least-significant bit.
    Amplitudes(Vec<Complex>),
    /// Canonical stabilizer generators (stabilizer back-end).
    Stabilizers(Vec<PauliString>),
}

impl QuantumState {
    /// The amplitudes, if this is a state-vector dump.
    #[must_use]
    pub fn amplitudes(&self) -> Option<&[Complex]> {
        match self {
            QuantumState::Amplitudes(a) => Some(a),
            QuantumState::Stabilizers(_) => None,
        }
    }

    /// The stabilizer generators, if this is a stabilizer dump.
    #[must_use]
    pub fn stabilizers(&self) -> Option<&[PauliString]> {
        match self {
            QuantumState::Stabilizers(s) => Some(s),
            QuantumState::Amplitudes(_) => None,
        }
    }
}

impl fmt::Display for QuantumState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantumState::Amplitudes(amps) => {
                let n = amps.len().trailing_zeros() as usize;
                f.write_str(&qpdo_statevector::StateVector::format_amplitudes(
                    amps, n, 1e-9,
                ))
            }
            QuantumState::Stabilizers(gens) => {
                for g in gens {
                    writeln!(f, "{g}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitstate_conversions() {
        assert_eq!(BitState::from(true), BitState::One);
        assert_eq!(BitState::from(false), BitState::Zero);
        assert_eq!(BitState::One.known(), Some(true));
        assert_eq!(BitState::Unknown.known(), None);
    }

    #[test]
    fn state_accessors() {
        let mut s = State::new(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.bit(0), BitState::Unknown);
        s.set_bit(1, BitState::One);
        assert_eq!(s.bit(1), BitState::One);
        s.grow(2);
        assert_eq!(s.len(), 5);
        assert_eq!(s.bit(4), BitState::Unknown);
    }

    #[test]
    fn display_qubit0_rightmost() {
        let mut s = State::new(3);
        s.set_bit(0, BitState::One);
        s.set_bit(1, BitState::Zero);
        assert_eq!(s.to_string(), "x01");
    }

    #[test]
    fn ket_label() {
        let mut s = State::new(2);
        s.set_bit(0, BitState::Zero);
        s.set_bit(1, BitState::One);
        assert_eq!(s.ket_label(&[0, 1]).unwrap(), "|01>");
        assert_eq!(s.ket_label(&[1, 0]).unwrap(), "|10>");
        s.set_bit(0, BitState::Unknown);
        assert_eq!(s.ket_label(&[0, 1]), None);
        assert_eq!(s.ket_label(&[5]), None);
    }

    #[test]
    fn quantum_state_accessors() {
        let amp = QuantumState::Amplitudes(vec![Complex::ONE, Complex::ZERO]);
        assert!(amp.amplitudes().is_some());
        assert!(amp.stabilizers().is_none());
        let stab = QuantumState::Stabilizers(vec!["+Z".parse().unwrap()]);
        assert!(stab.stabilizers().is_some());
        assert!(stab.to_string().contains("+1·Z"));
        assert!(amp.to_string().contains("|0>"));
    }
}

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qpdo_circuit::{Circuit, GateKind, OperationKind, TimeSlot};

use crate::{Layer, LayerContext};

/// Shared counters recorded by a [`CounterLayer`].
///
/// Handles are cheap clones around atomics, so an experiment can keep one
/// and read it while (or after) the layer sits boxed inside a stack.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    inner: Arc<CounterCells>,
}

#[derive(Debug, Default)]
struct CounterCells {
    time_slots: AtomicU64,
    operations: AtomicU64,
    preps: AtomicU64,
    measures: AtomicU64,
    pauli_gates: AtomicU64,
    clifford_gates: AtomicU64,
    non_clifford_gates: AtomicU64,
}

impl Counters {
    /// A fresh zeroed handle.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// Time slots that passed the layer.
    #[must_use]
    pub fn time_slots(&self) -> u64 {
        self.inner.time_slots.load(Ordering::Relaxed)
    }

    /// Total operations that passed the layer.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.inner.operations.load(Ordering::Relaxed)
    }

    /// Qubit initializations.
    #[must_use]
    pub fn preps(&self) -> u64 {
        self.inner.preps.load(Ordering::Relaxed)
    }

    /// Measurements.
    #[must_use]
    pub fn measures(&self) -> u64 {
        self.inner.measures.load(Ordering::Relaxed)
    }

    /// Pauli-group gates.
    #[must_use]
    pub fn pauli_gates(&self) -> u64 {
        self.inner.pauli_gates.load(Ordering::Relaxed)
    }

    /// Clifford (non-Pauli) gates.
    #[must_use]
    pub fn clifford_gates(&self) -> u64 {
        self.inner.clifford_gates.load(Ordering::Relaxed)
    }

    /// Non-Clifford gates.
    #[must_use]
    pub fn non_clifford_gates(&self) -> u64 {
        self.inner.non_clifford_gates.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for cell in [
            &self.inner.time_slots,
            &self.inner.operations,
            &self.inner.preps,
            &self.inner.measures,
            &self.inner.pauli_gates,
            &self.inner.clifford_gates,
            &self.inner.non_clifford_gates,
        ] {
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn record_slot(&self, slot: &TimeSlot) {
        self.inner.time_slots.fetch_add(1, Ordering::Relaxed);
        self.inner
            .operations
            .fetch_add(slot.len() as u64, Ordering::Relaxed);
        for op in slot {
            let cell = match op.kind() {
                OperationKind::Prep => &self.inner.preps,
                OperationKind::Measure => &self.inner.measures,
                OperationKind::Gate(g) => match g.kind() {
                    GateKind::Pauli => &self.inner.pauli_gates,
                    GateKind::Clifford => &self.inner.clifford_gates,
                    GateKind::NonClifford => &self.inner.non_clifford_gates,
                },
            };
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A diagnostic layer that counts every time slot and operation flowing
/// past its position in the stack without modifying anything — the
/// instrumentation of Fig 5.8 used to measure what the Pauli frame saves
/// (Figs 5.25–5.26).
///
/// Diagnostic circuits in bypass mode are not counted, exactly as the
/// paper requires.
///
/// # Example
///
/// ```
/// use qpdo_core::{ChpCore, ControlStack, CounterLayer};
/// use qpdo_circuit::Circuit;
///
/// let counter = CounterLayer::new();
/// let counts = counter.counters();
/// let mut stack = ControlStack::with_seed(ChpCore::new(), 1);
/// stack.push_layer(counter);
/// stack.create_qubits(1).unwrap();
/// let mut c = Circuit::new();
/// c.h(0).measure(0);
/// stack.add(c).unwrap();
/// stack.execute().unwrap();
/// assert_eq!(counts.operations(), 2);
/// assert_eq!(counts.time_slots(), 2);
/// ```
#[derive(Debug, Default)]
pub struct CounterLayer {
    counters: Counters,
}

impl CounterLayer {
    /// A counter layer with fresh counters.
    #[must_use]
    pub fn new() -> Self {
        CounterLayer::default()
    }

    /// A cheap handle to the counters that stays valid after the layer is
    /// pushed onto a stack.
    #[must_use]
    pub fn counters(&self) -> Counters {
        self.counters.clone()
    }
}

impl Layer for CounterLayer {
    fn name(&self) -> &str {
        "counter"
    }

    fn process_circuit(&mut self, circuit: Circuit, ctx: &mut LayerContext<'_>) -> Circuit {
        if !ctx.bypass {
            for slot in circuit.slots() {
                self.counters.record_slot(slot);
            }
        }
        circuit
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::SeedableRng;

    fn ctx(rng: &mut StdRng, bypass: bool) -> LayerContext<'_> {
        LayerContext { rng, bypass }
    }

    #[test]
    fn counts_by_category() {
        let mut layer = CounterLayer::new();
        let counts = layer.counters();
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Circuit::new();
        c.prep(0).x(0).h(0).t(0).measure(0);
        let out = layer.process_circuit(c.clone(), &mut ctx(&mut rng, false));
        assert_eq!(out, c); // untouched
        assert_eq!(counts.time_slots(), 5);
        assert_eq!(counts.operations(), 5);
        assert_eq!(counts.preps(), 1);
        assert_eq!(counts.pauli_gates(), 1);
        assert_eq!(counts.clifford_gates(), 1);
        assert_eq!(counts.non_clifford_gates(), 1);
        assert_eq!(counts.measures(), 1);
    }

    #[test]
    fn bypass_mode_not_counted() {
        let mut layer = CounterLayer::new();
        let counts = layer.counters();
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Circuit::new();
        c.h(0);
        layer.process_circuit(c, &mut ctx(&mut rng, true));
        assert_eq!(counts.operations(), 0);
        assert_eq!(counts.time_slots(), 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut layer = CounterLayer::new();
        let counts = layer.counters();
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Circuit::new();
        c.h(0).h(1);
        layer.process_circuit(c, &mut ctx(&mut rng, false));
        assert!(counts.operations() > 0);
        counts.reset();
        assert_eq!(counts.operations(), 0);
    }
}

use std::any::Any;
use std::collections::VecDeque;

use qpdo_circuit::{Circuit, Gate, Operation, OperationKind, TimeSlot};
use qpdo_pauli::{Pauli, PauliFrame, PauliRecord};

use crate::{Layer, LayerContext};

/// The Pauli-frame layer: the paper's contribution, as a stack layer.
///
/// Implements exactly the execution steps of Table 3.1:
///
/// | operation | handling |
/// |---|---|
/// | reset to `\|0⟩` | forwarded; record set to `I` |
/// | measurement | forwarded; raw result mapped by the record (Table 3.2) |
/// | Pauli gate | **absorbed** into the record; never forwarded |
/// | Clifford gate | records mapped (Tables 3.4–3.5); forwarded |
/// | non-Clifford gate | records flushed as real Pauli gates first; forwarded |
///
/// Time-slot structure is preserved: filtered Pauli gates leave their slot
/// (the slot disappears if it empties — that is the schedule saving of
/// Fig 3.3), and flush gates get their own slots immediately before the
/// non-Clifford gate.
///
/// # Example
///
/// ```
/// use qpdo_core::{ChpCore, ControlStack, PauliFrameLayer};
/// use qpdo_circuit::Circuit;
///
/// let mut stack = ControlStack::with_seed(ChpCore::new(), 5);
/// stack.push_layer(PauliFrameLayer::new());
/// stack.create_qubits(1).unwrap();
/// let mut c = Circuit::new();
/// c.prep(0).x(0).measure(0);   // the X never reaches the simulator...
/// stack.add(c).unwrap();
/// stack.execute().unwrap();
/// // ...but the measured result is still flipped to 1.
/// assert_eq!(stack.state().bit(0).known(), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct PauliFrameLayer {
    frame: PauliFrame,
    /// Per-measurement pending flips, FIFO per qubit in circuit order.
    pending_flips: Vec<VecDeque<bool>>,
    /// Statistics: Pauli gates absorbed instead of executed.
    filtered_gates: u64,
    /// Statistics: time slots that emptied out entirely.
    filtered_slots: u64,
    /// Statistics: flush gates emitted for non-Clifford operations.
    flush_gates_emitted: u64,
}

impl PauliFrameLayer {
    /// A Pauli-frame layer with an empty frame.
    #[must_use]
    pub fn new() -> Self {
        PauliFrameLayer::default()
    }

    /// The current Pauli frame (for inspection and reporting).
    #[must_use]
    pub fn frame(&self) -> &PauliFrame {
        &self.frame
    }

    /// The record currently tracked for qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn record(&self, q: usize) -> PauliRecord {
        self.frame.record(q)
    }

    /// Pauli gates absorbed into the frame instead of being executed.
    #[must_use]
    pub fn filtered_gates(&self) -> u64 {
        self.filtered_gates
    }

    /// Time slots removed because every operation in them was absorbed.
    #[must_use]
    pub fn filtered_slots(&self) -> u64 {
        self.filtered_slots
    }

    /// Pauli gates emitted to flush records ahead of non-Clifford gates.
    #[must_use]
    pub fn flush_gates_emitted(&self) -> u64 {
        self.flush_gates_emitted
    }

    /// Applies the frame bookkeeping for one operation, returning what (if
    /// anything) must still execute: the flush slots to prepend, and
    /// whether the operation itself is forwarded.
    fn track(&mut self, op: &Operation) -> (Vec<TimeSlot>, bool) {
        match op.kind() {
            OperationKind::Prep => {
                self.frame.reset(op.qubits()[0]);
                (Vec::new(), true)
            }
            OperationKind::Measure => {
                let q = op.qubits()[0];
                let flip = self.frame.measurement_flipped(q);
                self.pending_flips[q].push_back(flip);
                (Vec::new(), true)
            }
            OperationKind::Gate(gate) => {
                let q = op.qubits();
                match gate {
                    Gate::I => {
                        // Identity is trivially a Pauli gate: absorbed.
                        self.filtered_gates += 1;
                        (Vec::new(), false)
                    }
                    Gate::X | Gate::Y | Gate::Z => {
                        let p = match gate {
                            Gate::X => Pauli::X,
                            Gate::Y => Pauli::Y,
                            _ => Pauli::Z,
                        };
                        self.frame.apply_pauli(q[0], p);
                        self.filtered_gates += 1;
                        (Vec::new(), false)
                    }
                    Gate::H => {
                        self.frame.apply_h(q[0]);
                        (Vec::new(), true)
                    }
                    Gate::S => {
                        self.frame.apply_s(q[0]);
                        (Vec::new(), true)
                    }
                    Gate::Sdg => {
                        self.frame.apply_sdg(q[0]);
                        (Vec::new(), true)
                    }
                    Gate::Cnot => {
                        self.frame.apply_cnot(q[0], q[1]);
                        (Vec::new(), true)
                    }
                    Gate::Cz => {
                        self.frame.apply_cz(q[0], q[1]);
                        (Vec::new(), true)
                    }
                    Gate::Swap => {
                        self.frame.apply_swap(q[0], q[1]);
                        (Vec::new(), true)
                    }
                    Gate::T | Gate::Tdg | Gate::Toffoli => (self.flush_slots(q), true),
                }
            }
        }
    }

    /// Builds the flush slots for the given qubits: one slot of `X`s and
    /// one slot of `Z`s (a qubit can need both), resetting the records.
    fn flush_slots(&mut self, qubits: &[usize]) -> Vec<TimeSlot> {
        let mut x_slot = TimeSlot::new();
        let mut z_slot = TimeSlot::new();
        for &q in qubits {
            for gate in self.frame.flush(q) {
                self.flush_gates_emitted += 1;
                let slot = match gate {
                    Pauli::X => &mut x_slot,
                    Pauli::Z => &mut z_slot,
                    _ => unreachable!("flush emits only X and Z"),
                };
                slot.push(Operation::gate(
                    match gate {
                        Pauli::X => Gate::X,
                        _ => Gate::Z,
                    },
                    &[q],
                ));
            }
        }
        [x_slot, z_slot]
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect()
    }
}

impl Layer for PauliFrameLayer {
    fn name(&self) -> &str {
        "pauli-frame"
    }

    fn on_create_qubits(&mut self, n: usize) {
        self.frame.grow(n);
        self.pending_flips
            .resize_with(self.pending_flips.len() + n, VecDeque::new);
    }

    fn process_circuit(&mut self, circuit: Circuit, _ctx: &mut LayerContext<'_>) -> Circuit {
        let mut out = Circuit::new();
        for slot in circuit.slots() {
            let mut out_slot = TimeSlot::new();
            let mut pre_slots: Vec<TimeSlot> = Vec::new();
            for op in slot {
                let (flush, forward) = self.track(op);
                pre_slots.extend(flush);
                if forward {
                    out_slot.push(op.clone());
                }
            }
            for pre in pre_slots {
                out.push_slot(pre);
            }
            if out_slot.is_empty() {
                self.filtered_slots += 1;
            } else {
                out.push_slot(out_slot);
            }
        }
        out
    }

    fn process_measurement(&mut self, qubit: usize, raw: bool) -> bool {
        let flip = self.pending_flips[qubit]
            .pop_front()
            // invariant: the layer saw the measurement on the way down,
            // so a pending flip was queued for exactly this result.
            .expect("measurement result without a tracked measurement");
        raw ^ flip
    }

    fn drain_flush(&mut self) -> Option<Circuit> {
        let gates = self.frame.flush_all();
        if gates.is_empty() {
            return None;
        }
        let mut circuit = Circuit::new();
        for (q, p) in gates {
            self.flush_gates_emitted += 1;
            let gate = match p {
                Pauli::X => Gate::X,
                Pauli::Z => Gate::Z,
                _ => unreachable!("flush emits only X and Z"),
            };
            circuit.push(Operation::gate(gate, &[q]));
        }
        Some(circuit)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::SeedableRng;

    fn process(layer: &mut PauliFrameLayer, circuit: Circuit) -> Circuit {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = LayerContext {
            rng: &mut rng,
            bypass: false,
        };
        layer.process_circuit(circuit, &mut ctx)
    }

    fn layer(n: usize) -> PauliFrameLayer {
        let mut layer = PauliFrameLayer::new();
        layer.on_create_qubits(n);
        layer
    }

    #[test]
    fn pauli_gates_are_absorbed() {
        let mut pf = layer(2);
        let mut c = Circuit::new();
        c.x(0).z(1).y(0);
        let out = process(&mut pf, c);
        assert_eq!(out.operation_count(), 0);
        assert_eq!(out.slot_count(), 0);
        assert_eq!(pf.record(0), PauliRecord::Z); // X then Y = Z (mod phase)
        assert_eq!(pf.record(1), PauliRecord::Z);
        assert_eq!(pf.filtered_gates(), 3);
        assert!(pf.filtered_slots() >= 1);
    }

    #[test]
    fn clifford_gates_forwarded_and_mapped() {
        let mut pf = layer(2);
        let mut c = Circuit::new();
        c.x(0).h(0).cnot(0, 1);
        let out = process(&mut pf, c);
        // Only H and CNOT survive.
        assert_eq!(out.operation_count(), 2);
        // X mapped through H -> Z on control; Z propagates to control only.
        assert_eq!(pf.record(0), PauliRecord::Z);
        assert_eq!(pf.record(1), PauliRecord::I);
    }

    #[test]
    fn prep_resets_record() {
        let mut pf = layer(1);
        let mut c = Circuit::new();
        c.x(0).prep(0);
        let out = process(&mut pf, c);
        assert_eq!(out.operation_count(), 1); // just the prep
        assert_eq!(pf.record(0), PauliRecord::I);
    }

    #[test]
    fn measurement_flip_snapshot() {
        let mut pf = layer(1);
        let mut c = Circuit::new();
        // Measure with an X tracked, then clear it afterwards: the flip
        // must reflect the record AT the measurement, not after.
        c.x(0).measure(0).x(0);
        let _ = process(&mut pf, c);
        assert!(pf.process_measurement(0, false));
        assert_eq!(pf.record(0), PauliRecord::I);
    }

    #[test]
    fn non_clifford_forces_flush() {
        let mut pf = layer(1);
        let mut c = Circuit::new();
        c.x(0).z(0).t(0);
        let out = process(&mut pf, c);
        // flush X slot + flush Z slot + T slot
        assert_eq!(out.slot_count(), 3);
        assert_eq!(out.operation_count(), 3);
        let gates: Vec<Gate> = out.operations().map(|o| o.as_gate().unwrap()).collect();
        assert_eq!(gates, [Gate::X, Gate::Z, Gate::T]);
        assert_eq!(pf.record(0), PauliRecord::I);
        assert_eq!(pf.flush_gates_emitted(), 2);
    }

    #[test]
    fn toffoli_flushes_all_three_qubits() {
        let mut pf = layer(3);
        let mut c = Circuit::new();
        c.x(0).z(1).x(2).z(2).toffoli(0, 1, 2);
        let out = process(&mut pf, c);
        let gates: Vec<Gate> = out.operations().map(|o| o.as_gate().unwrap()).collect();
        // One X-slot (q0, q2), one Z-slot (q1, q2), then the Toffoli.
        assert_eq!(gates, [Gate::X, Gate::X, Gate::Z, Gate::Z, Gate::Toffoli]);
        for q in 0..3 {
            assert_eq!(pf.record(q), PauliRecord::I);
        }
    }

    #[test]
    fn identity_gate_is_filtered() {
        let mut pf = layer(1);
        let mut c = Circuit::new();
        c.i(0);
        let out = process(&mut pf, c);
        assert_eq!(out.operation_count(), 0);
        assert_eq!(pf.record(0), PauliRecord::I);
    }

    #[test]
    fn drain_flush_returns_pending_gates() {
        let mut pf = layer(2);
        let mut c = Circuit::new();
        c.x(0).z(0).y(1);
        let _ = process(&mut pf, c);
        let flush = pf.drain_flush().unwrap();
        // q0 has XZ -> two gates; q1 has XZ (from Y) -> two gates.
        assert_eq!(flush.operation_count(), 4);
        assert!(pf.drain_flush().is_none());
        assert_eq!(pf.record(0), PauliRecord::I);
    }

    #[test]
    fn slot_structure_preserved_for_surviving_ops() {
        let mut pf = layer(3);
        let mut c = Circuit::new();
        // Slot 0: h q0, x q1 (filtered). Slot 1: cnot q0,q1; z q2 (filtered).
        c.h(0).x(1);
        c.cnot(0, 1);
        c.z(2);
        let out = process(&mut pf, c);
        assert_eq!(out.slot_count(), 2);
        assert_eq!(out.slots()[0].len(), 1);
        assert_eq!(out.slots()[1].len(), 1);
    }

    #[test]
    fn measurement_queue_is_fifo_per_qubit() {
        let mut pf = layer(1);
        let mut c = Circuit::new();
        c.x(0).measure(0).measure(0);
        // Second measurement sees the same X record (still tracked).
        let _ = process(&mut pf, c);
        assert!(pf.process_measurement(0, false));
        assert!(pf.process_measurement(0, false));
    }
}

//! Reusable stack layers: the Pauli-frame layer and instrumentation.

pub mod counter;
pub mod pauli_frame;
pub mod protected_pauli_frame;

use std::any::Any;
use std::collections::VecDeque;

use qpdo_circuit::{Circuit, Gate, Operation, OperationKind, TimeSlot};
use qpdo_pauli::{Pauli, PauliFrame, PauliRecord};

use crate::fault::{ClassicalFaultKind, FaultPlan, FrameBit};
use crate::{CoreError, Layer, LayerContext};

/// Protection configuration for a [`ProtectedPauliFrameLayer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameProtectionConfig {
    /// Store a parity bit (x ⊕ z) per record and scrub against it.
    pub parity: bool,
    /// Checkpoint the frame at every circuit (ESM-round) boundary and
    /// roll back + replay the journal when a scrub detects corruption.
    /// Without this, a detected fault is unrecoverable and degrades to a
    /// flush of the whole frame as physical Pauli gates.
    pub checkpoint: bool,
    /// Scrub every this many time slots (`0` = only at circuit
    /// boundaries).
    pub scrub_interval_slots: u64,
}

impl FrameProtectionConfig {
    /// Full protection: parity + per-slot scrubbing + checkpoint/rollback.
    #[must_use]
    pub fn protected() -> Self {
        FrameProtectionConfig {
            parity: true,
            checkpoint: true,
            scrub_interval_slots: 1,
        }
    }

    /// No protection at all: faults corrupt the frame silently. This is
    /// the comparison baseline for the classical-fault experiments — the
    /// tracking semantics are identical to the protected mode.
    #[must_use]
    pub fn unprotected() -> Self {
        FrameProtectionConfig {
            parity: false,
            checkpoint: false,
            scrub_interval_slots: 0,
        }
    }

    /// Detection without recovery: parity scrubbing, but no checkpoint.
    /// Detected faults degrade to a flush of the frame as gates.
    #[must_use]
    pub fn detect_only() -> Self {
        FrameProtectionConfig {
            parity: true,
            checkpoint: false,
            scrub_interval_slots: 1,
        }
    }
}

impl Default for FrameProtectionConfig {
    fn default() -> Self {
        FrameProtectionConfig::protected()
    }
}

/// Counters of the protection state machine of a
/// [`ProtectedPauliFrameLayer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameProtectionStats {
    /// Faults injected into the stored frame by the fault plan.
    pub injected: u64,
    /// Records whose parity mismatched during a scrub.
    pub detected: u64,
    /// Injected faults undone by a checkpoint rollback.
    pub recovered: u64,
    /// Injected faults that escaped recovery (silent even-weight
    /// corruption, or no checkpoint to roll back to).
    pub missed: u64,
    /// Scrub passes executed.
    pub scrubs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Rollback + journal replays performed.
    pub rollbacks: u64,
    /// Unrecoverable events degraded to a flush of the frame as gates.
    pub degraded_flushes: u64,
}

impl FrameProtectionStats {
    /// The fraction of injected faults that were recovered. `1.0` when
    /// nothing was injected.
    #[must_use]
    pub fn recovery_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.recovered as f64 / self.injected as f64
        }
    }
}

/// One frame-mutating step, journaled for checkpoint replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FrameOp {
    Reset(usize),
    Pauli(usize, Pauli),
    H(usize),
    S(usize),
    Sdg(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
    Flush(usize),
    FlushAll,
}

impl FrameOp {
    /// Applies the step to a bare frame (journal replay discards the
    /// flush gates — they already executed).
    fn replay(self, frame: &mut PauliFrame) {
        match self {
            FrameOp::Reset(q) => frame.reset(q),
            FrameOp::Pauli(q, p) => frame.apply_pauli(q, p),
            FrameOp::H(q) => frame.apply_h(q),
            FrameOp::S(q) => frame.apply_s(q),
            FrameOp::Sdg(q) => frame.apply_sdg(q),
            FrameOp::Cnot(a, b) => frame.apply_cnot(a, b),
            FrameOp::Cz(a, b) => frame.apply_cz(a, b),
            FrameOp::Swap(a, b) => frame.apply_swap(a, b),
            FrameOp::Flush(q) => {
                let _ = frame.flush(q);
            }
            FrameOp::FlushAll => {
                let _ = frame.flush_all();
            }
        }
    }

    fn touches(self) -> [Option<usize>; 2] {
        match self {
            FrameOp::Reset(q)
            | FrameOp::Pauli(q, _)
            | FrameOp::H(q)
            | FrameOp::S(q)
            | FrameOp::Sdg(q)
            | FrameOp::Flush(q) => [Some(q), None],
            FrameOp::Cnot(a, b) | FrameOp::Cz(a, b) | FrameOp::Swap(a, b) => [Some(a), Some(b)],
            FrameOp::FlushAll => [None, None],
        }
    }
}

fn record_parity(r: PauliRecord) -> bool {
    let (x, z) = r.bits();
    x ^ z
}

/// A fault-tolerant variant of
/// [`PauliFrameLayer`](crate::PauliFrameLayer): identical Table 3.1
/// tracking semantics, plus
///
/// - an optional [`FaultPlan`] injecting bit flips into the stored
///   records at every time slot,
/// - a parity bit per record and periodic **scrubbing** that detects
///   single-bit corruption,
/// - a **checkpoint** of the frame at every circuit (ESM-round) boundary
///   with a journal of frame-mutating steps, so a detected corruption
///   rolls back and replays instead of persisting,
/// - graceful **degradation**: an unrecoverable fault flushes the frame
///   as physical Pauli gates (the paper's flush semantics, Table 3.5)
///   instead of panicking, and is reported through
///   [`CoreError::ClassicalFault`] events drained with
///   [`drain_fault_events`](ProtectedPauliFrameLayer::drain_fault_events).
///
/// Under a zero-fault plan (or no plan) the layer is bit-identical to
/// `PauliFrameLayer`: same output circuits, same measurement mappings,
/// same saved-gate counters. The fault plan owns its own RNG stream, so
/// fault sampling never perturbs the stack's quantum-noise stream.
#[derive(Debug, Default)]
pub struct ProtectedPauliFrameLayer {
    frame: PauliFrame,
    /// Stored parity bit per record (x ⊕ z at last legitimate update).
    parity: Vec<bool>,
    /// Per-measurement pending flips, FIFO per qubit in circuit order.
    pending_flips: Vec<VecDeque<bool>>,
    filtered_gates: u64,
    filtered_slots: u64,
    flush_gates_emitted: u64,
    config: FrameProtectionConfig,
    plan: Option<FaultPlan>,
    checkpoint: PauliFrame,
    journal: Vec<FrameOp>,
    slots_since_scrub: u64,
    /// Injected faults not yet reconciled as recovered or missed.
    outstanding: u64,
    stats: FrameProtectionStats,
    events: Vec<CoreError>,
}

impl ProtectedPauliFrameLayer {
    /// A fully protected layer (parity + scrub + checkpoint), no faults.
    #[must_use]
    pub fn new() -> Self {
        ProtectedPauliFrameLayer::default()
    }

    /// A layer with the given protection configuration.
    #[must_use]
    pub fn with_config(config: FrameProtectionConfig) -> Self {
        ProtectedPauliFrameLayer {
            config,
            ..ProtectedPauliFrameLayer::default()
        }
    }

    /// Installs (or replaces) the fault plan driving injection.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.plan = Some(plan);
        self
    }

    /// The protection configuration.
    #[must_use]
    pub fn config(&self) -> FrameProtectionConfig {
        self.config
    }

    /// The current Pauli frame (for inspection and reporting).
    #[must_use]
    pub fn frame(&self) -> &PauliFrame {
        &self.frame
    }

    /// The record currently tracked for qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn record(&self, q: usize) -> PauliRecord {
        self.frame.record(q)
    }

    /// Pauli gates absorbed into the frame instead of being executed.
    #[must_use]
    pub fn filtered_gates(&self) -> u64 {
        self.filtered_gates
    }

    /// Time slots removed because every operation in them was absorbed.
    #[must_use]
    pub fn filtered_slots(&self) -> u64 {
        self.filtered_slots
    }

    /// Pauli gates emitted to flush records ahead of non-Clifford gates.
    #[must_use]
    pub fn flush_gates_emitted(&self) -> u64 {
        self.flush_gates_emitted
    }

    /// The protection state-machine counters.
    #[must_use]
    pub fn protection_stats(&self) -> FrameProtectionStats {
        self.stats
    }

    /// Faults injected by the plan so far (zero without a plan).
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.stats.injected
    }

    /// Drains the accumulated [`CoreError::ClassicalFault`] events. The
    /// [`Layer`] interface has no error path, so detection events queue
    /// here instead of aborting execution.
    pub fn drain_fault_events(&mut self) -> Vec<CoreError> {
        std::mem::take(&mut self.events)
    }

    /// Applies one legitimate frame mutation: frame + parity + journal.
    fn apply_frame_op(&mut self, fop: FrameOp) {
        fop.replay(&mut self.frame);
        for q in fop.touches().into_iter().flatten() {
            self.parity[q] = record_parity(self.frame.record(q));
        }
        if matches!(fop, FrameOp::FlushAll) {
            for (q, p) in self.parity.iter_mut().enumerate() {
                *p = record_parity(self.frame.record(q));
            }
        }
        if self.config.checkpoint {
            self.journal.push(fop);
        }
    }

    /// Injects this slot's frame faults from the plan (never in bypass).
    fn inject_slot_faults(&mut self) {
        let Some(plan) = self.plan.as_mut() else {
            return;
        };
        for q in 0..self.frame.len() {
            let Some(mut bit) = plan.sample_frame_bit_flip() else {
                continue;
            };
            // An unprotected frame stores no parity bit: remap so every
            // injected fault hits a real stored bit there.
            if !self.config.parity && bit == FrameBit::Parity {
                bit = FrameBit::X;
            }
            self.stats.injected += 1;
            self.outstanding += 1;
            match bit {
                FrameBit::X => {
                    let (x, z) = self.frame.record(q).bits();
                    self.frame.set_record(q, PauliRecord::from_bits(!x, z));
                }
                FrameBit::Z => {
                    let (x, z) = self.frame.record(q).bits();
                    self.frame.set_record(q, PauliRecord::from_bits(x, !z));
                }
                FrameBit::Parity => self.parity[q] = !self.parity[q],
            }
        }
    }

    /// Scrubs the frame against the stored parity bits. Returns the
    /// degradation slots to execute when corruption was detected but no
    /// checkpoint exists to roll back to (empty otherwise).
    fn scrub(&mut self) -> Vec<TimeSlot> {
        if !self.config.parity {
            return Vec::new();
        }
        self.stats.scrubs += 1;
        let corrupt: Vec<usize> = (0..self.frame.len())
            .filter(|&q| record_parity(self.frame.record(q)) != self.parity[q])
            .collect();
        if corrupt.is_empty() {
            return Vec::new();
        }
        self.stats.detected += corrupt.len() as u64;
        for &q in &corrupt {
            self.events.push(CoreError::ClassicalFault {
                kind: ClassicalFaultKind::FrameBitFlip,
                qubit: Some(q),
            });
        }
        if self.config.checkpoint {
            self.rollback();
            Vec::new()
        } else {
            self.degrade()
        }
    }

    /// Restores the checkpoint and replays the journal: the frame is
    /// exactly what legitimate tracking would have produced, undoing
    /// every fault injected since the checkpoint (detected or not).
    fn rollback(&mut self) {
        self.stats.rollbacks += 1;
        self.frame = self.checkpoint.clone();
        for fop in &self.journal {
            fop.replay(&mut self.frame);
        }
        for (q, p) in self.parity.iter_mut().enumerate() {
            *p = record_parity(self.frame.record(q));
        }
        self.stats.recovered += self.outstanding;
        self.outstanding = 0;
    }

    /// Unrecoverable degradation: flush the whole (best-effort) frame as
    /// physical Pauli gates so execution continues from a clean, known
    /// frame state instead of panicking.
    fn degrade(&mut self) -> Vec<TimeSlot> {
        self.stats.degraded_flushes += 1;
        self.stats.missed += self.outstanding;
        self.outstanding = 0;
        let mut x_slot = TimeSlot::new();
        let mut z_slot = TimeSlot::new();
        for (q, p) in self.frame.flush_all() {
            self.flush_gates_emitted += 1;
            let (gate, slot) = match p {
                Pauli::X => (Gate::X, &mut x_slot),
                _ => (Gate::Z, &mut z_slot),
            };
            slot.push(Operation::gate(gate, &[q]));
        }
        for (q, p) in self.parity.iter_mut().enumerate() {
            *p = record_parity(self.frame.record(q));
        }
        if self.config.checkpoint {
            self.journal.push(FrameOp::FlushAll);
        }
        [x_slot, z_slot]
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect()
    }

    /// Circuit (ESM-round) boundary: scrub, reconcile, checkpoint.
    fn begin_round(&mut self) -> Vec<TimeSlot> {
        let degradation = self.scrub();
        // Faults still outstanding after the scrub were silent (an even
        // number of flips per record): once the checkpoint re-snapshots
        // they are baked in for good.
        self.stats.missed += self.outstanding;
        self.outstanding = 0;
        if self.config.checkpoint {
            self.checkpoint = self.frame.clone();
            self.journal.clear();
            self.stats.checkpoints += 1;
        }
        self.slots_since_scrub = 0;
        degradation
    }

    /// End-of-slot bookkeeping: periodic scrub per the configured
    /// interval. Returns degradation slots, if any.
    fn end_slot(&mut self) -> Vec<TimeSlot> {
        if self.config.scrub_interval_slots == 0 {
            return Vec::new();
        }
        self.slots_since_scrub += 1;
        if self.slots_since_scrub >= self.config.scrub_interval_slots {
            self.slots_since_scrub = 0;
            self.scrub()
        } else {
            Vec::new()
        }
    }

    /// Table 3.1 bookkeeping for one operation — the same decisions as
    /// `PauliFrameLayer::track`, routed through the journal.
    fn track(&mut self, op: &Operation) -> (Vec<TimeSlot>, bool) {
        match op.kind() {
            OperationKind::Prep => {
                self.apply_frame_op(FrameOp::Reset(op.qubits()[0]));
                (Vec::new(), true)
            }
            OperationKind::Measure => {
                let q = op.qubits()[0];
                let flip = self.frame.measurement_flipped(q);
                self.pending_flips[q].push_back(flip);
                (Vec::new(), true)
            }
            OperationKind::Gate(gate) => {
                let q = op.qubits();
                match gate {
                    Gate::I => {
                        self.filtered_gates += 1;
                        (Vec::new(), false)
                    }
                    Gate::X | Gate::Y | Gate::Z => {
                        let p = match gate {
                            Gate::X => Pauli::X,
                            Gate::Y => Pauli::Y,
                            _ => Pauli::Z,
                        };
                        self.apply_frame_op(FrameOp::Pauli(q[0], p));
                        self.filtered_gates += 1;
                        (Vec::new(), false)
                    }
                    Gate::H => {
                        self.apply_frame_op(FrameOp::H(q[0]));
                        (Vec::new(), true)
                    }
                    Gate::S => {
                        self.apply_frame_op(FrameOp::S(q[0]));
                        (Vec::new(), true)
                    }
                    Gate::Sdg => {
                        self.apply_frame_op(FrameOp::Sdg(q[0]));
                        (Vec::new(), true)
                    }
                    Gate::Cnot => {
                        self.apply_frame_op(FrameOp::Cnot(q[0], q[1]));
                        (Vec::new(), true)
                    }
                    Gate::Cz => {
                        self.apply_frame_op(FrameOp::Cz(q[0], q[1]));
                        (Vec::new(), true)
                    }
                    Gate::Swap => {
                        self.apply_frame_op(FrameOp::Swap(q[0], q[1]));
                        (Vec::new(), true)
                    }
                    Gate::T | Gate::Tdg | Gate::Toffoli => (self.flush_slots(q), true),
                }
            }
        }
    }

    /// Builds the flush slots ahead of a non-Clifford gate, exactly as
    /// the unprotected layer does.
    fn flush_slots(&mut self, qubits: &[usize]) -> Vec<TimeSlot> {
        let mut x_slot = TimeSlot::new();
        let mut z_slot = TimeSlot::new();
        for &q in qubits {
            let gates = self.frame.flush(q);
            self.parity[q] = false;
            if self.config.checkpoint {
                self.journal.push(FrameOp::Flush(q));
            }
            for gate in gates {
                self.flush_gates_emitted += 1;
                let slot = match gate {
                    Pauli::X => &mut x_slot,
                    Pauli::Z => &mut z_slot,
                    _ => unreachable!("flush emits only X and Z"),
                };
                slot.push(Operation::gate(
                    match gate {
                        Pauli::X => Gate::X,
                        _ => Gate::Z,
                    },
                    &[q],
                ));
            }
        }
        [x_slot, z_slot]
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect()
    }
}

impl Layer for ProtectedPauliFrameLayer {
    fn name(&self) -> &str {
        "protected-pauli-frame"
    }

    fn on_create_qubits(&mut self, n: usize) {
        self.frame.grow(n);
        self.checkpoint.grow(n);
        self.parity.resize(self.parity.len() + n, false);
        self.pending_flips
            .resize_with(self.pending_flips.len() + n, VecDeque::new);
    }

    fn process_circuit(&mut self, circuit: Circuit, ctx: &mut LayerContext<'_>) -> Circuit {
        let mut out = Circuit::new();
        // Each circuit entering the layer is one ESM round (or a
        // diagnostic): checkpoint at its boundary.
        for pre in self.begin_round() {
            out.push_slot(pre);
        }
        for slot in circuit.slots() {
            let mut out_slot = TimeSlot::new();
            let mut pre_slots: Vec<TimeSlot> = Vec::new();
            for op in slot {
                let (flush, forward) = self.track(op);
                pre_slots.extend(flush);
                if forward {
                    out_slot.push(op.clone());
                }
            }
            for pre in pre_slots {
                out.push_slot(pre);
            }
            if out_slot.is_empty() {
                self.filtered_slots += 1;
            } else {
                out.push_slot(out_slot);
            }
            // Faults strike the stored records *between* updates (storage
            // at rest); a legitimate update rewrites record and parity
            // together and would mask anything injected before it.
            // Diagnostic (bypass) circuits are the experimenter's
            // scaffolding, not the machine under test: no injection.
            if !ctx.bypass {
                self.inject_slot_faults();
            }
            for degradation in self.end_slot() {
                out.push_slot(degradation);
            }
        }
        out
    }

    fn process_measurement(&mut self, qubit: usize, raw: bool) -> bool {
        let flip = self.pending_flips[qubit]
            .pop_front()
            // invariant: the layer saw the measurement on the way down,
            // so a pending flip was queued for exactly this result.
            .expect("measurement result without a tracked measurement");
        raw ^ flip
    }

    fn drain_flush(&mut self) -> Option<Circuit> {
        let gates = self.frame.flush_all();
        for (q, p) in self.parity.iter_mut().enumerate() {
            *p = record_parity(self.frame.record(q));
        }
        if self.config.checkpoint {
            self.journal.push(FrameOp::FlushAll);
        }
        if gates.is_empty() {
            return None;
        }
        let mut circuit = Circuit::new();
        for (q, p) in gates {
            self.flush_gates_emitted += 1;
            let gate = match p {
                Pauli::X => Gate::X,
                Pauli::Z => Gate::Z,
                _ => unreachable!("flush emits only X and Z"),
            };
            circuit.push(Operation::gate(gate, &[q]));
        }
        Some(circuit)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRates;
    use qpdo_rng::rngs::StdRng;
    use qpdo_rng::SeedableRng;

    fn process(layer: &mut ProtectedPauliFrameLayer, circuit: Circuit) -> Circuit {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = LayerContext {
            rng: &mut rng,
            bypass: false,
        };
        layer.process_circuit(circuit, &mut ctx)
    }

    fn layer(n: usize) -> ProtectedPauliFrameLayer {
        let mut layer = ProtectedPauliFrameLayer::new();
        layer.on_create_qubits(n);
        layer
    }

    fn faulty_layer(
        n: usize,
        config: FrameProtectionConfig,
        rate: f64,
    ) -> ProtectedPauliFrameLayer {
        let mut layer = ProtectedPauliFrameLayer::with_config(config);
        layer.set_fault_plan(FaultPlan::new(FaultRates::frame_only(rate), 99).unwrap());
        layer.on_create_qubits(n);
        layer
    }

    #[test]
    fn tracks_like_the_unprotected_layer() {
        let mut pf = layer(2);
        let mut c = Circuit::new();
        c.x(0).z(1).y(0);
        let out = process(&mut pf, c);
        assert_eq!(out.operation_count(), 0);
        assert_eq!(pf.record(0), PauliRecord::Z);
        assert_eq!(pf.record(1), PauliRecord::Z);
        assert_eq!(pf.filtered_gates(), 3);
    }

    #[test]
    fn clean_runs_detect_nothing() {
        let mut pf = layer(3);
        let mut c = Circuit::new();
        c.x(0).h(0).cnot(0, 1).t(2).measure(0);
        let _ = process(&mut pf, c);
        let stats = pf.protection_stats();
        assert_eq!(stats.injected, 0);
        assert_eq!(stats.detected, 0);
        assert_eq!(stats.rollbacks, 0);
        assert!(stats.scrubs > 0);
        assert!(stats.checkpoints > 0);
        assert!(pf.drain_fault_events().is_empty());
        assert_eq!(stats.recovery_fraction(), 1.0);
    }

    #[test]
    fn injected_flips_are_detected_and_rolled_back() {
        let mut pf = faulty_layer(4, FrameProtectionConfig::protected(), 1.0);
        let mut c = Circuit::new();
        c.x(0).h(1);
        let _ = process(&mut pf, c);
        let stats = pf.protection_stats();
        assert!(stats.injected > 0);
        assert!(stats.detected > 0);
        assert!(stats.rollbacks > 0);
        assert!(stats.recovered > 0);
        // After rollback + replay, the frame holds exactly the tracked X.
        assert_eq!(pf.record(0), PauliRecord::X);
        for q in 1..4 {
            assert_eq!(pf.record(q), PauliRecord::I);
        }
        assert!(!pf.drain_fault_events().is_empty());
    }

    #[test]
    fn unprotected_mode_corrupts_silently() {
        let mut pf = faulty_layer(4, FrameProtectionConfig::unprotected(), 1.0);
        let mut c = Circuit::new();
        c.h(0);
        let _ = process(&mut pf, c);
        let stats = pf.protection_stats();
        assert!(stats.injected > 0);
        assert_eq!(stats.detected, 0);
        assert_eq!(stats.recovered, 0);
        assert_eq!(stats.scrubs, 0);
        // With a per-record hit every slot, something is corrupted.
        assert!((0..4).any(|q| pf.record(q) != PauliRecord::I));
    }

    #[test]
    fn detect_only_mode_degrades_to_flush() {
        let mut pf = faulty_layer(2, FrameProtectionConfig::detect_only(), 1.0);
        let mut c = Circuit::new();
        c.h(0).h(1);
        let out = process(&mut pf, c);
        let stats = pf.protection_stats();
        assert!(stats.detected > 0);
        assert_eq!(stats.rollbacks, 0);
        assert!(stats.degraded_flushes > 0);
        // Degradation emitted the corrupted records as physical gates and
        // reset the frame to a clean, known state.
        assert!(out.operation_count() >= 2);
        let events = pf.drain_fault_events();
        assert!(events
            .iter()
            .all(|e| matches!(e, CoreError::ClassicalFault { .. })));
    }

    #[test]
    fn bypass_circuits_are_never_faulted() {
        let mut pf = faulty_layer(2, FrameProtectionConfig::protected(), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = LayerContext {
            rng: &mut rng,
            bypass: true,
        };
        let mut c = Circuit::new();
        c.x(0).h(1);
        let _ = pf.process_circuit(c, &mut ctx);
        assert_eq!(pf.protection_stats().injected, 0);
        assert_eq!(pf.record(0), PauliRecord::X);
    }

    #[test]
    fn rollback_replays_flushes_too() {
        // A non-Clifford flush inside the journaled window must survive
        // a rollback: the flushed record stays I after replay.
        let mut pf = faulty_layer(1, FrameProtectionConfig::protected(), 0.0);
        let mut c = Circuit::new();
        c.x(0).t(0);
        let out = process(&mut pf, c);
        assert_eq!(out.operation_count(), 2); // flush X + T
        pf.stats.detected = 0;
        // Corrupt manually, then scrub: replay must land on I.
        pf.frame.set_record(0, PauliRecord::Z);
        let degradation = pf.scrub();
        assert!(degradation.is_empty());
        assert_eq!(pf.record(0), PauliRecord::I);
    }

    #[test]
    fn measurement_mapping_matches_record_at_measure_time() {
        let mut pf = layer(1);
        let mut c = Circuit::new();
        c.x(0).measure(0).x(0);
        let _ = process(&mut pf, c);
        assert!(pf.process_measurement(0, false));
        assert_eq!(pf.record(0), PauliRecord::I);
    }

    #[test]
    fn drain_flush_returns_pending_gates() {
        let mut pf = layer(2);
        let mut c = Circuit::new();
        c.x(0).z(0).y(1);
        let _ = process(&mut pf, c);
        let flush = pf.drain_flush().unwrap();
        assert_eq!(flush.operation_count(), 4);
        assert!(pf.drain_flush().is_none());
        assert_eq!(pf.record(0), PauliRecord::I);
    }
}

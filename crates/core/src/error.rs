use std::fmt;

use qpdo_circuit::Gate;

use crate::fault::ClassicalFaultKind;

/// Errors produced by control stacks and simulation cores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The back-end cannot execute this gate (e.g. `T` on a stabilizer
    /// core).
    UnsupportedGate(Gate),
    /// An operation referenced a qubit outside the allocated register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of allocated qubits.
        allocated: usize,
    },
    /// No qubits have been allocated yet.
    NoQubits,
    /// The back-end cannot produce the requested quantum-state dump.
    QuantumStateUnavailable,
    /// Qubit deallocation was requested in an unsupported form.
    UnsupportedDeallocation(String),
    /// The requested register exceeds the back-end's capacity.
    RegisterTooLarge {
        /// Total qubits requested.
        requested: usize,
        /// The back-end's maximum.
        maximum: usize,
    },
    /// A classical-control fault was detected by a protection mechanism
    /// (parity scrub, sequence-numbered result channel, …).
    ClassicalFault {
        /// The fault class that was detected.
        kind: ClassicalFaultKind,
        /// The physical qubit whose classical record or result was
        /// affected, when attributable.
        qubit: Option<usize>,
    },
    /// The classical control exceeded its real-time budget for a time
    /// slot and had to fall back to flushing the frame as gates.
    DeadlineMissed {
        /// Classical work units attempted in the slot.
        used: u64,
        /// The configured per-slot budget.
        budget: u64,
    },
    /// A probability parameter was outside `[0, 1]`. The value is kept
    /// as text so the error type stays `Eq`.
    InvalidProbability {
        /// The offending value, formatted.
        value: String,
        /// What the probability parameterized.
        context: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedGate(g) => {
                write!(f, "back-end does not support the {g} gate")
            }
            CoreError::QubitOutOfRange { qubit, allocated } => {
                write!(f, "qubit {qubit} out of range ({allocated} allocated)")
            }
            CoreError::NoQubits => write!(f, "no qubits allocated"),
            CoreError::QuantumStateUnavailable => {
                write!(f, "back-end cannot report a quantum state")
            }
            CoreError::UnsupportedDeallocation(msg) => {
                write!(f, "unsupported deallocation: {msg}")
            }
            CoreError::RegisterTooLarge { requested, maximum } => {
                write!(
                    f,
                    "requested {requested} qubits, back-end maximum is {maximum}"
                )
            }
            CoreError::ClassicalFault { kind, qubit } => match qubit {
                Some(q) => write!(f, "classical fault ({kind}) on qubit {q}"),
                None => write!(f, "classical fault ({kind})"),
            },
            CoreError::DeadlineMissed { used, budget } => {
                write!(
                    f,
                    "real-time deadline missed: {used} classical work units in a slot budgeted for {budget}"
                )
            }
            CoreError::InvalidProbability { value, context } => {
                write!(f, "invalid {context} {value}: must be in [0, 1]")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Errors produced while executing a shot batch under supervision.
///
/// A *shot batch* is the unit of work of the supervised execution engine
/// (`qpdo_bench::supervisor`): a contiguous run of shots/windows with its
/// own deterministic RNG substream. Batches fail in ways an individual
/// stack operation cannot — a worker panic, a watchdog timeout, a dead
/// worker pool, or a cross-backend disagreement — so those outcomes get
/// their own error type, with [`CoreError`] embedded for the ordinary
/// stack-level failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShotError {
    /// The batch failed inside the control stack.
    Core(CoreError),
    /// The batch panicked; the payload is the captured panic message.
    Panic(String),
    /// The batch exceeded its watchdog deadline and was declared hung.
    Timeout {
        /// The configured watchdog budget, in milliseconds.
        budget_ms: u64,
    },
    /// The worker pool itself failed (e.g. threads could not be spawned).
    PoolFailure(String),
    /// Redundant cross-backend execution disagreed on the outcome.
    Divergence {
        /// Human-readable description of the first disagreement.
        detail: String,
    },
    /// The serving layer refused admission: its bounded queue is full
    /// and the job was shed instead of buffered without bound.
    Overloaded {
        /// The admission-queue depth that was already in use.
        queue_depth: usize,
    },
    /// The job was cancelled cooperatively — its deadline passed, a
    /// client withdrew it, or the service is draining for shutdown.
    Cancelled {
        /// Why the job was cancelled.
        reason: String,
    },
    /// Every eligible backend's circuit breaker is open: the job cannot
    /// be routed anywhere until a half-open probe restores a backend.
    BreakerOpen {
        /// The backends that were tried, comma-separated.
        backends: String,
    },
}

impl From<CoreError> for ShotError {
    fn from(e: CoreError) -> Self {
        ShotError::Core(e)
    }
}

impl fmt::Display for ShotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShotError::Core(e) => write!(f, "stack error: {e}"),
            ShotError::Panic(msg) => write!(f, "worker panic: {msg}"),
            ShotError::Timeout { budget_ms } => {
                write!(f, "watchdog timeout: batch exceeded {budget_ms} ms")
            }
            ShotError::PoolFailure(msg) => write!(f, "worker pool failure: {msg}"),
            ShotError::Divergence { detail } => {
                write!(f, "cross-backend divergence: {detail}")
            }
            ShotError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "overloaded: admission queue full ({queue_depth} jobs queued)"
                )
            }
            ShotError::Cancelled { reason } => write!(f, "cancelled: {reason}"),
            ShotError::BreakerOpen { backends } => {
                write!(f, "circuit breaker open for every backend ({backends})")
            }
        }
    }
}

impl std::error::Error for ShotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShotError::Core(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnsupportedGate(Gate::T).to_string(),
            "back-end does not support the t gate"
        );
        assert!(CoreError::QubitOutOfRange {
            qubit: 9,
            allocated: 4
        }
        .to_string()
        .contains("qubit 9"));
        assert!(!CoreError::NoQubits.to_string().is_empty());
    }

    #[test]
    fn classical_fault_messages() {
        let e = CoreError::ClassicalFault {
            kind: ClassicalFaultKind::FrameBitFlip,
            qubit: Some(3),
        };
        assert!(e.to_string().contains("qubit 3"));
        let e = CoreError::ClassicalFault {
            kind: ClassicalFaultKind::ResultDrop,
            qubit: None,
        };
        assert!(e.to_string().contains("classical fault"));
        let e = CoreError::DeadlineMissed { used: 3, budget: 0 };
        assert!(e.to_string().contains("deadline"));
        let e = CoreError::InvalidProbability {
            value: "1.5".to_owned(),
            context: "physical error rate",
        };
        assert!(e.to_string().contains("error rate"));
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn shot_error_messages_and_conversion() {
        let e: ShotError = CoreError::NoQubits.into();
        assert_eq!(e, ShotError::Core(CoreError::NoQubits));
        assert!(e.to_string().contains("stack error"));
        assert!(std::error::Error::source(&e).is_some());

        let e = ShotError::Panic("boom".to_owned());
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_none());

        let e = ShotError::Timeout { budget_ms: 250 };
        assert!(e.to_string().contains("250"));

        let e = ShotError::PoolFailure("spawn failed".to_owned());
        assert!(e.to_string().contains("spawn failed"));

        let e = ShotError::Divergence {
            detail: "window 3".to_owned(),
        };
        assert!(e.to_string().contains("window 3"));
    }

    #[test]
    fn serving_error_messages() {
        let e = ShotError::Overloaded { queue_depth: 256 };
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("overloaded"));

        let e = ShotError::Cancelled {
            reason: "deadline passed".to_owned(),
        };
        assert!(e.to_string().contains("deadline passed"));
        assert!(std::error::Error::source(&e).is_none());

        let e = ShotError::BreakerOpen {
            backends: "packed,reference".to_owned(),
        };
        assert!(e.to_string().contains("packed,reference"));
        assert!(e.to_string().contains("breaker"));
    }
}

use std::fmt;

use qpdo_circuit::Gate;

/// Errors produced by control stacks and simulation cores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The back-end cannot execute this gate (e.g. `T` on a stabilizer
    /// core).
    UnsupportedGate(Gate),
    /// An operation referenced a qubit outside the allocated register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of allocated qubits.
        allocated: usize,
    },
    /// No qubits have been allocated yet.
    NoQubits,
    /// The back-end cannot produce the requested quantum-state dump.
    QuantumStateUnavailable,
    /// Qubit deallocation was requested in an unsupported form.
    UnsupportedDeallocation(String),
    /// The requested register exceeds the back-end's capacity.
    RegisterTooLarge {
        /// Total qubits requested.
        requested: usize,
        /// The back-end's maximum.
        maximum: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedGate(g) => {
                write!(f, "back-end does not support the {g} gate")
            }
            CoreError::QubitOutOfRange { qubit, allocated } => {
                write!(f, "qubit {qubit} out of range ({allocated} allocated)")
            }
            CoreError::NoQubits => write!(f, "no qubits allocated"),
            CoreError::QuantumStateUnavailable => {
                write!(f, "back-end cannot report a quantum state")
            }
            CoreError::UnsupportedDeallocation(msg) => {
                write!(f, "unsupported deallocation: {msg}")
            }
            CoreError::RegisterTooLarge { requested, maximum } => {
                write!(
                    f,
                    "requested {requested} qubits, back-end maximum is {maximum}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnsupportedGate(Gate::T).to_string(),
            "back-end does not support the t gate"
        );
        assert!(CoreError::QubitOutOfRange {
            qubit: 9,
            allocated: 4
        }
        .to_string()
        .contains("qubit 9"));
        assert!(!CoreError::NoQubits.to_string().is_empty());
    }
}

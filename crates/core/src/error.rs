use std::fmt;

use qpdo_circuit::Gate;

use crate::fault::ClassicalFaultKind;

/// Errors produced by control stacks and simulation cores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The back-end cannot execute this gate (e.g. `T` on a stabilizer
    /// core).
    UnsupportedGate(Gate),
    /// An operation referenced a qubit outside the allocated register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of allocated qubits.
        allocated: usize,
    },
    /// No qubits have been allocated yet.
    NoQubits,
    /// The back-end cannot produce the requested quantum-state dump.
    QuantumStateUnavailable,
    /// Qubit deallocation was requested in an unsupported form.
    UnsupportedDeallocation(String),
    /// The requested register exceeds the back-end's capacity.
    RegisterTooLarge {
        /// Total qubits requested.
        requested: usize,
        /// The back-end's maximum.
        maximum: usize,
    },
    /// A classical-control fault was detected by a protection mechanism
    /// (parity scrub, sequence-numbered result channel, …).
    ClassicalFault {
        /// The fault class that was detected.
        kind: ClassicalFaultKind,
        /// The physical qubit whose classical record or result was
        /// affected, when attributable.
        qubit: Option<usize>,
    },
    /// The classical control exceeded its real-time budget for a time
    /// slot and had to fall back to flushing the frame as gates.
    DeadlineMissed {
        /// Classical work units attempted in the slot.
        used: u64,
        /// The configured per-slot budget.
        budget: u64,
    },
    /// A probability parameter was outside `[0, 1]`. The value is kept
    /// as text so the error type stays `Eq`.
    InvalidProbability {
        /// The offending value, formatted.
        value: String,
        /// What the probability parameterized.
        context: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedGate(g) => {
                write!(f, "back-end does not support the {g} gate")
            }
            CoreError::QubitOutOfRange { qubit, allocated } => {
                write!(f, "qubit {qubit} out of range ({allocated} allocated)")
            }
            CoreError::NoQubits => write!(f, "no qubits allocated"),
            CoreError::QuantumStateUnavailable => {
                write!(f, "back-end cannot report a quantum state")
            }
            CoreError::UnsupportedDeallocation(msg) => {
                write!(f, "unsupported deallocation: {msg}")
            }
            CoreError::RegisterTooLarge { requested, maximum } => {
                write!(
                    f,
                    "requested {requested} qubits, back-end maximum is {maximum}"
                )
            }
            CoreError::ClassicalFault { kind, qubit } => match qubit {
                Some(q) => write!(f, "classical fault ({kind}) on qubit {q}"),
                None => write!(f, "classical fault ({kind})"),
            },
            CoreError::DeadlineMissed { used, budget } => {
                write!(
                    f,
                    "real-time deadline missed: {used} classical work units in a slot budgeted for {budget}"
                )
            }
            CoreError::InvalidProbability { value, context } => {
                write!(f, "invalid {context} {value}: must be in [0, 1]")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnsupportedGate(Gate::T).to_string(),
            "back-end does not support the t gate"
        );
        assert!(CoreError::QubitOutOfRange {
            qubit: 9,
            allocated: 4
        }
        .to_string()
        .contains("qubit 9"));
        assert!(!CoreError::NoQubits.to_string().is_empty());
    }

    #[test]
    fn classical_fault_messages() {
        let e = CoreError::ClassicalFault {
            kind: ClassicalFaultKind::FrameBitFlip,
            qubit: Some(3),
        };
        assert!(e.to_string().contains("qubit 3"));
        let e = CoreError::ClassicalFault {
            kind: ClassicalFaultKind::ResultDrop,
            qubit: None,
        };
        assert!(e.to_string().contains("classical fault"));
        let e = CoreError::DeadlineMissed { used: 3, budget: 0 };
        assert!(e.to_string().contains("deadline"));
        let e = CoreError::InvalidProbability {
            value: "1.5".to_owned(),
            context: "physical error rate",
        };
        assert!(e.to_string().contains("error rate"));
        assert!(e.to_string().contains("1.5"));
    }
}

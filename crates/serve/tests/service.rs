//! In-process integration tests for the shot-service daemon: a real
//! TCP listener and journal directory, with [`qpdo_serve::daemon::serve`]
//! running on a test thread and the framed protocol client talking to
//! it. Process-level crash drills (SIGKILL and restart) live in the
//! `serve_chaos` binary; these tests cover the same invariants where a
//! process boundary is not required.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use qpdo_bench::supervisor::CancelToken;
use qpdo_serve::daemon::{serve, DaemonConfig, ServeStats};
use qpdo_serve::job::{execute, job_seed, Backend, JobKind, JobSpec};
use qpdo_serve::protocol::{Client, JobState, RejectCode, Request, Response};
use qpdo_serve::wal::{JobOutcome, WalRecord, WriteAheadLog};

const TIMEOUT: Duration = Duration::from_secs(60);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpdo-serve-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    dir
}

struct TestDaemon {
    addr: SocketAddr,
    handle: JoinHandle<std::io::Result<ServeStats>>,
}

impl TestDaemon {
    fn start(wal_dir: &std::path::Path, config: DaemonConfig) -> TestDaemon {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind test listener");
        let addr = listener.local_addr().expect("listener address");
        let wal_dir = wal_dir.to_path_buf();
        let handle = thread::spawn(move || serve(listener, &wal_dir, config));
        TestDaemon { addr, handle }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr, Some(TIMEOUT)).expect("connect to test daemon")
    }

    fn wait_terminal(&self, id: &str) -> JobState {
        let deadline = Instant::now() + TIMEOUT;
        let mut client = self.client();
        loop {
            match client
                .call(&Request::Query(id.to_owned()))
                .expect("query call")
            {
                Response::State(
                    _,
                    state @ (JobState::Done(_) | JobState::Failed(_) | JobState::Partial(_)),
                ) => {
                    return state;
                }
                Response::State(..) => {}
                other => panic!("query {id} answered {other:?}"),
            }
            assert!(Instant::now() < deadline, "job {id} never became terminal");
            thread::sleep(Duration::from_millis(20));
        }
    }

    fn drain(self) -> ServeStats {
        let response = self.client().call(&Request::Drain).expect("drain call");
        assert_eq!(response, Response::Drained);
        self.handle
            .join()
            .expect("serve thread panicked")
            .expect("serve returned an error")
    }
}

fn bell(id: &str, shots: u64) -> JobSpec {
    JobSpec {
        id: id.to_owned(),
        deadline_ms: None,
        kind: JobKind::Bell { shots },
    }
}

fn golden(seed: u64, spec: &JobSpec) -> String {
    execute(
        &spec.kind,
        spec.kind.backend_preference()[0],
        job_seed(seed, &spec.id),
        &CancelToken::new(),
    )
    .expect("golden execution")
}

#[test]
fn submit_query_duplicate_and_drain() {
    let dir = fresh_dir("roundtrip");
    let config = DaemonConfig::default();
    let seed = config.base_seed;
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    let spec = bell("bell-1", 4);
    assert_eq!(
        client.call(&Request::Submit(spec.clone())).unwrap(),
        Response::Accepted("bell-1".to_owned())
    );
    assert_eq!(
        client.call(&Request::Submit(spec.clone())).unwrap(),
        Response::Duplicate("bell-1".to_owned()),
        "an id is an idempotency key"
    );
    match client
        .call(&Request::Query("no-such-job".to_owned()))
        .unwrap()
    {
        Response::Rejected(reason) => assert_eq!(reason.code, RejectCode::UnknownJob),
        other => panic!("unknown-id query answered {other:?}"),
    }

    let JobState::Done(record) = daemon.wait_terminal("bell-1") else {
        panic!("bell-1 did not complete");
    };
    assert_eq!(record, golden(seed, &spec));

    let Response::Health(health) = client.call(&Request::Health).unwrap() else {
        panic!("no health snapshot");
    };
    assert!(health.accepting);
    assert_eq!(health.accepted, 1);
    assert_eq!(health.completed, 1);
    assert_eq!(health.duplicates, 1);

    let stats = daemon.drain();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.duplicates, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_completes_pending_and_never_reexecutes_done() {
    let dir = fresh_dir("recovery");
    let seed = DaemonConfig::default().base_seed;
    let done = bell("done-1", 3);
    let pending = bell("pending-1", 3);

    // Hand-build the journal a crashed daemon would leave behind: one
    // job completed (with a sentinel record no real execution could
    // produce) and one accepted but unfinished.
    {
        let (mut wal, _) =
            WriteAheadLog::open(&dir, WriteAheadLog::DEFAULT_MAX_SEGMENT_BYTES).unwrap();
        wal.append(&WalRecord::Accept(done.clone())).unwrap();
        wal.append(&WalRecord::Accept(pending.clone())).unwrap();
        wal.append(&WalRecord::Complete {
            id: done.id.clone(),
            outcome: JobOutcome::Done("sentinel-not-a-real-record".to_owned()),
        })
        .unwrap();
    }

    let daemon = TestDaemon::start(&dir, DaemonConfig::default());

    // The completed job answers from the journal, not a re-execution:
    // the sentinel would be replaced if it ran again.
    let JobState::Done(record) = daemon.wait_terminal("done-1") else {
        panic!("done-1 lost its terminal state");
    };
    assert_eq!(record, "sentinel-not-a-real-record");

    // The pending job re-executes deterministically.
    let JobState::Done(record) = daemon.wait_terminal("pending-1") else {
        panic!("pending-1 did not recover");
    };
    assert_eq!(record, golden(seed, &pending));

    // Resubmitting either deduplicates — accepted state survived.
    let mut client = daemon.client();
    assert_eq!(
        client.call(&Request::Submit(done)).unwrap(),
        Response::Duplicate("done-1".to_owned())
    );
    assert_eq!(
        client.call(&Request::Submit(pending)).unwrap(),
        Response::Duplicate("pending-1".to_owned())
    );

    let stats = daemon.drain();
    assert_eq!(stats.accepted, 2, "both journaled jobs count as accepted");
    assert_eq!(stats.completed, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn overload_sheds_when_the_queue_is_full() {
    let dir = fresh_dir("overload");
    let config = DaemonConfig {
        jobs: 1,
        queue_depth: 1,
        chaos_stall: Duration::from_millis(300),
        ..DaemonConfig::default()
    };
    let seed = config.base_seed;
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    let mut accepted = Vec::new();
    let mut shed = 0;
    for i in 0..6 {
        let spec = bell(&format!("burst-{i}"), 2);
        match client.call(&Request::Submit(spec.clone())).unwrap() {
            Response::Accepted(_) => accepted.push(spec),
            Response::Rejected(reason) => {
                assert_eq!(reason.code, RejectCode::Overloaded, "{reason:?}");
                shed += 1;
            }
            other => panic!("burst submit answered {other:?}"),
        }
    }
    assert!(shed >= 1, "a depth-1 queue must shed part of the burst");
    for spec in &accepted {
        let JobState::Done(record) = daemon.wait_terminal(&spec.id) else {
            panic!("{} did not complete", spec.id);
        };
        assert_eq!(record, golden(seed, spec));
    }
    let stats = daemon.drain();
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.completed, accepted.len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deadlines_cancel_stalled_jobs() {
    let dir = fresh_dir("deadline");
    let config = DaemonConfig {
        jobs: 1,
        chaos_stall: Duration::from_millis(400),
        ..DaemonConfig::default()
    };
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();
    let spec = JobSpec {
        id: "late-1".to_owned(),
        deadline_ms: Some(80),
        kind: JobKind::Bell { shots: 2 },
    };
    assert_eq!(
        client.call(&Request::Submit(spec)).unwrap(),
        Response::Accepted("late-1".to_owned())
    );
    let JobState::Failed(error) = daemon.wait_terminal("late-1") else {
        panic!("late-1 must miss its deadline");
    };
    assert!(error.contains("deadline"), "{error:?}");
    let stats = daemon.drain();
    assert_eq!(stats.failed, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sliced_ler_job_completes_end_to_end() {
    let dir = fresh_dir("sliced");
    let config = DaemonConfig::default();
    let seed = config.base_seed;
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    let spec = JobSpec {
        id: "sliced-1".to_owned(),
        deadline_ms: None,
        kind: JobKind::LerSliced {
            per: 0.01,
            kind: qpdo_surface17::experiment::LogicalErrorKind::XL,
            with_pf: true,
            target: 1,
            max_windows: 60,
            // Rounds up to one full 64-lane pass.
            shots: 50,
        },
    };
    assert_eq!(
        client.call(&Request::Submit(spec.clone())).unwrap(),
        Response::Accepted("sliced-1".to_owned())
    );
    let JobState::Done(record) = daemon.wait_terminal("sliced-1") else {
        panic!("sliced-1 did not complete");
    };
    assert_eq!(record, golden(seed, &spec));
    assert!(
        record.starts_with("64 "),
        "executed shots round up to a lane multiple: {record}"
    );
    daemon.drain();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn surface_ler_job_completes_end_to_end() {
    let dir = fresh_dir("surface");
    let config = DaemonConfig::default();
    let seed = config.base_seed;
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    let spec = JobSpec {
        id: "surface-1".to_owned(),
        deadline_ms: None,
        kind: JobKind::LerSurface {
            d: 5,
            per: 0.08,
            shots: 192,
        },
    };
    assert_eq!(
        client.call(&Request::Submit(spec.clone())).unwrap(),
        Response::Accepted("surface-1".to_owned())
    );
    let JobState::Done(record) = daemon.wait_terminal("surface-1") else {
        panic!("surface-1 did not complete");
    };
    // Service-path record equals direct execution under the job-seed
    // policy, and the decoder actually saw syndromes.
    assert_eq!(record, golden(seed, &spec));
    let fields: Vec<u64> = record
        .split_whitespace()
        .map(|t| t.parse().expect("numeric record field"))
        .collect();
    assert_eq!(fields[0], 192, "all requested shots counted: {record}");
    assert!(fields[2] > 0, "p = 0.08 must fire checks: {record}");
    daemon.drain();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn connections_over_the_cap_are_shed_and_slots_recycle() {
    let dir = fresh_dir("conncap");
    let config = DaemonConfig {
        max_conns: 2,
        ..DaemonConfig::default()
    };
    let daemon = TestDaemon::start(&dir, config);

    // Two idle connections pin both slots (their handler threads sit
    // in recv); the third is answered `overloaded` instead of getting
    // an unbounded handler thread of its own.
    let held: Vec<Client> = (0..2).map(|_| daemon.client()).collect();
    let mut third = daemon.client();
    match third.call(&Request::Health) {
        Ok(Response::Rejected(reason)) => {
            // The connection-level shed must answer `busy`, never the
            // post-dedup `overloaded`: no request was read, so no
            // dedup check ran (the router's failover keys on this).
            assert_eq!(reason.code, RejectCode::Busy, "{reason:?}");
            assert!(reason.detail.contains("overloaded"), "{reason:?}");
        }
        other => panic!("over-cap connection answered {other:?}"),
    }

    // Releasing a held connection frees its slot (the handler exits on
    // EOF and decrements the counter shortly after the close).
    drop(held);
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let mut retry = daemon.client();
        match retry.call(&Request::Health) {
            Ok(Response::Health(health)) => {
                assert!(health.accepting);
                break;
            }
            Ok(Response::Rejected(_)) if Instant::now() < deadline => {
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("recycled slot answered {other:?}"),
        }
    }

    let stats = daemon.drain();
    assert!(stats.shed >= 1, "the over-cap connection counts as shed");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn idle_connections_hit_the_server_side_timeout() {
    let dir = fresh_dir("iotimeout");
    let config = DaemonConfig {
        io_timeout: Duration::from_millis(100),
        ..DaemonConfig::default()
    };
    let daemon = TestDaemon::start(&dir, config);

    // A client that goes quiet past the timeout loses its stream …
    let mut idle = daemon.client();
    thread::sleep(Duration::from_millis(400));
    assert!(
        idle.call(&Request::Health).is_err(),
        "the server must have closed the idle stream"
    );

    // … while the daemon itself stays healthy for new connections.
    let mut fresh = daemon.client();
    match fresh.call(&Request::Health).unwrap() {
        Response::Health(health) => assert!(health.accepting),
        other => panic!("health after a timeout answered {other:?}"),
    }
    daemon.drain();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pruned_terminal_resubmit_is_answered_not_reexecuted() {
    let dir = fresh_dir("pruned-resubmit");
    // Tiny segments + retention of 1 so completions compact the first
    // job out of the journal almost immediately.
    let config = DaemonConfig {
        jobs: 1,
        max_segment_bytes: 64,
        retain_terminal: 1,
        ..DaemonConfig::default()
    };
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    // Submit → complete.
    let first = bell("pruned-1", 2);
    assert_eq!(
        client.call(&Request::Submit(first.clone())).unwrap(),
        Response::Accepted("pruned-1".to_owned())
    );
    let JobState::Done(_) = daemon.wait_terminal("pruned-1") else {
        panic!("pruned-1 did not complete");
    };

    // Compact past retention: more completions than the journal keeps.
    for i in 0..4 {
        let spec = bell(&format!("filler-{i}"), 2);
        assert_eq!(
            client.call(&Request::Submit(spec.clone())).unwrap(),
            Response::Accepted(spec.id.clone())
        );
        let JobState::Done(_) = daemon.wait_terminal(&spec.id) else {
            panic!("{} did not complete", spec.id);
        };
    }
    let stats = daemon.drain();
    assert_eq!(stats.completed, 5);

    // Restart on the compacted journal: the first job's record is gone,
    // but its id must still be recognized — resubmission is answered
    // deterministically, never silently re-executed.
    let recovery = qpdo_serve::wal::recover(&dir).expect("journal audit");
    assert!(recovery.is_consistent());
    assert!(
        recovery.was_pruned("pruned-1"),
        "retention never pruned the first job; drill setup is broken"
    );
    assert!(!recovery.jobs.iter().any(|j| j.spec.id == "pruned-1"));
    let recovered = recovery.jobs.len() as u64;

    let daemon = TestDaemon::start(&dir, DaemonConfig::default());
    let mut client = daemon.client();
    match client.call(&Request::Submit(first)).unwrap() {
        Response::Rejected(reason) => {
            assert_eq!(reason.code, RejectCode::Pruned, "{reason:?}");
            assert!(reason.detail.contains("terminal"), "{reason:?}");
        }
        other => panic!("pruned resubmit answered {other:?}"),
    }
    let stats = daemon.drain();
    assert_eq!(
        stats.accepted, recovered,
        "the pruned id must not re-enter (only journal-recovered jobs count)"
    );
    assert_eq!(stats.duplicates, 1, "the resubmit counts as a duplicate");

    // Final audit: still consistent, the pruned ledger intact.
    let recovery = qpdo_serve::wal::recover(&dir).expect("journal audit");
    assert!(recovery.is_consistent());
    assert!(recovery.was_pruned("pruned-1"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn drain_completes_inflight_and_rejects_new_with_draining() {
    let dir = fresh_dir("drain-semantics");
    let config = DaemonConfig {
        jobs: 1,
        chaos_stall: Duration::from_millis(300),
        ..DaemonConfig::default()
    };
    let seed = config.base_seed;
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    // Three in-flight jobs: one running into its stall, two queued.
    let inflight: Vec<JobSpec> = (0..3).map(|i| bell(&format!("infl-{i}"), 2)).collect();
    for spec in &inflight {
        assert_eq!(
            client.call(&Request::Submit(spec.clone())).unwrap(),
            Response::Accepted(spec.id.clone())
        );
    }

    // The drain waiter blocks on its own connection while the queue
    // finishes; the daemon keeps serving everyone else meanwhile.
    let addr = daemon.addr;
    let drainer = thread::spawn(move || {
        let mut drain_client = Client::connect(addr, Some(TIMEOUT)).expect("drain connection");
        drain_client.call(&Request::Drain).expect("drain call")
    });
    // Give the drain frame time to flip the state.
    thread::sleep(Duration::from_millis(100));

    // New work is refused with the typed post-dedup `draining` code …
    match client
        .call(&Request::Submit(bell("late-comer", 2)))
        .unwrap()
    {
        Response::Rejected(reason) => assert_eq!(reason.code, RejectCode::Draining, "{reason:?}"),
        other => panic!("submit during drain answered {other:?}"),
    }
    // … resubmitting an in-flight id still deduplicates (dedup runs
    // before the draining check — the router's rebind safety rides on
    // this order) …
    assert_eq!(
        client.call(&Request::Submit(inflight[0].clone())).unwrap(),
        Response::Duplicate(inflight[0].id.clone())
    );
    // … and queries keep answering mid-drain.
    match client
        .call(&Request::Query(inflight[2].id.clone()))
        .unwrap()
    {
        Response::State(..) => {}
        other => panic!("query during drain answered {other:?}"),
    }

    assert_eq!(
        drainer.join().expect("drain thread"),
        Response::Drained,
        "the drain waiter must be answered after the queue empties"
    );
    let stats = daemon
        .handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error");
    assert_eq!(stats.accepted, 3, "the late submission must not slip in");
    assert_eq!(stats.completed, 3, "drain must complete all in-flight jobs");
    let recovery = qpdo_serve::wal::recover(&dir).expect("journal audit");
    assert!(recovery.is_consistent());
    assert!(recovery.pending().is_empty(), "drain left pending jobs");
    for spec in &inflight {
        let journaled = recovery
            .jobs
            .iter()
            .find(|j| j.spec.id == spec.id)
            .unwrap_or_else(|| panic!("{} missing from journal", spec.id));
        assert_eq!(
            journaled.outcome,
            Some(JobOutcome::Done(golden(seed, spec))),
            "{} must complete golden through the drain",
            spec.id
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_drain_waiter_is_answered_exactly_once() {
    let dir = fresh_dir("drain-waiters");
    let config = DaemonConfig {
        jobs: 1,
        chaos_stall: Duration::from_millis(200),
        ..DaemonConfig::default()
    };
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();
    for i in 0..2 {
        let spec = bell(&format!("dw-{i}"), 2);
        assert_eq!(
            client.call(&Request::Submit(spec.clone())).unwrap(),
            Response::Accepted(spec.id)
        );
    }

    // Four concurrent drain waiters on four connections: each must get
    // exactly one `drained` reply when the queue empties — `call`
    // fails loudly on both zero replies (EOF) and a second frame left
    // in the stream (the next read would see it).
    let addr = daemon.addr;
    let waiters: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(move || {
                let mut drain_client =
                    Client::connect(addr, Some(TIMEOUT)).expect("drain connection");
                let response = drain_client.call(&Request::Drain).expect("drain call");
                // The stream must close cleanly after the single reply:
                // a duplicate wake would surface as a second frame, a
                // lost wake as this call hanging until the timeout.
                let followup = drain_client.call(&Request::Health);
                (response, followup.is_err())
            })
        })
        .collect();
    for waiter in waiters {
        let (response, closed_after) = waiter.join().expect("drain waiter");
        assert_eq!(response, Response::Drained);
        assert!(closed_after, "the stream must close after the drain reply");
    }
    let stats = daemon
        .handle
        .join()
        .expect("serve thread panicked")
        .expect("serve returned an error");
    assert_eq!(stats.completed, 2, "drain completed the in-flight jobs");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(feature = "reference")]
#[test]
fn tripped_breaker_reroutes_with_identical_results() {
    let dir = fresh_dir("breaker");
    let config = DaemonConfig {
        jobs: 1,
        chaos_backend_fail: Some((Backend::Packed, 2)),
        breaker_threshold: 1,
        // Long cooloff: the packed breaker stays open for the whole
        // test, so completion proves the reference reroute.
        breaker_cooloff: Duration::from_secs(120),
        ..DaemonConfig::default()
    };
    let seed = config.base_seed;
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    let spec = bell("reroute-1", 4);
    assert_eq!(
        client.call(&Request::Submit(spec.clone())).unwrap(),
        Response::Accepted("reroute-1".to_owned())
    );
    let JobState::Done(record) = daemon.wait_terminal("reroute-1") else {
        panic!("reroute-1 did not complete");
    };
    assert_eq!(
        record,
        golden(seed, &spec),
        "the reference backend must reproduce the packed result"
    );

    let Response::Health(health) = client.call(&Request::Health).unwrap() else {
        panic!("no health snapshot");
    };
    assert!(health.breaker_trips >= 1);
    assert!(health.reroutes >= 1);
    assert_eq!(health.breakers[Backend::Packed.index()].name(), "open");

    let stats = daemon.drain();
    assert_eq!(stats.completed, 1);
    assert!(stats.reroutes >= 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tentpole (PR 10): a deadline landing mid shot-sweep ends the job as
/// a typed anytime `partial` — completed shots, target, failures, and
/// a Wilson interval — while the `progress` verb answers live batch
/// counts before the terminal and the cached partial after it.
#[test]
fn deadline_mid_sweep_delivers_an_anytime_partial() {
    let dir = fresh_dir("partial");
    let config = DaemonConfig {
        jobs: 1,
        ..DaemonConfig::default()
    };
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    // Far too many shots for the deadline: expiry is guaranteed.
    let spec = JobSpec {
        id: "anytime-1".to_owned(),
        deadline_ms: Some(500),
        kind: JobKind::LerSurface {
            d: 11,
            per: 0.05,
            shots: 1_000_000,
        },
    };
    assert_eq!(
        client.call(&Request::Submit(spec.clone())).unwrap(),
        Response::Accepted(spec.id.clone())
    );

    // The progress verb reports live completed-batch counts mid-run.
    let poll_deadline = Instant::now() + TIMEOUT;
    loop {
        match client
            .call(&Request::Progress(spec.id.clone()))
            .expect("progress call")
        {
            Response::Progress { batches, shots, .. } => {
                if batches > 0 {
                    assert!(shots > 0, "completed batches must carry shots");
                    break;
                }
            }
            Response::State(_, state) => panic!("job went terminal early: {state:?}"),
            other => panic!("progress answered {other:?}"),
        }
        assert!(
            Instant::now() < poll_deadline,
            "no progress before deadline"
        );
        thread::sleep(Duration::from_millis(5));
    }

    let JobState::Partial(detail) = daemon.wait_terminal(&spec.id) else {
        panic!("deadlined sweep must end as a partial");
    };
    let fields: Vec<&str> = detail.split_whitespace().collect();
    assert_eq!(fields.len(), 5, "partial detail {detail:?}");
    let done_shots: u64 = fields[0].parse().expect("completed shots");
    let target: u64 = fields[1].parse().expect("target shots");
    let failures: u64 = fields[2].parse().expect("failures");
    let lo: f64 = fields[3].parse().expect("ci low");
    let hi: f64 = fields[4].parse().expect("ci high");
    assert!(done_shots > 0 && done_shots < target, "{detail}");
    assert_eq!(target, 1_000_000);
    assert!(failures <= done_shots, "{detail}");
    assert!(
        (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0,
        "{detail}"
    );

    // Post-terminal, progress answers with the cached partial state.
    match client
        .call(&Request::Progress(spec.id.clone()))
        .expect("post-terminal progress")
    {
        Response::State(_, JobState::Partial(cached)) => assert_eq!(cached, detail),
        other => panic!("post-terminal progress answered {other:?}"),
    }
    let Response::Health(health) = client.call(&Request::Health).unwrap() else {
        panic!("no health snapshot");
    };
    assert_eq!(health.partials, 1);

    let stats = daemon.drain();
    assert_eq!(stats.partials, 1);
    assert_eq!(stats.completed, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tentpole (PR 10): a daemon started on a journal holding an accepted
/// sweep plus a progress checkpoint resumes after the checkpointed
/// batches instead of from scratch — the result is byte-identical to
/// an unfaulted full run, and the `batches` execution counter proves
/// only the unfinished suffix was re-executed.
#[test]
fn restart_resumes_a_checkpointed_sweep_from_its_durable_prefix() {
    use qpdo_serve::job::execute_tracked;
    use qpdo_serve::wal::{Checkpoint, WriteAheadLog};

    let dir = fresh_dir("resume");
    let config = DaemonConfig {
        jobs: 1,
        ..DaemonConfig::default()
    };
    let seed = config.base_seed;
    let spec = JobSpec {
        id: "resume-1".to_owned(),
        deadline_ms: None,
        kind: JobKind::LerSurface {
            d: 9,
            per: 0.05,
            shots: 16384,
        },
    };
    let total_batches = 16384_u64.div_ceil(64);

    // Produce a genuine mid-run checkpoint: run the sweep in-process
    // and cancel after five batches.
    let cancel = CancelToken::new();
    let mut checkpoint: Option<Checkpoint> = None;
    let mut on_batch = |cp: &Checkpoint| {
        if cp.batches == 5 {
            cancel.cancel();
        }
        checkpoint = Some(cp.clone());
    };
    let execution = execute_tracked(
        &spec.kind,
        Backend::Packed,
        job_seed(seed, &spec.id),
        &cancel,
        None,
        &mut on_batch,
    )
    .expect("tracked prefix execution");
    assert!(
        matches!(execution, qpdo_serve::job::Execution::Stopped { .. }),
        "the cancel must stop the sweep mid-run"
    );
    let checkpoint = checkpoint.expect("five batches were reported");
    assert_eq!(checkpoint.batches, 5);

    // Hand-build the journal a crashed daemon would leave behind.
    {
        let (mut wal, _) =
            WriteAheadLog::open(&dir, WriteAheadLog::DEFAULT_MAX_SEGMENT_BYTES).unwrap();
        wal.append(&WalRecord::Accept(spec.clone())).unwrap();
        wal.append(&WalRecord::Progress {
            id: spec.id.clone(),
            checkpoint: checkpoint.clone(),
        })
        .unwrap();
    }

    let daemon = TestDaemon::start(&dir, config);
    let JobState::Done(record) = daemon.wait_terminal(&spec.id) else {
        panic!("checkpointed sweep did not complete after restart");
    };
    assert_eq!(
        record,
        golden(seed, &spec),
        "resume must be byte-identical to an unfaulted scratch run"
    );

    let stats = daemon.drain();
    assert_eq!(
        stats.batches,
        total_batches - checkpoint.batches,
        "only the suffix past the checkpoint may re-execute"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tentpole (PR 10): a failed progress append (injected ENOSPC on the
/// very first checkpoint) degrades checkpointing to off — visible in
/// health — without touching execution: the running sweep and fresh
/// submissions keep completing golden.
#[test]
fn failed_progress_append_degrades_checkpointing_not_execution() {
    let dir = fresh_dir("ckpt-enospc");
    let config = DaemonConfig {
        jobs: 1,
        progress_batches: 2,
        chaos_progress_fail: Some(0),
        ..DaemonConfig::default()
    };
    let seed = config.base_seed;
    let daemon = TestDaemon::start(&dir, config);
    let mut client = daemon.client();

    let spec = JobSpec {
        id: "enospc-1".to_owned(),
        deadline_ms: None,
        kind: JobKind::LerSurface {
            d: 5,
            per: 0.08,
            shots: 4096,
        },
    };
    assert_eq!(
        client.call(&Request::Submit(spec.clone())).unwrap(),
        Response::Accepted(spec.id.clone())
    );
    let JobState::Done(record) = daemon.wait_terminal(&spec.id) else {
        panic!("sweep must survive losing its checkpoint stream");
    };
    assert_eq!(record, golden(seed, &spec));

    let Response::Health(health) = client.call(&Request::Health).unwrap() else {
        panic!("no health snapshot");
    };
    assert!(
        !health.checkpointing,
        "a failed progress append must flip checkpointing off"
    );
    assert!(
        health.accepting,
        "checkpoint degradation is advisory, not a refusal to work"
    );

    let fresh = bell("enospc-fresh", 4);
    assert_eq!(
        client.call(&Request::Submit(fresh.clone())).unwrap(),
        Response::Accepted(fresh.id.clone())
    );
    let JobState::Done(record) = daemon.wait_terminal(&fresh.id) else {
        panic!("fresh job did not complete");
    };
    assert_eq!(record, golden(seed, &fresh));

    let stats = daemon.drain();
    assert_eq!(stats.completed, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

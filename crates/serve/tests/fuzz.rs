//! Seeded fuzz for the serving wire formats (`DESIGN.md` §12.4): the
//! line parsers ([`qpdo_serve::protocol`]) and the zero-copy frame
//! reassembler ([`qpdo_serve::frame`]). Every case is deterministic —
//! a failure reproduces from the printed seed — and the contract under
//! fuzz is always the same: **no panic, typed errors, partial input
//! resumes cleanly**.

use std::io::Cursor;

use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, SeedableRng};
use qpdo_serve::frame::{encode_frame, FrameBuf};
use qpdo_serve::protocol::{recv_line, send_line, Request, Response};

const SEED: u64 = 0x5E_EDF0_5E17;

/// Protocol vocabulary plus near-miss junk: dictionary-guided fuzz
/// reaches far deeper into the parsers than uniform noise.
const DICT: &[&str] = &[
    "submit",
    "query",
    "health",
    "drain",
    "accepted",
    "duplicate",
    "rejected",
    "state",
    "done",
    "failed",
    "drained",
    "busy",
    "overloaded",
    "draining",
    "journal",
    "degraded",
    "pruned",
    "unknown-job",
    "malformed",
    "unavailable",
    "other",
    "bell",
    "ler",
    "ler_surface",
    "rc",
    "XL",
    "ZL",
    "-",
    "0",
    "1",
    "17",
    "65535",
    "184467440737095516160",
    "-3",
    "0.5",
    "1e309",
    "NaN",
    "ok",
    "queued",
    "running",
    "partial",
    "progress",
    "queued=",
    "breakers=",
    "partials=",
    "batches=",
    "checkpoint=",
    "checkpoint=on",
    "checkpoint=off",
    "a,b",
    ":",
    "=",
    "job-1",
    "\u{1f9ea}",
    "ü",
];

fn random_line(rng: &mut StdRng) -> String {
    let tokens = rng.gen_range(0..8usize);
    let mut line = String::new();
    for i in 0..tokens {
        if i > 0 {
            line.push(if rng.gen_bool(0.9) { ' ' } else { '\t' });
        }
        if rng.gen_bool(0.7) {
            line.push_str(DICT[rng.gen_range(0..DICT.len())]);
        } else {
            for _ in 0..rng.gen_range(1..6usize) {
                line.push(char::from_u32(rng.gen_range(1..0xd7ff_u32)).unwrap_or('?'));
            }
        }
    }
    line
}

/// 20k seeded dictionary-guided lines through both line parsers:
/// parsing must never panic, only answer `Ok` or a typed `Err`.
#[test]
fn line_parsers_never_panic_on_random_lines() {
    let mut rng = StdRng::seed_from_u64(SEED);
    for case in 0..20_000 {
        let line = random_line(&mut rng);
        let request = std::panic::catch_unwind(|| Request::parse(&line).map(|_| ()));
        let response = std::panic::catch_unwind(|| Response::parse(&line).map(|_| ()));
        assert!(
            request.is_ok() && response.is_ok(),
            "case {case} (seed {SEED:#x}): parser panicked on {line:?}"
        );
    }
}

/// Every prefix of every valid wire line parses without panicking, and
/// the untruncated line still parses cleanly after the gauntlet.
#[test]
fn valid_lines_survive_truncation_at_every_boundary() {
    let lines = [
        "submit bell-1 500 bell 12",
        "submit ler-1 - ler 0.006 XL 1 2 300",
        "submit rc-1 - rc 4 30",
        "query bell-1",
        "health",
        "drain",
        "accepted bell-1",
        "duplicate bell-1",
        "rejected overloaded queue full",
        "rejected degraded",
        "state bell-1 queued",
        "done bell-1 0 1 1 0",
        "failed bell-1 deadline exceeded",
        "partial sweep-1 11264 1000000 148 0.011114 0.015319",
        "progress sweep-1",
        "progress sweep-1 176 11264 148",
        "health ok queued=1 running=2 accepted=3 completed=1 failed=0 shed=4 duplicates=0 \
         breaker_trips=1 reroutes=1 partials=1 batches=176 checkpoint=on \
         breakers=packed:closed,reference:open,statevector:half-open",
        "drained",
    ];
    for line in lines {
        for cut in 0..=line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            let prefix = &line[..cut];
            let _ = Request::parse(prefix);
            let _ = Response::parse(prefix);
        }
        assert!(
            Request::parse(line).is_ok() || Response::parse(line).is_ok(),
            "untruncated line no longer parses: {line:?}"
        );
    }
}

/// A frame stream cut into random chunk sizes — down to one byte —
/// must reassemble byte-identically no matter where the cuts land.
#[test]
fn framebuf_reassembles_any_chunking() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    for round in 0..200 {
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..8usize))
            .map(|_| (0..rng.gen_range(0..200usize)).map(|_| rng.gen()).collect())
            .collect();
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&encode_frame(payload).expect("encodable payload"));
        }
        let mut buf = FrameBuf::new();
        let mut out = Vec::new();
        let mut fed = 0;
        while fed < stream.len() {
            let chunk = rng.gen_range(1..=16usize).min(stream.len() - fed);
            buf.extend(&stream[fed..fed + chunk]);
            fed += chunk;
            while let Some(frame) = buf.next_frame().expect("clean stream never errors") {
                out.push(frame);
            }
        }
        assert_eq!(out, payloads, "round {round} (seed {:#x})", SEED ^ 1);
        assert!(!buf.has_partial(), "round {round}: bytes left after stream");
    }
}

/// One flipped byte anywhere in a frame stream: the reassembler must
/// deliver only an unbroken prefix of the original payloads and then
/// either report a typed error or wait for more input — never panic,
/// never invent a frame.
#[test]
fn framebuf_survives_single_byte_corruption() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    for round in 0..300 {
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..5usize))
            .map(|_| (0..rng.gen_range(1..60usize)).map(|_| rng.gen()).collect())
            .collect();
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&encode_frame(payload).expect("encodable payload"));
        }
        let target = rng.gen_range(0..stream.len());
        stream[target] ^= 1 << rng.gen_range(0..8u32);

        let mut buf = FrameBuf::new();
        buf.extend(&stream);
        let mut delivered = 0usize;
        // Starvation (`Ok(None)`) and typed errors both end the stream.
        while let Ok(Some(frame)) = buf.next_frame() {
            assert!(
                delivered < payloads.len() && frame == payloads[delivered],
                "round {round} (seed {:#x}): corrupted stream delivered a frame \
                 that was never sent",
                SEED ^ 2
            );
            delivered += 1;
        }
    }
}

/// Uniformly random garbage fed in random chunks: the reassembler
/// answers `Ok(None)` (needs more) or a typed error, and never panics.
#[test]
fn framebuf_never_panics_on_random_bytes() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    for _ in 0..500 {
        let mut buf = FrameBuf::new();
        'stream: for _ in 0..rng.gen_range(1..6usize) {
            let chunk: Vec<u8> = (0..rng.gen_range(1..120usize)).map(|_| rng.gen()).collect();
            buf.extend(&chunk);
            loop {
                match buf.next_frame() {
                    Ok(Some(_)) => {} // a random CRC collision; harmless
                    Ok(None) => break,
                    Err(_) => break 'stream, // typed rejection ends the connection
                }
            }
        }
    }
}

/// The blocking line transport rejects a framed non-UTF-8 payload with
/// a typed `InvalidData` error instead of panicking, and a clean
/// framed line round-trips through the same pair.
#[test]
fn recv_line_rejects_non_utf8_payloads() {
    let framed = encode_frame(&[0xff, 0xfe, 0x80]).expect("encodable payload");
    let err = recv_line(&mut Cursor::new(framed)).expect_err("non-UTF-8 payload must error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    let mut wire = Vec::new();
    send_line(&mut wire, "health").expect("send");
    assert_eq!(
        recv_line(&mut Cursor::new(wire)).expect("recv"),
        Some("health".to_owned())
    );
}

/// Truncating a framed line at every byte offset: `recv_line` answers
/// `Ok(None)` (clean EOF before a record) or a typed error — the
/// blocking transport's version of "partial frames resume cleanly".
#[test]
fn recv_line_survives_truncated_frames() {
    let mut wire = Vec::new();
    send_line(&mut wire, "submit bell-1 - bell 12").expect("send");
    for cut in 0..wire.len() {
        match recv_line(&mut Cursor::new(&wire[..cut])) {
            Ok(None) | Err(_) => {}
            Ok(Some(line)) => panic!("truncated frame at {cut} produced a line {line:?}"),
        }
    }
}

//! The shot-service daemon (`DESIGN.md` §9, §12).
//!
//! Two I/O models share one service core ([`ServiceState`] + the
//! group-committed journal):
//!
//! - [`IoModel::Event`] (default): a single nonblocking event loop
//!   ([`crate::eventloop`]) multiplexes every connection — readiness
//!   scans, per-connection frame state machines, read/write deadlines,
//!   byte-budget backpressure. Submissions journal asynchronously: the
//!   connection parks on a commit token and the ack is written only
//!   after the batch fsync completes.
//! - [`IoModel::Threaded`]: the legacy thread-per-connection model,
//!   kept as the `loadgen` A/B baseline. Handlers block on
//!   [`GroupCommit::append_sync`] instead, so both models share the
//!   same WAL-before-ack pipeline (with `--commit-batch 1
//!   --commit-interval-us 0` it degenerates to fsync-per-record).
//!
//! One dispatcher thread drains the admission queue in rounds,
//! executing each round on the supervised worker pool
//! ([`qpdo_bench::supervisor`]) with panic isolation and per-batch
//! watchdogs. All state lives in one mutex-protected [`ServiceState`]
//! signalled by a condvar; the journal is owned by the commit thread
//! ([`crate::commit`]) and every record is durable *before* the state
//! change it records becomes observable — WAL-before-ack for
//! admissions, WAL-before-result for completions. A failed commit
//! latches the daemon degraded: fresh submissions are refused with the
//! post-dedup `degraded` code, ids whose accept append failed
//! mid-commit stay ambiguous (`journal`, which routers park), and a
//! drain stops immediately instead of waiting for terminals that can
//! no longer land.
//!
//! Routing: each job kind declares a backend preference order; the
//! dispatcher picks the first backend whose circuit breaker admits the
//! request, counting a reroute when that is not the first preference.
//! A failed attempt feeds the breaker and requeues the job (bounded
//! attempts); an expired deadline cancels the round cooperatively
//! through the supervisor's [`CancelToken`] and fails the job
//! terminally.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use qpdo_bench::supervisor::{
    run_supervised_cancellable, BatchCtx, BatchSpec, CancelToken, SeedPolicy, SupervisorConfig,
};
use qpdo_core::ShotError;

use crate::breaker::CircuitBreaker;
use crate::commit::{CommitError, GroupCommit};
use crate::eventloop;
use crate::job::{execute_tracked, partial_detail, Backend, Execution, JobKind, JobSpec};
use crate::protocol::{
    recv_line, send_line, HealthSnapshot, JobState, RejectCode, Request, Response,
};
use crate::wal::{Checkpoint, JobOutcome, WalRecord, WriteAheadLog};

/// Which connection-handling architecture the daemon runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoModel {
    /// Single-threaded nonblocking event loop (the default).
    #[default]
    Event,
    /// Thread-per-connection with blocking I/O (benchmark baseline).
    Threaded,
}

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Worker threads in the supervised pool.
    pub jobs: usize,
    /// Per-batch watchdog deadline in milliseconds.
    pub watchdog_ms: u64,
    /// Base RNG seed; job seeds derive from it and the job id.
    pub base_seed: u64,
    /// Bounded admission-queue depth; submissions beyond it are shed.
    pub queue_depth: usize,
    /// Default per-job deadline applied when a submission carries none.
    pub default_deadline_ms: Option<u64>,
    /// Daemon-level attempts (across backends) before a job fails
    /// terminally.
    pub max_job_attempts: u32,
    /// Consecutive failures that trip a backend's breaker.
    pub breaker_threshold: u32,
    /// Breaker cooloff before the half-open probe.
    pub breaker_cooloff: Duration,
    /// Journal segment size bound before rotation.
    pub max_segment_bytes: u64,
    /// Terminal jobs retained through journal compaction; older ones
    /// are pruned (they lose crash-surviving dedup, but deterministic
    /// seeds keep any re-execution byte-identical).
    pub retain_terminal: usize,
    /// Bound on concurrent client connections; accepts beyond it are
    /// answered with a `busy` rejection and closed instead of spawning
    /// an unbounded handler thread each.
    pub max_conns: usize,
    /// Read/write deadline on accepted client streams
    /// ([`Duration::ZERO`] disables it): a stalled, mid-frame, or
    /// vanished client is reaped instead of pinning its connection
    /// slot forever.
    pub io_timeout: Duration,
    /// Connection-handling architecture (see [`IoModel`]).
    pub io_model: IoModel,
    /// Most records the commit thread folds into one fsync.
    pub commit_batch: usize,
    /// How long (µs) an under-full commit batch waits for stragglers
    /// before syncing anyway (0 = commit immediately).
    pub commit_interval_us: u64,
    /// Event loop only: total buffered bytes (unparsed input + pending
    /// output across all connections) above which reads pause, pushing
    /// backpressure into the peers' TCP windows instead of growing
    /// without bound.
    pub max_inflight_bytes: usize,
    /// Journal a `progress` checkpoint every this many completed
    /// batches of a resumable shot sweep (0 disables checkpointing).
    /// Checkpoints are advisory — they bound re-execution after a
    /// crash, never correctness — so pacing them trades WAL traffic
    /// against recovery compute.
    pub progress_batches: u64,
    /// Fault injection: the journal's active-segment fsync fails after
    /// this many have succeeded, forcing the degraded latch.
    pub chaos_fsync_fail: Option<u64>,
    /// Fault injection: the first `n` executions on this backend fail.
    pub chaos_backend_fail: Option<(Backend, u32)>,
    /// Fault injection: every execution stalls this long first (widens
    /// the kill window for crash drills).
    pub chaos_stall: Duration,
    /// Fault injection: progress appends fail (as if the disk ran out
    /// of space) after this many succeeded. Checkpointing degrades to
    /// off — visible as `checkpoint=off` in health — while the job
    /// itself keeps running to its normal terminal.
    pub chaos_progress_fail: Option<u64>,
    /// Fault injection: every other journaled checkpoint is corrupted
    /// (failures > shots), exercising replay's plausibility gate and
    /// the fall-back-to-previous-checkpoint path.
    pub chaos_corrupt_checkpoint: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            jobs: 2,
            watchdog_ms: 30_000,
            base_seed: 2016,
            queue_depth: 256,
            default_deadline_ms: None,
            max_job_attempts: 5,
            breaker_threshold: 3,
            breaker_cooloff: Duration::from_millis(500),
            max_segment_bytes: WriteAheadLog::DEFAULT_MAX_SEGMENT_BYTES,
            retain_terminal: WriteAheadLog::DEFAULT_RETAIN_TERMINAL,
            max_conns: 256,
            io_timeout: Duration::from_secs(30),
            io_model: IoModel::Event,
            commit_batch: 64,
            commit_interval_us: 200,
            max_inflight_bytes: 1 << 20,
            progress_batches: 8,
            chaos_fsync_fail: None,
            chaos_backend_fail: None,
            chaos_stall: Duration::ZERO,
            chaos_progress_fail: None,
            chaos_corrupt_checkpoint: false,
        }
    }
}

/// Counters reported through `health` and returned by [`serve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs accepted (including journal-recovered ones).
    pub accepted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs terminally failed.
    pub failed: u64,
    /// Jobs that delivered an anytime `Partial` result at deadline.
    pub partials: u64,
    /// Submissions shed by admission control.
    pub shed: u64,
    /// Submissions absorbed as duplicates.
    pub duplicates: u64,
    /// Jobs routed to a non-preferred backend.
    pub reroutes: u64,
    /// Shot-sweep batches executed by this process (resumed work starts
    /// past its checkpoint, so a resumed run reports strictly fewer
    /// batches than a scratch run — the crash drill's oracle).
    pub batches: u64,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    attempts: u32,
    accepted_at: Instant,
    /// A computed terminal outcome whose journal append failed: the
    /// dispatcher retries the *identical* append instead of
    /// re-executing, so the worst case on disk is a byte-identical
    /// duplicate record (which recovery absorbs), never a conflict.
    pending_outcome: Option<JobOutcome>,
    /// The newest checkpoint of this job's shot sweep: updated live by
    /// the executing worker after every batch (what the `progress`
    /// query reports), seeded from the journal at recovery (what a
    /// resumed dispatch starts from), and the prefix a deadline expiry
    /// turns into a `Partial` instead of discarding.
    progress: Option<Checkpoint>,
}

impl JobEntry {
    fn deadline(&self) -> Option<Instant> {
        self.spec
            .deadline_ms
            .map(|ms| self.accepted_at + Duration::from_millis(ms))
    }
}

pub(crate) struct ServiceState {
    jobs: HashMap<String, JobEntry>,
    queue: VecDeque<String>,
    running: usize,
    pub(crate) draining: bool,
    pub(crate) shutdown: bool,
    pub(crate) stats: ServeStats,
    breakers: [CircuitBreaker; 3],
    chaos_backend_fail: Option<(Backend, u32)>,
    /// Remaining progress appends before the injected ENOSPC fires
    /// (`None` = no injection).
    chaos_progress_fail: Option<u64>,
    /// Ids reserved by submissions whose accept record is in flight to
    /// the commit thread. They hold queue capacity (so backpressure
    /// counts them) and block a concurrent same-id submission, and a
    /// drain waits for them to resolve.
    pending_accepts: HashSet<String>,
    /// Ids whose accept append failed mid-commit: durability unknown
    /// forever, so resubmits are answered `journal` (routers park)
    /// rather than re-admitted or refused with a rebind-safe code.
    ambiguous: HashSet<String>,
    /// Ids whose terminal record is being journaled off the state lock
    /// (the dispatcher drops the lock across the group-commit wait so
    /// admissions and queries keep flowing). The claim serializes the
    /// terminal transition — first claim wins — and a drain waits for
    /// these to resolve exactly like in-flight accepts.
    pending_terminals: HashSet<String>,
}

impl ServiceState {
    pub(crate) fn health(&self, degraded: bool, checkpointing: bool) -> HealthSnapshot {
        HealthSnapshot {
            accepting: !self.draining && !self.shutdown && !degraded,
            queued: self.queue.len(),
            running: self.running,
            accepted: self.stats.accepted,
            completed: self.stats.completed,
            failed: self.stats.failed,
            partials: self.stats.partials,
            batches: self.stats.batches,
            checkpointing,
            shed: self.stats.shed,
            duplicates: self.stats.duplicates,
            breaker_trips: self.breakers.iter().map(CircuitBreaker::trips).sum(),
            reroutes: self.stats.reroutes,
            breakers: [
                self.breakers[0].state(),
                self.breakers[1].state(),
                self.breakers[2].state(),
            ],
        }
    }

    /// Whether every admission the drain must wait out has resolved
    /// (commit-parked submissions count: each will either enqueue a job
    /// or answer a rejection, and the drain decision needs to see it).
    pub(crate) fn drained(&self, degraded: bool) -> bool {
        self.pending_accepts.is_empty()
            && self.pending_terminals.is_empty()
            && (degraded || (self.queue.is_empty() && self.running == 0))
    }
}

pub(crate) struct Service {
    pub(crate) state: Mutex<ServiceState>,
    pub(crate) wake: Condvar,
    pub(crate) commit: GroupCommit,
    pub(crate) config: DaemonConfig,
    /// Whether progress checkpoints are still being journaled. Starts
    /// true when `progress_batches > 0`; a failed progress append (real
    /// or injected) flips it off for the daemon's lifetime — the
    /// degraded-but-running mode `checkpoint=off` reports in health.
    /// Checkpoints are advisory, so unlike the journal's degraded
    /// latch, losing them never stops admissions or executions.
    pub(crate) checkpointing: AtomicBool,
    /// Progress appends attempted, driving the every-other-record
    /// corruption injection.
    progress_appends: AtomicU64,
}

impl Service {
    /// Whether health should advertise live checkpointing.
    pub(crate) fn checkpointing_on(&self) -> bool {
        self.checkpointing.load(Ordering::Acquire)
    }
}

/// Runs the daemon on an already-bound listener until a client drains
/// it. Returns the final counters.
///
/// On startup the journal in `wal_dir` is replayed: completed jobs
/// become queryable results, incomplete ones are re-queued in
/// acceptance order (their deadlines restart at recovery, since wall
/// clocks do not survive a crash usefully).
///
/// # Errors
///
/// Propagates journal and listener I/O errors. An inconsistent journal
/// (duplicate terminal records) is an error: the exactly-once guarantee
/// no longer holds and the operator must intervene.
pub fn serve(
    listener: TcpListener,
    wal_dir: &Path,
    config: DaemonConfig,
) -> io::Result<ServeStats> {
    let (mut wal, recovery) = WriteAheadLog::open(wal_dir, config.max_segment_bytes)?;
    wal.set_retain_terminal(config.retain_terminal);
    wal.set_fail_sync_after(config.chaos_fsync_fail);
    if !recovery.is_consistent() {
        return Err(io::Error::other(format!(
            "journal violates exactly-once: duplicate terminals {:?}, orphaned {:?}",
            recovery.duplicate_terminals, recovery.orphaned
        )));
    }

    let now = Instant::now();
    let mut jobs = HashMap::new();
    let mut queue = VecDeque::new();
    let mut stats = ServeStats::default();
    for job in &recovery.jobs {
        stats.accepted += 1;
        let state = match &job.outcome {
            Some(JobOutcome::Done(record)) => {
                stats.completed += 1;
                JobState::Done(record.clone())
            }
            Some(JobOutcome::Failed(error)) => {
                stats.failed += 1;
                JobState::Failed(error.clone())
            }
            Some(JobOutcome::Partial(detail)) => {
                stats.partials += 1;
                JobState::Partial(detail.clone())
            }
            None => {
                queue.push_back(job.spec.id.clone());
                JobState::Queued
            }
        };
        jobs.insert(
            job.spec.id.clone(),
            JobEntry {
                spec: job.spec.clone(),
                state,
                attempts: 0,
                accepted_at: now,
                pending_outcome: None,
                // Pending jobs resume from their newest durable
                // checkpoint; terminal jobs keep theirs only as history.
                progress: job.checkpoint.clone(),
            },
        );
    }
    if !recovery.jobs.is_empty() {
        eprintln!(
            "recovered {} journaled jobs ({} pending re-execution, {} resumable)",
            recovery.jobs.len(),
            queue.len(),
            recovery.resumable().len()
        );
    }

    let breaker = || CircuitBreaker::new(config.breaker_threshold, config.breaker_cooloff);
    let commit = GroupCommit::spawn(
        wal,
        config.commit_batch,
        Duration::from_micros(config.commit_interval_us),
    );
    let service = Arc::new(Service {
        state: Mutex::new(ServiceState {
            jobs,
            queue,
            running: 0,
            draining: false,
            shutdown: false,
            stats,
            breakers: [breaker(), breaker(), breaker()],
            chaos_backend_fail: config.chaos_backend_fail,
            chaos_progress_fail: config.chaos_progress_fail,
            pending_accepts: HashSet::new(),
            ambiguous: HashSet::new(),
            pending_terminals: HashSet::new(),
        }),
        wake: Condvar::new(),
        commit,
        checkpointing: AtomicBool::new(config.progress_batches > 0),
        progress_appends: AtomicU64::new(0),
        config,
    });

    let dispatcher = {
        let service = Arc::clone(&service);
        thread::spawn(move || dispatch_loop(&service))
    };

    match service.config.io_model {
        IoModel::Event => eventloop::run(&listener, &service)?,
        IoModel::Threaded => run_threaded(&listener, &service)?,
    }

    dispatcher.join().expect("dispatcher thread panicked");
    let stats = service.state.lock().expect("state lock").stats;
    Ok(stats)
}

/// The legacy accept loop: one blocking handler thread per connection.
fn run_threaded(listener: &TcpListener, service: &Arc<Service>) -> io::Result<()> {
    let local_addr = listener.local_addr()?;
    let conns = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if service.state.lock().expect("state lock").shutdown {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Bounded concurrency: past the cap a connection is answered
        // with a `busy` rejection and closed, never left to
        // spawn an unbounded handler thread each.
        if conns.fetch_add(1, Ordering::AcqRel) >= service.config.max_conns {
            conns.fetch_sub(1, Ordering::AcqRel);
            shed_connection(service, stream);
            continue;
        }
        let service = Arc::clone(service);
        let conns = Arc::clone(&conns);
        thread::spawn(move || {
            let _ = handle_connection(&service, stream);
            conns.fetch_sub(1, Ordering::AcqRel);
        });
    }
    // `drain` sets `shutdown` and pokes the listener via `local_addr`,
    // which is what broke the loop above.
    let _ = local_addr;
    Ok(())
}

/// Best-effort `busy` rejection for a connection over the cap;
/// the short write timeout keeps a hostile peer from stalling the
/// accept loop's thread.
pub(crate) fn shed_connection(service: &Service, mut stream: TcpStream) {
    service.state.lock().expect("state lock").stats.shed += 1;
    let error = ShotError::Overloaded {
        queue_depth: service.config.max_conns,
    };
    // `busy`, never `overloaded`: this shed happens before any request
    // is read, so no dedup check ran — the code must not claim the
    // post-dedup proof that `overloaded` carries (the router would
    // otherwise treat it as license to fail a sent job over).
    let reply = Response::rejected(RejectCode::Busy, error.to_string());
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = send_line(&mut stream, &reply.encode());
}

fn handle_connection(service: &Service, mut stream: TcpStream) -> io::Result<()> {
    // Server-side stream timeouts: a client that stops reading or
    // writing mid-exchange times out instead of holding its handler
    // thread (and a connection slot) forever.
    if !service.config.io_timeout.is_zero() {
        stream.set_read_timeout(Some(service.config.io_timeout))?;
        stream.set_write_timeout(Some(service.config.io_timeout))?;
    }
    loop {
        let line = match recv_line(&mut stream) {
            Ok(None) => return Ok(()),
            Ok(Some(line)) => line,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // An idle or wedged client hit the stream timeout:
                // close quietly and release the slot.
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Corrupt frame: answer once, then hang up (resync is
                // impossible mid-stream).
                let reply =
                    Response::rejected(RejectCode::Malformed, format!("malformed frame: {e}"));
                let _ = send_line(&mut stream, &reply.encode());
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let response = match Request::parse(&line) {
            Err(reason) => Response::rejected(RejectCode::Malformed, reason),
            Ok(Request::Submit(spec)) => handle_submit(service, spec),
            Ok(Request::Query(id)) => handle_query(service, &id),
            Ok(Request::Progress(id)) => handle_progress(service, &id),
            Ok(Request::Health) => {
                let degraded = service.commit.is_degraded();
                let checkpointing = service.checkpointing_on();
                let state = service.state.lock().expect("state lock");
                Response::Health(Box::new(state.health(degraded, checkpointing)))
            }
            Ok(Request::Drain) => {
                handle_drain(service);
                Response::Drained
            }
        };
        let is_drain = response == Response::Drained;
        send_line(&mut stream, &response.encode())?;
        if is_drain {
            // Poke the accept loop so it observes `shutdown`.
            let _ = TcpStream::connect(stream.local_addr()?);
            return Ok(());
        }
    }
}

/// How a submission left [`submit_begin`].
pub(crate) enum SubmitAdmission {
    /// Answered without touching the journal.
    Reply(Response),
    /// Admission checks passed and the id is reserved: the caller must
    /// append `Accept(spec)` through the commit thread and route the
    /// result through [`submit_finish`] — on *every* path, or the
    /// reservation leaks and a drain waits forever.
    Reserved(JobSpec),
}

/// Admission checks for one submission, up to (but not including) the
/// journal append. Shared by both I/O models so the rejection-code
/// ordering stays identical.
pub(crate) fn submit_begin(service: &Service, mut spec: JobSpec) -> SubmitAdmission {
    if spec.deadline_ms.is_none() {
        spec.deadline_ms = service.config.default_deadline_ms;
    }
    let degraded = service.commit.is_degraded();
    let mut state = service.state.lock().expect("state lock");
    if state.jobs.contains_key(&spec.id) {
        state.stats.duplicates += 1;
        return SubmitAdmission::Reply(Response::Duplicate(spec.id));
    }
    if state.pending_accepts.contains(&spec.id) {
        // A same-id submission is mid-commit on another connection.
        // `busy` is deliberately pre-dedup: its outcome is unknown, so
        // the router must not take this as proof the id is not here.
        return SubmitAdmission::Reply(Response::rejected(
            RejectCode::Busy,
            format!("a submission of job {} is already in flight", spec.id),
        ));
    }
    if state.ambiguous.contains(&spec.id) {
        // An earlier accept append failed mid-commit; its bytes may or
        // may not be on disk. Only `journal` (park) is safe.
        return SubmitAdmission::Reply(Response::rejected(
            RejectCode::Journal,
            format!(
                "an earlier submission of job {} failed to journal; durability unknown",
                spec.id
            ),
        ));
    }
    // A terminal job pruned by journal retention keeps its id in the
    // pruned-id ledger: answer the resubmit deterministically instead
    // of silently re-executing under an id that already completed.
    if service.commit.was_pruned(&spec.id) {
        state.stats.duplicates += 1;
        return SubmitAdmission::Reply(Response::rejected(
            RejectCode::Pruned,
            format!(
                "job {} already reached a terminal state; \
                 its result was pruned by journal retention",
                spec.id
            ),
        ));
    }
    // The codes below are load-bearing for the fleet router: they sit
    // AFTER the dedup checks above, so `draining`, `degraded` and
    // `overloaded` are post-dedup proof that the id is not held here.
    // A new rejection added above the dedup checks must use a
    // non-post-dedup code.
    if state.draining || state.shutdown {
        return SubmitAdmission::Reply(Response::rejected(
            RejectCode::Draining,
            "draining: not accepting new jobs",
        ));
    }
    if degraded {
        return SubmitAdmission::Reply(Response::rejected(
            RejectCode::Degraded,
            "journal degraded: a commit fsync failed; restart the daemon",
        ));
    }
    if state.queue.len() + state.pending_accepts.len() >= service.config.queue_depth {
        state.stats.shed += 1;
        let error = ShotError::Overloaded {
            queue_depth: state.queue.len(),
        };
        return SubmitAdmission::Reply(Response::rejected(
            RejectCode::Overloaded,
            error.to_string(),
        ));
    }
    // Reserve the id (holding queue capacity) and journal off-lock:
    // WAL-before-ack no longer serializes admissions behind one fsync —
    // the commit thread batches every reservation in flight.
    state.pending_accepts.insert(spec.id.clone());
    SubmitAdmission::Reserved(spec)
}

/// Folds a commit result back into the state and produces the reply.
/// Must be called exactly once per [`SubmitAdmission::Reserved`].
pub(crate) fn submit_finish(
    service: &Service,
    spec: &JobSpec,
    result: Result<(), CommitError>,
) -> Response {
    let mut state = service.state.lock().expect("state lock");
    state.pending_accepts.remove(&spec.id);
    let response = match result {
        Ok(()) => {
            state.stats.accepted += 1;
            state.jobs.insert(
                spec.id.clone(),
                JobEntry {
                    spec: spec.clone(),
                    state: JobState::Queued,
                    attempts: 0,
                    accepted_at: Instant::now(),
                    pending_outcome: None,
                    progress: None,
                },
            );
            state.queue.push_back(spec.id.clone());
            Response::Accepted(spec.id.clone())
        }
        Err(CommitError::Rejected(_)) => {
            // Validation refused the accept before any byte was
            // written. The only validation an accept can fail is the
            // pruned-ledger check (a prune raced the admission), which
            // has a deterministic answer.
            state.stats.duplicates += 1;
            Response::rejected(
                RejectCode::Pruned,
                format!(
                    "job {} already reached a terminal state; \
                     its result was pruned by journal retention",
                    spec.id
                ),
            )
        }
        Err(CommitError::Unsynced(detail)) => {
            // The append died mid-commit: its bytes may be durable.
            // Latch the id ambiguous and answer `journal` (park).
            state.ambiguous.insert(spec.id.clone());
            Response::rejected(
                RejectCode::Journal,
                format!("journal write failed: {detail}"),
            )
        }
        Err(CommitError::Degraded(detail)) => {
            // Provably never written: the rebind-safe post-dedup code.
            Response::rejected(RejectCode::Degraded, detail)
        }
    };
    // Dispatcher (new work) and drain waiters (a reservation resolved)
    // both need the wake.
    service.wake.notify_all();
    response
}

fn handle_submit(service: &Service, spec: JobSpec) -> Response {
    match submit_begin(service, spec) {
        SubmitAdmission::Reply(response) => response,
        SubmitAdmission::Reserved(spec) => {
            let result = service.commit.append_sync(WalRecord::Accept(spec.clone()));
            submit_finish(service, &spec, result)
        }
    }
}

pub(crate) fn handle_query(service: &Service, id: &str) -> Response {
    let state = service.state.lock().expect("state lock");
    match state.jobs.get(id) {
        Some(entry) => Response::State(id.to_owned(), entry.state.clone()),
        None => Response::rejected(RejectCode::UnknownJob, format!("unknown job {id:?}")),
    }
}

/// Live completed-shot counts for a job mid-flight. A terminal job
/// answers with its terminal state instead (the checkpoint is history
/// at that point); a known job with no checkpoint yet reports zeros.
pub(crate) fn handle_progress(service: &Service, id: &str) -> Response {
    let state = service.state.lock().expect("state lock");
    match state.jobs.get(id) {
        Some(entry) => match (&entry.state, &entry.progress) {
            (JobState::Done(_) | JobState::Failed(_) | JobState::Partial(_), _) => {
                Response::State(id.to_owned(), entry.state.clone())
            }
            (_, Some(cp)) => Response::Progress {
                id: id.to_owned(),
                batches: cp.batches,
                shots: cp.shots,
                failures: cp.failures,
            },
            (_, None) => Response::Progress {
                id: id.to_owned(),
                batches: 0,
                shots: 0,
                failures: 0,
            },
        },
        None => Response::rejected(RejectCode::UnknownJob, format!("unknown job {id:?}")),
    }
}

fn handle_drain(service: &Service) {
    let mut state = service.state.lock().expect("state lock");
    state.draining = true;
    service.wake.notify_all();
    // The degraded latch can flip while we wait (stranding queued jobs
    // whose terminals can no longer journal), so re-check on a timeout
    // instead of trusting wakeups alone.
    while !state.drained(service.commit.is_degraded()) {
        let (s, _) = service
            .wake
            .wait_timeout(state, Duration::from_millis(50))
            .expect("state lock");
        state = s;
    }
    state.shutdown = true;
    service.wake.notify_all();
}

/// One dispatched job within a round.
struct RoundJob {
    id: String,
    kind: JobKind,
    backend: Backend,
    attempt: u32,
    deadline: Option<Instant>,
    /// The checkpoint this dispatch resumes from, if the kind supports
    /// resumption and a prior run (this process or a crashed one) left
    /// one behind.
    resume: Option<Checkpoint>,
}

/// The anytime terminal for a job whose deadline expired: a `Partial`
/// carrying the completed prefix when a checkpoint with real shots
/// exists, otherwise the classic failure. Used by both the pre-dispatch
/// expiry path and the cancelled-round fold-back so the two paths can
/// never disagree.
fn deadline_outcome(entry: &JobEntry) -> JobOutcome {
    match &entry.progress {
        Some(cp) if cp.shots > 0 => JobOutcome::Partial(partial_detail(&entry.spec.kind, cp)),
        _ => JobOutcome::Failed("deadline exceeded".to_owned()),
    }
}

fn dispatch_loop(service: &Arc<Service>) {
    loop {
        let (round, terminals) = {
            let mut state = service.state.lock().expect("state lock");
            loop {
                if state.shutdown {
                    return;
                }
                if !state.queue.is_empty() {
                    break;
                }
                state = service.wake.wait(state).expect("state lock");
            }
            pick_round(service, &mut state)
        };
        // Deadline expiries and parked journal retries claimed by
        // pick_round: append their terminal records here, off the
        // state lock, so admissions and queries keep flowing through a
        // full group-commit cycle.
        let had_terminals = !terminals.is_empty();
        let journal_ok = journal_terminals(service, terminals);
        if round.is_empty() {
            if had_terminals && journal_ok {
                // The pass made durable progress; look again at once.
                continue;
            }
            // Jobs are queued but undispatchable — every eligible
            // breaker is open, or a journal append is failing: wait
            // out (a fraction of) the cooloff instead of spinning.
            let wait = service
                .config
                .breaker_cooloff
                .max(Duration::from_millis(10))
                / 2;
            let state = service.state.lock().expect("state lock");
            let _ = service.wake.wait_timeout(state, wait).expect("state lock");
            continue;
        }
        // Dispatch trace records journal off the state lock too: a
        // lost one only loses routing trace, never correctness.
        for job in &round {
            if let Err(e) = service.commit.append_sync(WalRecord::Dispatch {
                id: job.id.clone(),
                backend: job.backend,
                attempt: job.attempt,
            }) {
                eprintln!(
                    "warning: journal dispatch record failed for {}: {e}",
                    job.id
                );
            }
        }
        run_round(service, round);
    }
}

/// Pops up to a pool-sized round of dispatchable jobs, choosing a
/// backend for each. Jobs past their deadline are claimed as terminal
/// (the caller journals them off-lock); jobs with every backend's
/// breaker open stay queued (in order) for a later round. No journal
/// I/O happens here — the state lock is held, and a group-commit wait
/// under it would block every admission, query, and health check.
fn pick_round(
    service: &Service,
    state: &mut ServiceState,
) -> (Vec<RoundJob>, Vec<(String, JobOutcome)>) {
    let now = Instant::now();
    let mut round = Vec::new();
    let mut terminals = Vec::new();
    let mut requeue = VecDeque::new();
    while round.len() < service.config.jobs.max(1) {
        let Some(id) = state.queue.pop_front() else {
            break;
        };
        let entry = state.jobs.get(&id).expect("queued job exists");
        // A journal-retry job: the result is already computed, only its
        // terminal record is missing. Retry the identical append.
        if let Some(outcome) = entry.pending_outcome.clone() {
            if terminal_begin(state, &id, &outcome) {
                terminals.push((id, outcome));
            }
            continue;
        }
        let deadline = entry.deadline();
        if deadline.is_some_and(|d| d <= now) {
            let outcome = deadline_outcome(entry);
            if terminal_begin(state, &id, &outcome) {
                terminals.push((id, outcome));
            }
            continue;
        }
        let preference = entry.spec.kind.backend_preference();
        let chosen = preference
            .iter()
            .copied()
            .find(|b| state.breakers[b.index()].allow(now));
        let Some(backend) = chosen else {
            requeue.push_back(id);
            continue;
        };
        if backend != preference[0] {
            state.stats.reroutes += 1;
        }
        let entry = state.jobs.get_mut(&id).expect("queued job exists");
        entry.state = JobState::Running;
        let attempt = entry.attempts;
        let kind = entry.spec.kind;
        let resume = entry
            .progress
            .clone()
            .filter(|_| entry.spec.kind.resumable());
        round.push(RoundJob {
            id,
            kind,
            backend,
            attempt,
            deadline,
            resume,
        });
    }
    // Breaker-blocked jobs go back to the front, preserving order.
    for id in requeue.into_iter().rev() {
        state.queue.push_front(id);
    }
    state.running = round.len();
    (round, terminals)
}

/// Journals one progress checkpoint through the group commit (off the
/// state lock — the fsync wait paces the executing worker, not the
/// admission path). Injections run first: the ENOSPC counter fails the
/// append as if the disk filled, and the corruption flag mangles every
/// other record so replay's plausibility gate has something to reject.
/// Any append failure flips checkpointing off for good; the job itself
/// keeps running — checkpoints bound recovery compute, not correctness.
fn journal_progress(service: &Service, id: &str, checkpoint: &Checkpoint) {
    let enospc = {
        let mut state = service.state.lock().expect("state lock");
        match state.chaos_progress_fail.as_mut() {
            Some(0) => true,
            Some(remaining) => {
                *remaining -= 1;
                false
            }
            None => false,
        }
    };
    if enospc {
        service.checkpointing.store(false, Ordering::Release);
        eprintln!(
            "warning: progress append for {id} failed (injected ENOSPC); \
             checkpointing disabled, job continues"
        );
        return;
    }
    let mut checkpoint = checkpoint.clone();
    if service.config.chaos_corrupt_checkpoint
        && service.progress_appends.fetch_add(1, Ordering::AcqRel) % 2 == 1
    {
        // An implausible record (more failures than shots): replay must
        // discard it and fall back to the previous checkpoint.
        checkpoint.failures = checkpoint.shots + 1;
    }
    let record = WalRecord::Progress {
        id: id.to_owned(),
        checkpoint,
    };
    match service.commit.append_sync(record) {
        Ok(()) => {}
        Err(CommitError::Rejected(detail)) => {
            eprintln!("warning: progress record for {id} rejected: {detail}");
        }
        Err(e) => {
            service.checkpointing.store(false, Ordering::Release);
            eprintln!(
                "warning: progress append for {id} failed ({e}); \
                 checkpointing disabled, job continues"
            );
        }
    }
}

/// Executes one round on the supervised pool and folds the results back
/// into the service state.
fn run_round(service: &Arc<Service>, round: Vec<RoundJob>) {
    let specs: Vec<BatchSpec> = round
        .iter()
        .map(|job| BatchSpec {
            key: job.id.clone(),
            point: job.id.clone(),
            batch: 0,
            shots: 1,
        })
        .collect();
    let supervisor_config = SupervisorConfig {
        jobs: service.config.jobs.max(1),
        watchdog: Duration::from_millis(service.config.watchdog_ms),
        // The daemon owns retries (it may change backend); the pool
        // runs each attempt exactly once.
        max_attempts: 1,
        backoff: Duration::from_millis(10),
        max_replacements: service.config.jobs.max(1),
        base_seed: service.config.base_seed,
        seed_policy: SeedPolicy::Stable,
        redundancy: 0,
    };

    let cancel = CancelToken::new();
    // Cooperative deadline enforcement: a watcher cancels the round at
    // the earliest member deadline; the round-end send retires it.
    let earliest = round.iter().filter_map(|j| j.deadline).min();
    let (round_done, watcher_rx) = mpsc::channel::<()>();
    let watcher = earliest.map(|when| {
        let token = cancel.clone();
        thread::spawn(move || {
            let wait = when.saturating_duration_since(Instant::now());
            if watcher_rx.recv_timeout(wait) == Err(RecvTimeoutError::Timeout) {
                token.cancel();
            }
        })
    });

    let stall = service.config.chaos_stall;
    let chaos = Arc::new(Mutex::new(
        service.state.lock().expect("state lock").chaos_backend_fail,
    ));
    let tasks: Vec<(String, JobKind, Backend, Option<Checkpoint>)> = round
        .iter()
        .map(|j| (j.id.clone(), j.kind, j.backend, j.resume.clone()))
        .collect();
    let job = {
        let chaos = Arc::clone(&chaos);
        let service = Arc::clone(service);
        let journal_every = service.config.progress_batches;
        move |ctx: &BatchCtx| -> Result<String, ShotError> {
            let (id, kind, backend, resume) = &tasks[ctx.task];
            if !stall.is_zero() {
                thread::sleep(stall);
            }
            {
                let mut chaos = chaos.lock().expect("chaos lock");
                if let Some((sick, remaining)) = chaos.as_mut() {
                    if *sick == *backend && *remaining > 0 {
                        *remaining -= 1;
                        return Err(ShotError::PoolFailure(format!(
                            "injected backend failure on {}",
                            backend.name()
                        )));
                    }
                }
            }
            // Per-batch sink: publish the checkpoint live (the
            // `progress` query and the deadline's `Partial` both read
            // `entry.progress`), then journal every `progress_batches`
            // batches so a crash resumes from a bounded distance back.
            let mut on_batch = |cp: &Checkpoint| {
                {
                    let mut state = service.state.lock().expect("state lock");
                    state.stats.batches += 1;
                    if let Some(entry) = state.jobs.get_mut(id) {
                        entry.progress = Some(cp.clone());
                    }
                }
                if journal_every > 0
                    && cp.batches.is_multiple_of(journal_every)
                    && service.checkpointing_on()
                {
                    journal_progress(&service, id, cp);
                }
            };
            match execute_tracked(
                kind,
                *backend,
                ctx.seed,
                &ctx.cancel,
                resume.as_ref(),
                &mut on_batch,
            )? {
                Execution::Done(record) => Ok(record),
                Execution::Stopped { checkpoint, reason } => {
                    // Keep the final prefix visible even for kinds that
                    // checkpoint only at the stop itself (scalar LER):
                    // the deadline fold-back turns it into a `Partial`.
                    if let Some(cp) = checkpoint {
                        let mut state = service.state.lock().expect("state lock");
                        if let Some(entry) = state.jobs.get_mut(id) {
                            entry.progress = Some(cp);
                        }
                    }
                    Err(ShotError::Cancelled { reason })
                }
            }
        }
    };
    let report = run_supervised_cancellable(&supervisor_config, specs, job, None, cancel);
    let _ = round_done.send(());
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }
    // Write back the chaos budget consumed by the round.
    let remaining_chaos = *chaos.lock().expect("chaos lock");

    let now = Instant::now();
    let mut quarantined: HashMap<usize, (String, bool)> = report
        .quarantined
        .into_iter()
        .map(|q| (q.task, (q.error, q.cancelled)))
        .collect();
    // Fold results back in two phases: decide and claim every terminal
    // under the state lock, then journal the claimed records with the
    // lock dropped (group commit can take a full straggler interval +
    // fsync, and admissions must not stall behind it).
    let mut terminals: Vec<(String, JobOutcome)> = Vec::new();
    let mut state = service.state.lock().expect("state lock");
    state.chaos_backend_fail = remaining_chaos;
    for (task, job) in round.into_iter().enumerate() {
        match report.results.get(task).and_then(Option::as_ref) {
            Some(record) => {
                state.breakers[job.backend.index()].record_success();
                let outcome = JobOutcome::Done(record.clone());
                if terminal_begin(&mut state, &job.id, &outcome) {
                    terminals.push((job.id, outcome));
                }
            }
            None => {
                // The supervisor types cancellation at quarantine time
                // (from the `ShotError::Cancelled` variant, never the
                // message text), so a backend error that merely
                // *mentions* cancellation cannot masquerade as one.
                let (error, cancelled) = quarantined
                    .remove(&task)
                    .unwrap_or_else(|| ("worker pool lost the job".to_owned(), false));
                let expired = job.deadline.is_some_and(|d| d <= now);
                if cancelled && !expired {
                    // Collateral cancellation from another job's
                    // deadline: not a backend failure, just requeue
                    // (the checkpoint it published resumes it).
                    requeue_front(&mut state, &job.id);
                    continue;
                }
                if cancelled || expired {
                    let entry = state.jobs.get(&job.id).expect("round job exists");
                    let outcome = deadline_outcome(entry);
                    if terminal_begin(&mut state, &job.id, &outcome) {
                        terminals.push((job.id, outcome));
                    }
                    continue;
                }
                state.breakers[job.backend.index()].record_failure(now);
                let entry = state.jobs.get_mut(&job.id).expect("round job exists");
                entry.attempts += 1;
                if entry.attempts >= service.config.max_job_attempts {
                    let outcome =
                        JobOutcome::Failed(format!("{error} (after {} attempts)", entry.attempts));
                    if terminal_begin(&mut state, &job.id, &outcome) {
                        terminals.push((job.id, outcome));
                    }
                } else {
                    requeue_front(&mut state, &job.id);
                }
            }
        }
    }
    // `running` drops before the terminals land, but a drain still
    // waits: the claims sit in `pending_terminals` until finished.
    state.running = 0;
    drop(state);
    let _ = journal_terminals(service, terminals);
    service.wake.notify_all();
}

fn requeue_front(state: &mut ServiceState, id: &str) {
    let entry = state.jobs.get_mut(id).expect("round job exists");
    entry.state = JobState::Queued;
    state.queue.push_front(id.to_owned());
}

/// Claims the terminal transition for `id` under the state lock.
///
/// The terminal transition is serialized here: the first outcome to
/// claim wins — whether it is already journaled, parked awaiting a
/// journal retry, or in flight to the commit thread — and any later,
/// different one for the same id is dropped before it can touch the
/// journal. This is what keeps a deadline firing mid-drain from
/// double-reporting a job — the deadline path and the completion path
/// may both compute a terminal, but exactly one terminal record ever
/// lands.
///
/// Returns whether the caller now owns journaling this outcome: it
/// must append the record (off the state lock) and route the result
/// through [`terminal_finish`] exactly once, or the claim leaks and a
/// drain waits on it forever.
fn terminal_begin(state: &mut ServiceState, id: &str, outcome: &JobOutcome) -> bool {
    if state.pending_terminals.contains(id) {
        // An identical append is already in flight (a journal retry
        // claimed it this pass); don't double-journal.
        return false;
    }
    let entry = state.jobs.get(id).expect("terminal job exists");
    if matches!(
        entry.state,
        JobState::Done(_) | JobState::Failed(_) | JobState::Partial(_)
    ) {
        // A terminal already won (and is already journaled).
        return false;
    }
    if let Some(parked) = &entry.pending_outcome {
        if parked != outcome {
            // A different terminal is parked awaiting its journal
            // retry: it was first, so it wins; this one is dropped.
            return false;
        }
    }
    state.pending_terminals.insert(id.to_owned());
    true
}

/// Appends every claimed terminal record (no lock held across the
/// group-commit waits), then folds the results back in. Returns
/// whether every append landed — `false` tells the dispatcher to back
/// off instead of spinning on a failing journal.
fn journal_terminals(service: &Service, terminals: Vec<(String, JobOutcome)>) -> bool {
    if terminals.is_empty() {
        return true;
    }
    let appends: Vec<_> = terminals
        .into_iter()
        .map(|(id, outcome)| {
            let append = service.commit.append_sync(WalRecord::Complete {
                id: id.clone(),
                outcome: outcome.clone(),
            });
            (id, outcome, append)
        })
        .collect();
    let mut all_ok = true;
    let mut state = service.state.lock().expect("state lock");
    for (id, outcome, append) in appends {
        all_ok &= terminal_finish(&mut state, &id, outcome, append);
    }
    drop(state);
    // Query waiters (result now visible) and drain waiters (a claim
    // resolved) both need the wake.
    service.wake.notify_all();
    all_ok
}

/// Releases a [`terminal_begin`] claim with its append result: once
/// durable the result becomes queryable (WAL-before-result). If the
/// append failed, the computed outcome is parked on the entry and the
/// job requeued: the dispatcher retries the *same* append rather than
/// re-executing, so even when the failed write's bytes did reach disk,
/// the retry can only produce a byte-identical duplicate record —
/// which recovery absorbs — never a conflicting terminal that would
/// brick the next restart.
fn terminal_finish(
    state: &mut ServiceState,
    id: &str,
    outcome: JobOutcome,
    append: Result<(), CommitError>,
) -> bool {
    state.pending_terminals.remove(id);
    if let Err(e) = append {
        eprintln!("warning: journal complete record failed for {id}: {e}");
        let entry = state.jobs.get_mut(id).expect("completed job exists");
        entry.pending_outcome = Some(outcome);
        requeue_front(state, id);
        return false;
    }
    let entry = state.jobs.get_mut(id).expect("completed job exists");
    entry.pending_outcome = None;
    match outcome {
        JobOutcome::Done(record) => {
            entry.state = JobState::Done(record);
            state.stats.completed += 1;
        }
        JobOutcome::Failed(error) => {
            entry.state = JobState::Failed(error);
            state.stats.failed += 1;
        }
        JobOutcome::Partial(detail) => {
            entry.state = JobState::Partial(detail);
            state.stats.partials += 1;
        }
    }
    true
}

//! Group commit for the write-ahead journal (`DESIGN.md` §12.2).
//!
//! The daemon never fsyncs the journal inline. Every append — an
//! admission's `accept`, a dispatch trace, a terminal record — is
//! enqueued to a dedicated commit thread that batches up to
//! [`commit_batch`](crate::daemon::DaemonConfig::commit_batch) records
//! per fsync (gathering stragglers for at most
//! [`commit_interval_us`](crate::daemon::DaemonConfig::commit_interval_us)),
//! writes them with [`WriteAheadLog::write_unsynced`], syncs **once**,
//! and only then reports success. WAL-before-ack survives batching
//! because the ack waits for the batch's sync, not merely the write.
//!
//! Failure taxonomy (the part the fleet router's safety argument leans
//! on):
//!
//! - **Rejected** — journal validation refused the record before any
//!   byte reached disk (conflicting terminal, pruned id, unknown id).
//!   Per-record; the batch and the daemon carry on.
//! - **Unsynced** — a write or the batch fsync failed. Durability of
//!   the record is *unknown* (its bytes may be in the segment), so the
//!   corresponding job id is ambiguous forever: the daemon answers its
//!   resubmits with the `journal` code, which the router must park.
//! - **Degraded** — the journal already failed a commit before this
//!   record was written. Nothing of it reached disk, so the daemon may
//!   answer with the post-dedup `degraded` code and a router may safely
//!   fail the job over to another member.
//!
//! Once any commit fails, the latch flips and never resets: a daemon
//! that cannot promise durability refuses all new work until an
//! operator restarts it on a healthy disk. Acking unsynced bytes is the
//! one unforgivable failure mode.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::wal::{WalRecord, WriteAheadLog};

/// Why an append did not commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// Journal validation refused the record; no byte reached disk.
    Rejected(String),
    /// A write or fsync failed mid-commit: durability unknown. The
    /// journal is degraded from here on.
    Unsynced(String),
    /// The journal was already degraded; the record was never written.
    Degraded(String),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::Rejected(m) | CommitError::Unsynced(m) | CommitError::Degraded(m) => {
                write!(f, "{m}")
            }
        }
    }
}

/// A completed asynchronous append (see [`GroupCommit::append_async`]).
#[derive(Debug)]
pub struct Completion {
    /// The token `append_async` returned.
    pub token: u64,
    /// The commit result.
    pub result: Result<(), CommitError>,
}

/// A wakeup hook the commit thread calls after queuing async
/// completions (the event loop parks on a condvar between passes; this
/// is what nudges it).
pub type CommitWaker = Arc<dyn Fn() + Send + Sync>;

enum Waiter {
    Sync(mpsc::Sender<Result<(), CommitError>>),
    Async(u64),
}

struct Pending {
    record: WalRecord,
    waiter: Waiter,
}

struct CommitQueue {
    pending: VecDeque<Pending>,
    completions: Vec<Completion>,
    next_token: u64,
    shutdown: bool,
    waker: Option<CommitWaker>,
}

struct Shared {
    wal: Mutex<WriteAheadLog>,
    queue: Mutex<CommitQueue>,
    /// Signals the commit thread: work arrived or shutdown requested.
    work: Condvar,
    /// Set once, never cleared: a commit failed, refuse all new work.
    degraded: AtomicBool,
}

/// Handle to the group-commit thread. Dropping it drains the queue and
/// joins the thread.
pub struct GroupCommit {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl GroupCommit {
    /// Takes ownership of the journal and spawns the commit thread.
    /// `batch` bounds records per fsync (min 1); `interval` is how long
    /// an under-full batch waits for stragglers (zero = commit
    /// immediately, i.e. fsync-per-record when submissions are serial).
    #[must_use]
    pub fn spawn(wal: WriteAheadLog, batch: usize, interval: Duration) -> Self {
        let shared = Arc::new(Shared {
            wal: Mutex::new(wal),
            queue: Mutex::new(CommitQueue {
                pending: VecDeque::new(),
                completions: Vec::new(),
                next_token: 0,
                shutdown: false,
                waker: None,
            }),
            work: Condvar::new(),
            degraded: AtomicBool::new(false),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || commit_loop(&shared, batch.max(1), interval))
        };
        GroupCommit {
            shared,
            thread: Some(thread),
        }
    }

    /// Whether a commit has failed (latched; never resets).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Acquire)
    }

    /// Whether `id` belongs to a terminal job pruned by retention.
    #[must_use]
    pub fn was_pruned(&self, id: &str) -> bool {
        self.shared.wal.lock().expect("wal lock").was_pruned(id)
    }

    /// Registers the event loop's wakeup hook (replacing any previous
    /// one): called after async completions are queued.
    pub fn set_waker(&self, waker: CommitWaker) {
        self.shared.queue.lock().expect("commit queue").waker = Some(waker);
    }

    /// Enqueues one record and blocks until its batch commits. When
    /// this returns `Ok`, the record is durable.
    ///
    /// # Errors
    ///
    /// See [`CommitError`].
    pub fn append_sync(&self, record: WalRecord) -> Result<(), CommitError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(record, Waiter::Sync(tx))?;
        rx.recv().unwrap_or_else(|_| {
            Err(CommitError::Unsynced(
                "commit thread exited mid-append".to_owned(),
            ))
        })
    }

    /// Enqueues one record without blocking; the result arrives later
    /// through [`take_completions`](Self::take_completions) under the
    /// returned token. The record must not be acked until then.
    ///
    /// # Errors
    ///
    /// Fails fast (without enqueueing) when the journal is degraded or
    /// shutting down.
    pub fn append_async(&self, record: WalRecord) -> Result<u64, CommitError> {
        let mut token = 0;
        self.enqueue_with(record, |queue| {
            token = queue.next_token;
            queue.next_token += 1;
            Waiter::Async(token)
        })?;
        Ok(token)
    }

    /// Drains the async completions queued since the last call.
    #[must_use]
    pub fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut self.shared.queue.lock().expect("commit queue").completions)
    }

    fn enqueue(&self, record: WalRecord, waiter: Waiter) -> Result<(), CommitError> {
        self.enqueue_with(record, |_| waiter)
    }

    fn enqueue_with(
        &self,
        record: WalRecord,
        make_waiter: impl FnOnce(&mut CommitQueue) -> Waiter,
    ) -> Result<(), CommitError> {
        if self.is_degraded() {
            return Err(CommitError::Degraded(
                "journal degraded: a commit fsync failed; restart the daemon".to_owned(),
            ));
        }
        let mut queue = self.shared.queue.lock().expect("commit queue");
        if queue.shutdown {
            return Err(CommitError::Degraded(
                "commit thread is shutting down".to_owned(),
            ));
        }
        let waiter = make_waiter(&mut queue);
        queue.pending.push_back(Pending { record, waiter });
        self.shared.work.notify_all();
        Ok(())
    }
}

impl Drop for GroupCommit {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("commit queue");
            queue.shutdown = true;
            self.shared.work.notify_all();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn commit_loop(shared: &Shared, batch_max: usize, interval: Duration) {
    loop {
        let batch: Vec<Pending> = {
            let mut queue = shared.queue.lock().expect("commit queue");
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.work.wait(queue).expect("commit queue");
            }
            // Group commit: an under-full batch waits once, briefly,
            // for stragglers — amortizing the fsync without stalling a
            // lone record behind a full interval under light load more
            // than `interval`.
            if queue.pending.len() < batch_max && !interval.is_zero() && !queue.shutdown {
                let (q, _) = shared
                    .work
                    .wait_timeout(queue, interval)
                    .expect("commit queue");
                queue = q;
            }
            let take = queue.pending.len().min(batch_max);
            queue.pending.drain(..take).collect()
        };

        // Write every record, then sync once — off the queue lock, so
        // admissions keep queueing behind the in-flight batch.
        let mut results: Vec<Result<(), CommitError>> = Vec::with_capacity(batch.len());
        let mut failed: Option<String> = None;
        if shared.degraded.load(Ordering::Acquire) {
            // A record enqueued between its enqueue-side degraded check
            // and the latch flipping survives the failing iteration's
            // pending-queue drain; it lands here on a later pass. The
            // journal is degraded, so nothing of it may be written.
            let message = "journal degraded: a commit fsync failed; restart the daemon".to_owned();
            for _ in &batch {
                results.push(Err(CommitError::Degraded(message.clone())));
            }
            failed = Some(message);
        } else {
            let mut wal = shared.wal.lock().expect("wal lock");
            let mut wrote = false;
            for pending in &batch {
                if failed.is_some() {
                    // Past the failure point nothing is written, so
                    // these records provably left no bytes: Degraded,
                    // not Unsynced.
                    results.push(Err(CommitError::Degraded(
                        "journal degraded mid-batch; record not written".to_owned(),
                    )));
                    continue;
                }
                if let Err(e) = wal.validate(&pending.record) {
                    results.push(Err(CommitError::Rejected(e.to_string())));
                    continue;
                }
                match wal.write_unsynced(&pending.record) {
                    Ok(()) => {
                        wrote = true;
                        results.push(Ok(()));
                    }
                    Err(e) => {
                        let message = format!("journal write failed: {e}");
                        results.push(Err(CommitError::Unsynced(message.clone())));
                        failed = Some(message);
                    }
                }
            }
            // Sync whatever reached the segment — including the prefix
            // written before a mid-batch write failure. Those waiters'
            // Ok results stand only if their bytes actually sync; the
            // degraded latch guarantees no later batch would ever flush
            // them. If this sync fails too, every written record's
            // durability is unknown.
            if wrote {
                if let Err(e) = wal.sync() {
                    let message = format!("journal sync failed: {e}");
                    for result in &mut results {
                        if result.is_ok() {
                            *result = Err(CommitError::Unsynced(message.clone()));
                        }
                    }
                    if failed.is_none() {
                        failed = Some(message);
                    }
                }
            }
        }
        if failed.is_some() {
            shared.degraded.store(true, Ordering::Release);
        }

        // Deliver, and on degradation fail everything still queued —
        // those records were never written, so they get Degraded.
        let mut queue = shared.queue.lock().expect("commit queue");
        let mut drained: Vec<Pending> = Vec::new();
        if failed.is_some() {
            drained = queue.pending.drain(..).collect();
        }
        let mut woke_async = false;
        for (pending, result) in batch
            .into_iter()
            .zip(results)
            .chain(drained.into_iter().map(|p| {
                (
                    p,
                    Err(CommitError::Degraded(
                        "journal degraded: a commit fsync failed; restart the daemon".to_owned(),
                    )),
                )
            }))
        {
            match pending.waiter {
                Waiter::Sync(tx) => {
                    let _ = tx.send(result);
                }
                Waiter::Async(token) => {
                    queue.completions.push(Completion { token, result });
                    woke_async = true;
                }
            }
        }
        if woke_async {
            if let Some(waker) = &queue.waker {
                waker();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec};
    use crate::wal::{recover, JobOutcome};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qpdo-commit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_owned(),
            deadline_ms: None,
            kind: JobKind::Bell { shots: 2 },
        }
    }

    #[test]
    fn sync_appends_are_durable_when_acked() {
        let dir = tmp_dir("sync");
        let (wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        let commit = GroupCommit::spawn(wal, 8, Duration::from_micros(200));
        for i in 0..10 {
            commit
                .append_sync(WalRecord::Accept(spec(&format!("s-{i}"))))
                .unwrap();
        }
        commit
            .append_sync(WalRecord::Complete {
                id: "s-0".to_owned(),
                outcome: JobOutcome::Done("1".to_owned()),
            })
            .unwrap();
        drop(commit);
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 10);
        assert_eq!(
            recovery.jobs[0].outcome,
            Some(JobOutcome::Done("1".to_owned()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_share_fsyncs() {
        let dir = tmp_dir("batched");
        let (wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        let commit = Arc::new(GroupCommit::spawn(wal, 64, Duration::from_millis(2)));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let commit = Arc::clone(&commit);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        commit
                            .append_sync(WalRecord::Accept(spec(&format!("c-{t}-{i}"))))
                            .unwrap();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let commit = Arc::into_inner(commit).expect("sole owner");
        drop(commit);
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_appends_complete_with_tokens_and_wake_the_waker() {
        let dir = tmp_dir("async");
        let (wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        let commit = GroupCommit::spawn(wal, 8, Duration::from_micros(100));
        let woke = Arc::new(AtomicBool::new(false));
        {
            let woke = Arc::clone(&woke);
            commit.set_waker(Arc::new(move || woke.store(true, Ordering::Release)));
        }
        let t0 = commit.append_async(WalRecord::Accept(spec("a-0"))).unwrap();
        let t1 = commit.append_async(WalRecord::Accept(spec("a-1"))).unwrap();
        assert_ne!(t0, t1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut done = Vec::new();
        while done.len() < 2 {
            done.extend(commit.take_completions());
            assert!(std::time::Instant::now() < deadline, "completions late");
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(woke.load(Ordering::Acquire), "waker never called");
        for completion in &done {
            assert!(completion.result.is_ok(), "{:?}", completion.result);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejected_records_fail_individually_without_degrading() {
        let dir = tmp_dir("reject");
        let (wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        let commit = GroupCommit::spawn(wal, 8, Duration::from_micros(100));
        commit.append_sync(WalRecord::Accept(spec("r-0"))).unwrap();
        commit
            .append_sync(WalRecord::Complete {
                id: "r-0".to_owned(),
                outcome: JobOutcome::Done("1".to_owned()),
            })
            .unwrap();
        // A conflicting terminal is refused per-record...
        let err = commit
            .append_sync(WalRecord::Complete {
                id: "r-0".to_owned(),
                outcome: JobOutcome::Failed("boom".to_owned()),
            })
            .unwrap_err();
        assert!(matches!(err, CommitError::Rejected(_)), "{err:?}");
        // ...and the journal keeps serving.
        assert!(!commit.is_degraded());
        commit.append_sync(WalRecord::Accept(spec("r-1"))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_batch_write_failure_never_acks_unsynced_bytes() {
        let dir = tmp_dir("write-fail");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.set_fail_write_after(Some(1));
        let commit = GroupCommit::spawn(wal, 8, Duration::from_millis(200));
        // Three appends back-to-back: however the commit thread batches
        // them, the second write fails. The written prefix (w-0) must
        // only keep its Ok if its bytes are synced — a mid-batch write
        // failure must not skip the prefix fsync and ack anyway.
        let mut tokens = Vec::new();
        for i in 0..3 {
            match commit.append_async(WalRecord::Accept(spec(&format!("w-{i}")))) {
                Ok(token) => tokens.push((token, format!("w-{i}"))),
                // The degraded latch can flip before a later enqueue.
                Err(e) => assert!(matches!(e, CommitError::Degraded(_)), "{e:?}"),
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut done = Vec::new();
        while done.len() < tokens.len() {
            done.extend(commit.take_completions());
            assert!(std::time::Instant::now() < deadline, "completions late");
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(commit.is_degraded());
        // w-0's write and prefix sync both succeed: durable, acked.
        let first = done.iter().find(|c| c.token == tokens[0].0).unwrap();
        assert!(first.result.is_ok(), "{:?}", first.result);
        // w-1's write failed: ambiguous forever, never Ok.
        if let Some((token, _)) = tokens.get(1) {
            let second = done.iter().find(|c| c.token == *token).unwrap();
            assert!(
                matches!(second.result, Err(CommitError::Unsynced(_))),
                "{:?}",
                second.result
            );
        }
        drop(commit);
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        // The WAL-before-ack invariant: every Ok'd record is on disk.
        for (token, id) in &tokens {
            let acked = done.iter().any(|c| c.token == *token && c.result.is_ok());
            if acked {
                assert!(
                    recovery.jobs.iter().any(|j| j.spec.id == *id),
                    "acked {id} lost"
                );
            }
        }
        assert!(recovery.jobs.iter().any(|j| j.spec.id == "w-0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failure_with_failing_prefix_sync_downgrades_every_ack() {
        let dir = tmp_dir("write-sync-fail");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.set_fail_write_after(Some(1));
        wal.set_fail_sync_after(Some(0));
        let commit = GroupCommit::spawn(wal, 8, Duration::from_millis(200));
        let mut tokens = Vec::new();
        for i in 0..3 {
            match commit.append_async(WalRecord::Accept(spec(&format!("x-{i}")))) {
                Ok(token) => tokens.push(token),
                Err(e) => assert!(matches!(e, CommitError::Degraded(_)), "{e:?}"),
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut done = Vec::new();
        while done.len() < tokens.len() {
            done.extend(commit.take_completions());
            assert!(std::time::Instant::now() < deadline, "completions late");
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(commit.is_degraded());
        // The prefix sync failed too: nothing may be acked, and the
        // written-but-unsynced prefix is Unsynced, not Ok.
        for completion in &done {
            assert!(completion.result.is_err(), "{completion:?}");
        }
        let first = done.iter().find(|c| c.token == tokens[0]).unwrap();
        assert!(
            matches!(first.result, Err(CommitError::Unsynced(_))),
            "{:?}",
            first.result
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_degrades_and_latches() {
        let dir = tmp_dir("degrade");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.set_fail_sync_after(Some(1));
        let commit = GroupCommit::spawn(wal, 8, Duration::from_micros(100));
        commit.append_sync(WalRecord::Accept(spec("d-0"))).unwrap();
        // The next commit's fsync fails: the in-flight record is
        // ambiguous (Unsynced)...
        let err = commit
            .append_sync(WalRecord::Accept(spec("d-1")))
            .unwrap_err();
        assert!(matches!(err, CommitError::Unsynced(_)), "{err:?}");
        assert!(commit.is_degraded());
        // ...and everything after is refused before it is written.
        let err = commit
            .append_sync(WalRecord::Accept(spec("d-2")))
            .unwrap_err();
        assert!(matches!(err, CommitError::Degraded(_)), "{err:?}");
        drop(commit);
        // The journal on disk is still a consistent prefix: d-0 acked
        // and durable, d-1 unacked (present or torn, both fine), d-2
        // provably absent.
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert!(recovery.jobs.iter().any(|j| j.spec.id == "d-0"));
        assert!(recovery.jobs.iter().all(|j| j.spec.id != "d-2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

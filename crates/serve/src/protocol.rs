//! The wire protocol of the shot service (`DESIGN.md` §9.1).
//!
//! Every message is one record in the repo's CRC framing
//! ([`qpdo_bench::framing`]): `[len u32 BE][crc32 u32 BE][payload]`,
//! the payload a single UTF-8 line whose first token is the verb. The
//! same framing protects the write-ahead journal, so a protocol
//! implementation is also a journal reader.
//!
//! Requests: `submit <id> <deadline_ms|-> <kind…>`, `query <id>`,
//! `progress <id>`, `health`, `drain`.
//!
//! Responses: `accepted <id>`, `duplicate <id>`,
//! `rejected <code> <detail…>`, `state <id> queued|running`,
//! `done <id> <record…>`, `failed <id> <error…>`,
//! `partial <id> <shots> <target> <failures> <ci_lo> <ci_hi>` (the
//! anytime terminal of a deadline-expired shot sweep),
//! `progress <id> <batches> <shots> <failures>` (live checkpoint of a
//! known job), `health <snapshot>`,
//! `drained`. Rejections carry a stable machine-readable [`RejectCode`]
//! ahead of the free-text detail: the fleet router keys safety-critical
//! delivery decisions on the code (`DESIGN.md` §11.3), never on the
//! wording of the detail. A `rejected` line whose first token is not a
//! known code parses as [`RejectCode::Other`] with the whole remainder
//! as detail, so pre-code peers remain readable.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use qpdo_bench::framing::{read_record, write_record};

use crate::breaker::BreakerState;
use crate::job::{Backend, JobSpec};

/// A client-to-daemon message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job (idempotent on the job id).
    Submit(JobSpec),
    /// Ask for the state or result of a job.
    Query(String),
    /// Ask for a job's live execution progress (completed batches and
    /// shot counters); terminal jobs answer with their terminal state.
    Progress(String),
    /// Ask for the service health snapshot.
    Health,
    /// Stop admission, wait for the queue to dry, then shut down.
    Drain,
}

impl Request {
    /// The wire line for this request.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Request::Submit(spec) => format!("submit {} {}", spec.id, spec.encode_tail()),
            Request::Query(id) => format!("query {id}"),
            Request::Progress(id) => format!("progress {id}"),
            Request::Health => "health".to_owned(),
            Request::Drain => "drain".to_owned(),
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on malformed input (sent back to
    /// the client as a `rejected` response).
    pub fn parse(line: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["submit", rest @ ..] => Ok(Request::Submit(JobSpec::parse(rest)?)),
            ["query", id] => Ok(Request::Query((*id).to_owned())),
            ["progress", id] => Ok(Request::Progress((*id).to_owned())),
            ["health"] => Ok(Request::Health),
            ["drain"] => Ok(Request::Drain),
            _ => Err(format!("unknown request {line:?}")),
        }
    }
}

/// Machine-readable classification of a `rejected` response.
///
/// The code is part of the wire contract, not a display hint: the
/// fleet router decides whether a rejected submit is *proof the id is
/// not held by the member* (safe to fail over) or merely *proof this
/// attempt was not admitted* (must stay parked) from the code alone.
///
/// Codes marked **post-dedup** are only ever issued after the daemon
/// checked the submitted id against its journal state (live jobs map
/// plus pruned-id ledger), so receiving one proves the id is not in
/// that daemon's WAL. All other codes carry no such proof — `busy` in
/// particular is sent by the connection-level shed before any request
/// line is read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// Connection-level shed: the peer was over its connection cap and
    /// answered before reading the request (no dedup check ran).
    Busy,
    /// Admission-control shed: queue or in-flight cap (**post-dedup**).
    Overloaded,
    /// Draining: not accepting new jobs (**post-dedup**).
    Draining,
    /// A journal append failed mid-admission: whether the record
    /// reached disk is ambiguous.
    Journal,
    /// The journal can no longer make new records durable (a commit
    /// fsync failed): the daemon refuses new work until restarted
    /// (**post-dedup** — the dedup check ran against the intact
    /// in-memory mirror before this was issued).
    Degraded,
    /// The id already reached a terminal state whose record was pruned
    /// by journal retention (**post-dedup**).
    Pruned,
    /// A query for an id this service has never accepted.
    UnknownJob,
    /// Unparseable request line or torn frame (no dedup check ran).
    Malformed,
    /// No backend or fleet member can take the request.
    Unavailable,
    /// Anything else, including free-text reasons from pre-code peers.
    Other,
}

impl RejectCode {
    /// The stable wire token for this code.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::Busy => "busy",
            RejectCode::Overloaded => "overloaded",
            RejectCode::Draining => "draining",
            RejectCode::Journal => "journal",
            RejectCode::Degraded => "degraded",
            RejectCode::Pruned => "pruned",
            RejectCode::UnknownJob => "unknown-job",
            RejectCode::Malformed => "malformed",
            RejectCode::Unavailable => "unavailable",
            RejectCode::Other => "other",
        }
    }

    /// Parses a wire token; `None` for unknown tokens (the caller
    /// falls back to [`RejectCode::Other`]).
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        Some(match token {
            "busy" => RejectCode::Busy,
            "overloaded" => RejectCode::Overloaded,
            "draining" => RejectCode::Draining,
            "journal" => RejectCode::Journal,
            "degraded" => RejectCode::Degraded,
            "pruned" => RejectCode::Pruned,
            "unknown-job" => RejectCode::UnknownJob,
            "malformed" => RejectCode::Malformed,
            "unavailable" => RejectCode::Unavailable,
            "other" => RejectCode::Other,
            _ => return None,
        })
    }
}

/// A coded rejection: the stable [`RejectCode`] plus human-readable
/// detail text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The machine-readable classification.
    pub code: RejectCode,
    /// The human-readable explanation (never interpreted by peers).
    pub detail: String,
}

impl Rejection {
    /// Builds a rejection from a code and detail text.
    pub fn new(code: RejectCode, detail: impl Into<String>) -> Self {
        Rejection {
            code,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.detail.is_empty() {
            write!(f, "{}", self.code.name())
        } else {
            write!(f, "{}", self.detail)
        }
    }
}

/// The terminal or in-flight state of a job, as reported to clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on the worker pool.
    Running,
    /// Finished; the whitespace-separated result record.
    Done(String),
    /// Terminally failed; the error description.
    Failed(String),
    /// Terminal anytime-partial result of a deadline-expired shot
    /// sweep: `<shots> <target> <failures> <ci_lo> <ci_hi>` — the
    /// completed prefix's estimator with its Wilson interval. Delivered
    /// and terminal like `Done`.
    Partial(String),
}

/// A point-in-time health snapshot of the daemon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Whether the daemon still accepts new jobs.
    pub accepting: bool,
    /// Jobs waiting in the admission queue.
    pub queued: usize,
    /// Jobs currently on the worker pool.
    pub running: usize,
    /// Jobs accepted since the journal began (including recovered).
    pub accepted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs terminally failed.
    pub failed: u64,
    /// Submissions rejected by admission control.
    pub shed: u64,
    /// Submissions deduplicated against an existing id.
    pub duplicates: u64,
    /// Circuit-breaker trips across all backends.
    pub breaker_trips: u64,
    /// Jobs routed to a non-preferred backend by an open breaker.
    pub reroutes: u64,
    /// Jobs ended with an anytime-partial terminal at deadline expiry.
    pub partials: u64,
    /// Shot-sweep batches executed by the worker pool since startup —
    /// the execution counter the resume drill compares against a
    /// scratch run to prove checkpoints actually saved work.
    pub batches: u64,
    /// Whether progress checkpointing is active. Degrades to `false`
    /// when a progress append fails (e.g. injected ENOSPC): jobs keep
    /// running, but a crash would replay them from their last durable
    /// checkpoint, not from the batches executed since.
    pub checkpointing: bool,
    /// Per-backend breaker states, in [`Backend::ALL`] order.
    pub breakers: [BreakerState; 3],
}

impl HealthSnapshot {
    fn encode(&self) -> String {
        let breakers: Vec<String> = Backend::ALL
            .into_iter()
            .map(|b| format!("{}:{}", b.name(), self.breakers[b.index()].name()))
            .collect();
        format!(
            "health {} queued={} running={} accepted={} completed={} failed={} shed={} \
             duplicates={} breaker_trips={} reroutes={} partials={} batches={} checkpoint={} \
             breakers={}",
            if self.accepting { "ok" } else { "draining" },
            self.queued,
            self.running,
            self.accepted,
            self.completed,
            self.failed,
            self.shed,
            self.duplicates,
            self.breaker_trips,
            self.reroutes,
            self.partials,
            self.batches,
            if self.checkpointing { "on" } else { "off" },
            breakers.join(",")
        )
    }

    fn parse(tokens: &[&str]) -> Result<Self, String> {
        let bad = || format!("malformed health snapshot: {tokens:?}");
        let [mode, fields @ ..] = tokens else {
            return Err(bad());
        };
        let accepting = match *mode {
            "ok" => true,
            "draining" => false,
            _ => return Err(bad()),
        };
        let mut snapshot = HealthSnapshot {
            accepting,
            queued: 0,
            running: 0,
            accepted: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            duplicates: 0,
            breaker_trips: 0,
            reroutes: 0,
            partials: 0,
            batches: 0,
            checkpointing: true,
            breakers: [BreakerState::Closed; 3],
        };
        for field in fields {
            let (key, value) = field.split_once('=').ok_or_else(bad)?;
            match key {
                "queued" => snapshot.queued = value.parse().map_err(|_| bad())?,
                "running" => snapshot.running = value.parse().map_err(|_| bad())?,
                "accepted" => snapshot.accepted = value.parse().map_err(|_| bad())?,
                "completed" => snapshot.completed = value.parse().map_err(|_| bad())?,
                "failed" => snapshot.failed = value.parse().map_err(|_| bad())?,
                "shed" => snapshot.shed = value.parse().map_err(|_| bad())?,
                "duplicates" => snapshot.duplicates = value.parse().map_err(|_| bad())?,
                "breaker_trips" => snapshot.breaker_trips = value.parse().map_err(|_| bad())?,
                "reroutes" => snapshot.reroutes = value.parse().map_err(|_| bad())?,
                "partials" => snapshot.partials = value.parse().map_err(|_| bad())?,
                "batches" => snapshot.batches = value.parse().map_err(|_| bad())?,
                "checkpoint" => {
                    snapshot.checkpointing = match value {
                        "on" => true,
                        "off" => false,
                        _ => return Err(bad()),
                    }
                }
                "breakers" => {
                    for entry in value.split(',') {
                        let (name, state) = entry.split_once(':').ok_or_else(bad)?;
                        let backend = Backend::parse(name).ok_or_else(bad)?;
                        snapshot.breakers[backend.index()] = match state {
                            "closed" => BreakerState::Closed,
                            "open" => BreakerState::Open,
                            "half-open" => BreakerState::HalfOpen,
                            _ => return Err(bad()),
                        };
                    }
                }
                _ => return Err(bad()),
            }
        }
        Ok(snapshot)
    }
}

/// A daemon-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The submitted job was journaled and queued.
    Accepted(String),
    /// The id is already known; submission was idempotently absorbed.
    Duplicate(String),
    /// The request was refused (overload, drain, malformed input).
    Rejected(Rejection),
    /// A queried job's current state.
    State(String, JobState),
    /// A known job's live execution progress: completed whole batches
    /// and the shot counters accumulated over them (all zero before the
    /// first completed batch, or for kinds that do not checkpoint).
    Progress {
        /// The job id.
        id: String,
        /// Completed whole batches.
        batches: u64,
        /// Shots counted over those batches.
        shots: u64,
        /// Failures among those shots.
        failures: u64,
    },
    /// The health snapshot.
    Health(Box<HealthSnapshot>),
    /// Drain finished: the queue is dry and the daemon is exiting.
    Drained,
}

impl Response {
    /// Builds a coded rejection response.
    pub fn rejected(code: RejectCode, detail: impl Into<String>) -> Response {
        Response::Rejected(Rejection::new(code, detail))
    }

    /// The wire line for this response.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Response::Accepted(id) => format!("accepted {id}"),
            Response::Duplicate(id) => format!("duplicate {id}"),
            Response::Rejected(rejection) if rejection.detail.is_empty() => {
                format!("rejected {}", rejection.code.name())
            }
            Response::Rejected(rejection) => {
                format!("rejected {} {}", rejection.code.name(), rejection.detail)
            }
            Response::State(id, JobState::Queued) => format!("state {id} queued"),
            Response::State(id, JobState::Running) => format!("state {id} running"),
            Response::State(id, JobState::Done(record)) => format!("done {id} {record}"),
            Response::State(id, JobState::Failed(error)) => format!("failed {id} {error}"),
            Response::State(id, JobState::Partial(detail)) => format!("partial {id} {detail}"),
            Response::Progress {
                id,
                batches,
                shots,
                failures,
            } => format!("progress {id} {batches} {shots} {failures}"),
            Response::Health(snapshot) => snapshot.encode(),
            Response::Drained => "drained".to_owned(),
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on malformed input.
    pub fn parse(line: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["accepted", id] => Ok(Response::Accepted((*id).to_owned())),
            ["duplicate", id] => Ok(Response::Duplicate((*id).to_owned())),
            ["rejected", code, detail @ ..] if RejectCode::parse(code).is_some() => {
                Ok(Response::Rejected(Rejection {
                    code: RejectCode::parse(code).expect("guard checked"),
                    detail: detail.join(" "),
                }))
            }
            // Pre-code peers send free text; keep it readable as Other.
            ["rejected", reason @ ..] => {
                Ok(Response::rejected(RejectCode::Other, reason.join(" ")))
            }
            ["state", id, "queued"] => Ok(Response::State((*id).to_owned(), JobState::Queued)),
            ["state", id, "running"] => Ok(Response::State((*id).to_owned(), JobState::Running)),
            ["done", id, record @ ..] => Ok(Response::State(
                (*id).to_owned(),
                JobState::Done(record.join(" ")),
            )),
            ["failed", id, error @ ..] => Ok(Response::State(
                (*id).to_owned(),
                JobState::Failed(error.join(" ")),
            )),
            ["partial", id, detail @ ..] => Ok(Response::State(
                (*id).to_owned(),
                JobState::Partial(detail.join(" ")),
            )),
            ["progress", id, batches, shots, failures] => {
                let field = |token: &str| {
                    token
                        .parse::<u64>()
                        .map_err(|_| format!("malformed progress field {token:?}"))
                };
                Ok(Response::Progress {
                    id: (*id).to_owned(),
                    batches: field(batches)?,
                    shots: field(shots)?,
                    failures: field(failures)?,
                })
            }
            ["health", rest @ ..] => Ok(Response::Health(Box::new(HealthSnapshot::parse(rest)?))),
            ["drained"] => Ok(Response::Drained),
            _ => Err(format!("unknown response {line:?}")),
        }
    }
}

/// Writes one protocol message (a framed UTF-8 line) to a stream.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn send_line<W: Write>(writer: &mut W, line: &str) -> io::Result<()> {
    write_record(writer, line.as_bytes())?;
    writer.flush()
}

/// Reads one protocol message from a stream. `Ok(None)` on clean EOF.
///
/// # Errors
///
/// `InvalidData` for torn/corrupt frames or non-UTF-8 payloads,
/// otherwise the underlying read error.
pub fn recv_line<R: Read>(reader: &mut R) -> io::Result<Option<String>> {
    match read_record(reader)? {
        None => Ok(None),
        Some(payload) => String::from_utf8(payload)
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 protocol payload")),
    }
}

/// A blocking request/response client for the shot service.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with the given I/O timeout applied to reads and writes
    /// (`None` = block forever).
    ///
    /// # Errors
    ///
    /// Propagates connection and socket-option errors.
    pub fn connect<A: ToSocketAddrs>(addr: A, timeout: Option<Duration>) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(Client { stream })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the daemon hangs up mid-exchange (e.g. it
    /// was killed), `InvalidData` for malformed responses, otherwise
    /// the underlying socket error.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        send_line(&mut self.stream, &request.encode())?;
        match recv_line(&mut self.stream)? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon hung up before responding",
            )),
            Some(line) => Response::parse(&line)
                .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                id: "ler-1".to_owned(),
                deadline_ms: Some(2000),
                kind: JobKind::Ler {
                    per: 0.005,
                    kind: qpdo_surface17::experiment::LogicalErrorKind::ZL,
                    with_pf: true,
                    target: 3,
                    max_windows: 1000,
                },
            },
            JobSpec {
                id: "bell-1".to_owned(),
                deadline_ms: None,
                kind: JobKind::Bell { shots: 4 },
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        let mut requests: Vec<Request> = specs().into_iter().map(Request::Submit).collect();
        requests.push(Request::Query("ler-1".to_owned()));
        requests.push(Request::Progress("ler-1".to_owned()));
        requests.push(Request::Health);
        requests.push(Request::Drain);
        for request in requests {
            let line = request.encode();
            assert_eq!(Request::parse(&line), Ok(request), "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let snapshot = HealthSnapshot {
            accepting: false,
            queued: 3,
            running: 2,
            accepted: 17,
            completed: 11,
            failed: 1,
            shed: 4,
            duplicates: 2,
            breaker_trips: 1,
            reroutes: 5,
            partials: 3,
            batches: 417,
            checkpointing: false,
            breakers: [
                BreakerState::Open,
                BreakerState::Closed,
                BreakerState::HalfOpen,
            ],
        };
        let responses = vec![
            Response::Accepted("a".to_owned()),
            Response::Duplicate("a".to_owned()),
            Response::rejected(
                RejectCode::Overloaded,
                "admission queue full (8 jobs queued)",
            ),
            Response::rejected(RejectCode::Busy, ""),
            Response::State("a".to_owned(), JobState::Queued),
            Response::State("a".to_owned(), JobState::Running),
            Response::State("a".to_owned(), JobState::Done("1 2 3 4".to_owned())),
            Response::State(
                "a".to_owned(),
                JobState::Failed("deadline exceeded".to_owned()),
            ),
            Response::State(
                "a".to_owned(),
                JobState::Partial("1024 20000 13 0.0069 0.0215".to_owned()),
            ),
            Response::Progress {
                id: "a".to_owned(),
                batches: 16,
                shots: 1024,
                failures: 13,
            },
            Response::Health(Box::new(snapshot)),
            Response::Drained,
        ];
        for response in responses {
            let line = response.encode();
            assert_eq!(Response::parse(&line), Ok(response), "{line}");
        }
    }

    #[test]
    fn reject_codes_round_trip_and_legacy_text_parses_as_other() {
        for code in [
            RejectCode::Busy,
            RejectCode::Overloaded,
            RejectCode::Draining,
            RejectCode::Journal,
            RejectCode::Degraded,
            RejectCode::Pruned,
            RejectCode::UnknownJob,
            RejectCode::Malformed,
            RejectCode::Unavailable,
            RejectCode::Other,
        ] {
            assert_eq!(RejectCode::parse(code.name()), Some(code));
            let response = Response::rejected(code, "some detail text");
            assert_eq!(Response::parse(&response.encode()), Ok(response));
        }
        // A free-text rejection from a peer predating codes stays
        // readable and classifies conservatively.
        assert_eq!(
            Response::parse("rejected something went wrong"),
            Ok(Response::rejected(
                RejectCode::Other,
                "something went wrong"
            ))
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("submit").is_err());
        assert!(Request::parse("submit id - teleport 1").is_err());
        assert!(Request::parse("frobnicate").is_err());
        assert!(Request::parse("progress").is_err());
        assert!(Response::parse("").is_err());
        assert!(Response::parse("health nonsense").is_err());
        assert!(Response::parse("state id dancing").is_err());
        assert!(Response::parse("progress id 1 2 x").is_err());
        assert!(Response::parse("health ok checkpoint=maybe").is_err());
    }

    #[test]
    fn framed_lines_survive_a_byte_stream() {
        let mut buffer = Vec::new();
        send_line(&mut buffer, "health").unwrap();
        send_line(&mut buffer, "query job-1").unwrap();
        let mut cursor = std::io::Cursor::new(buffer);
        assert_eq!(recv_line(&mut cursor).unwrap().as_deref(), Some("health"));
        assert_eq!(
            recv_line(&mut cursor).unwrap().as_deref(),
            Some("query job-1")
        );
        assert_eq!(recv_line(&mut cursor).unwrap(), None);
    }
}

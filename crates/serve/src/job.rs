//! Job kinds the shot service executes, and the backends they run on
//! (`DESIGN.md` §9.2).
//!
//! A job is described entirely by its [`JobSpec`]: a client-chosen id
//! (the idempotency key), an optional deadline, and a [`JobKind`]. The
//! payload seed derives from the daemon's base seed and the job id
//! alone ([`job_seed`]), so re-executing a job after a crash — or on a
//! different backend after a breaker trip — reproduces the result
//! byte-for-byte (the packed and reference stabilizer engines are
//! differentially verified to agree bit-exactly).

use qpdo_bench::supervisor::{round_up_to_lanes, sliced_lane_seeds, substream_seed, CancelToken};
use qpdo_core::testbench::random_circuit;
use qpdo_core::{ChpCore, ControlStack, PauliFrameLayer, ShotError, SvCore};
use qpdo_rng::rngs::StdRng;
use qpdo_rng::SeedableRng;
use qpdo_stabilizer::{CliffordTableau, StabilizerSim, LANES};
use qpdo_statevector::Complex;
use qpdo_stats::wilson_interval;
use qpdo_surface::experiment::{run_ler_surface_resumable, SurfaceLerConfig, SurfaceProgress};
use qpdo_surface::CheckKind;
use qpdo_surface17::experiment::{run_ler_partial, LerConfig, LerOutcome, LogicalErrorKind};
use qpdo_surface17::{logical_cnot, run_ler_sliced, NinjaStar, StarLayout};

use crate::wal::Checkpoint;

#[cfg(feature = "reference")]
use qpdo_stabilizer::ReferenceTableau;
#[cfg(feature = "reference")]
use qpdo_surface17::experiment::run_ler_reference_cancellable;

/// The longest job id the service accepts.
pub const MAX_JOB_ID_LEN: usize = 128;

/// The most shots a single `ler_surface` job may request. One decode
/// per shot at d = 13 makes this the service's heaviest compute-bound
/// kind; bigger sweeps should be split across jobs so deadlines,
/// cancellation, and fleet rebalancing stay responsive.
pub const MAX_SURFACE_SHOTS: u64 = 1 << 20;

/// The largest code distance a `ler_surface` job may request — the top
/// of the distance-scaling workload (`exp_distance_scaling`).
pub const MAX_SURFACE_DISTANCE: usize = 13;

/// An execution backend a job can be routed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The word-packed production stabilizer engine.
    Packed,
    /// The cell-per-entry reference tableau (differential-oracle twin).
    Reference,
    /// The full state-vector simulator.
    Statevector,
}

impl Backend {
    /// Every backend, in health-report order.
    pub const ALL: [Backend; 3] = [Backend::Packed, Backend::Reference, Backend::Statevector];

    /// The lowercase wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Packed => "packed",
            Backend::Reference => "reference",
            Backend::Statevector => "statevector",
        }
    }

    /// Parses a wire name back into a backend.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Backend::ALL.into_iter().find(|b| b.name() == name)
    }

    /// This backend's index into per-backend state arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// What a job computes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobKind {
    /// One Surface-17 logical-error-rate point (the Section 5.3
    /// experiment): runs windows until `target` logical errors or
    /// `max_windows`, whichever first.
    Ler {
        /// Physical error rate of the depolarizing model.
        per: f64,
        /// Which logical error to watch for.
        kind: LogicalErrorKind,
        /// Whether the stack includes a Pauli-frame layer.
        with_pf: bool,
        /// Stop after this many logical errors.
        target: u64,
        /// Hard window cap.
        max_windows: u64,
    },
    /// A shot-sliced ensemble of Surface-17 LER trajectories: `shots`
    /// independent runs of the [`JobKind::Ler`] experiment, executed 64
    /// per pass on the lane-sliced engine (`DESIGN.md` §10). `shots`
    /// rounds up to a lane multiple at execution; the result is the
    /// executed shot count followed by the summed ten-field record.
    LerSliced {
        /// Physical error rate of the depolarizing model.
        per: f64,
        /// Which logical error to watch for.
        kind: LogicalErrorKind,
        /// Whether the stack includes a (lane-masked) Pauli frame.
        with_pf: bool,
        /// Per-trajectory stop: this many logical errors.
        target: u64,
        /// Per-trajectory hard window cap.
        max_windows: u64,
        /// Trajectories to run (rounded up to a multiple of 64).
        shots: u64,
    },
    /// One random-circuit Pauli-frame verification (Section 5.2.2):
    /// framed state-vector execution must match the reference up to
    /// global phase. The result is the classically-tracked gate count.
    RandomCircuit {
        /// Qubits in the random circuit.
        qubits: usize,
        /// Gates in the random circuit.
        gates: usize,
    },
    /// A code-capacity LER point on the generic rotated surface code
    /// (`DESIGN.md` §13): `shots` Monte-Carlo shots of Bernoulli `X`
    /// errors at rate `per`, syndromes extracted through the packed
    /// 64-lane sliced engine and decoded by the union-find decoder
    /// (exact matching below its defect limit). The result is
    /// `<shots> <failures> <defects>`.
    LerSurface {
        /// Code distance (odd, `3..=MAX_SURFACE_DISTANCE`).
        d: usize,
        /// Per-data-qubit, per-shot error probability.
        per: f64,
        /// Monte-Carlo shots (at most [`MAX_SURFACE_SHOTS`]).
        shots: u64,
    },
    /// An odd-Bell-state histogram (Section 5.2.3): logical
    /// `(|01⟩+|10⟩)/√2` on two ninja stars, measured `shots` times
    /// with a Pauli-frame layer. The result is the four ket counts.
    Bell {
        /// Shots to accumulate.
        shots: u64,
    },
}

impl JobKind {
    /// The wire/journal encoding: space-separated tokens, first token
    /// the kind tag.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            JobKind::Ler {
                per,
                kind,
                with_pf,
                target,
                max_windows,
            } => {
                let kind = match kind {
                    LogicalErrorKind::XL => "XL",
                    LogicalErrorKind::ZL => "ZL",
                };
                format!(
                    "ler {per} {kind} {} {target} {max_windows}",
                    u8::from(*with_pf)
                )
            }
            JobKind::LerSliced {
                per,
                kind,
                with_pf,
                target,
                max_windows,
                shots,
            } => {
                let kind = match kind {
                    LogicalErrorKind::XL => "XL",
                    LogicalErrorKind::ZL => "ZL",
                };
                format!(
                    "ler_sliced {per} {kind} {} {target} {max_windows} {shots}",
                    u8::from(*with_pf)
                )
            }
            JobKind::LerSurface { d, per, shots } => format!("ler_surface {d} {per} {shots}"),
            JobKind::RandomCircuit { qubits, gates } => format!("rc {qubits} {gates}"),
            JobKind::Bell { shots } => format!("bell {shots}"),
        }
    }

    /// Parses [`encode`](Self::encode) output (already split into
    /// tokens). Returns a human-readable reason on malformed input.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse(tokens: &[&str]) -> Result<Self, String> {
        let bad = |what: &str| format!("malformed {what} job spec: {tokens:?}");
        match tokens {
            ["ler", per, kind, with_pf, target, max_windows] => {
                let kind = match *kind {
                    "XL" => LogicalErrorKind::XL,
                    "ZL" => LogicalErrorKind::ZL,
                    _ => return Err(bad("ler")),
                };
                let per: f64 = per.parse().map_err(|_| bad("ler"))?;
                if !(0.0..=1.0).contains(&per) {
                    return Err(format!("ler rate {per} outside [0, 1]"));
                }
                let with_pf = match *with_pf {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad("ler")),
                };
                let target = target.parse().map_err(|_| bad("ler"))?;
                let max_windows: u64 = max_windows.parse().map_err(|_| bad("ler"))?;
                if target == 0 || max_windows == 0 {
                    return Err(bad("ler"));
                }
                Ok(JobKind::Ler {
                    per,
                    kind,
                    with_pf,
                    target,
                    max_windows,
                })
            }
            ["ler_sliced", per, kind, with_pf, target, max_windows, shots] => {
                let kind = match *kind {
                    "XL" => LogicalErrorKind::XL,
                    "ZL" => LogicalErrorKind::ZL,
                    _ => return Err(bad("ler_sliced")),
                };
                let per: f64 = per.parse().map_err(|_| bad("ler_sliced"))?;
                if !(0.0..=1.0).contains(&per) {
                    return Err(format!("ler_sliced rate {per} outside [0, 1]"));
                }
                let with_pf = match *with_pf {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad("ler_sliced")),
                };
                let target = target.parse().map_err(|_| bad("ler_sliced"))?;
                let max_windows: u64 = max_windows.parse().map_err(|_| bad("ler_sliced"))?;
                let shots: u64 = shots.parse().map_err(|_| bad("ler_sliced"))?;
                if target == 0 || max_windows == 0 || shots == 0 {
                    return Err(bad("ler_sliced"));
                }
                Ok(JobKind::LerSliced {
                    per,
                    kind,
                    with_pf,
                    target,
                    max_windows,
                    shots,
                })
            }
            ["ler_surface", d, per, shots] => {
                let d: usize = d.parse().map_err(|_| bad("ler_surface"))?;
                if !(3..=MAX_SURFACE_DISTANCE).contains(&d) || d.is_multiple_of(2) {
                    return Err(format!(
                        "ler_surface distance {d} outside odd 3..={MAX_SURFACE_DISTANCE}"
                    ));
                }
                let per: f64 = per.parse().map_err(|_| bad("ler_surface"))?;
                if !(0.0..=1.0).contains(&per) {
                    return Err(format!("ler_surface rate {per} outside [0, 1]"));
                }
                let shots: u64 = shots.parse().map_err(|_| bad("ler_surface"))?;
                if shots == 0 || shots > MAX_SURFACE_SHOTS {
                    return Err(format!(
                        "ler_surface shots {shots} outside 1..={MAX_SURFACE_SHOTS}"
                    ));
                }
                Ok(JobKind::LerSurface { d, per, shots })
            }
            ["rc", qubits, gates] => {
                let qubits: usize = qubits.parse().map_err(|_| bad("rc"))?;
                let gates: usize = gates.parse().map_err(|_| bad("rc"))?;
                if qubits == 0 || qubits > 16 || gates == 0 {
                    return Err(bad("rc"));
                }
                Ok(JobKind::RandomCircuit { qubits, gates })
            }
            ["bell", shots] => {
                let shots: u64 = shots.parse().map_err(|_| bad("bell"))?;
                if shots == 0 {
                    return Err(bad("bell"));
                }
                Ok(JobKind::Bell { shots })
            }
            _ => Err(bad("unknown-kind")),
        }
    }

    /// Total shots (or windows) this job would complete uninterrupted —
    /// the denominator a `Partial` outcome reports its completed prefix
    /// against.
    #[must_use]
    pub fn shot_target(&self) -> u64 {
        match self {
            JobKind::Ler { max_windows, .. } => *max_windows,
            JobKind::LerSliced { shots, .. } => round_up_to_lanes(*shots),
            JobKind::LerSurface { shots, .. } | JobKind::Bell { shots } => *shots,
            JobKind::RandomCircuit { .. } => 1,
        }
    }

    /// Whether a durable [`Checkpoint`] of this kind can seed a resumed
    /// execution that is byte-identical to a scratch run. True exactly
    /// for the batch-seeded 64-lane sweeps: each batch draws from its
    /// own deterministic RNG substream, so replaying the remaining
    /// batches on top of checkpointed counters reproduces the full run.
    #[must_use]
    pub fn resumable(&self) -> bool {
        matches!(self, JobKind::LerSliced { .. } | JobKind::LerSurface { .. })
    }

    /// The backends this kind can run on, in routing-preference order.
    #[must_use]
    pub fn backend_preference(&self) -> &'static [Backend] {
        match self {
            #[cfg(feature = "reference")]
            JobKind::Ler { .. } | JobKind::Bell { .. } => &[Backend::Packed, Backend::Reference],
            #[cfg(not(feature = "reference"))]
            JobKind::Ler { .. } | JobKind::Bell { .. } => &[Backend::Packed],
            // The lane-sliced engine lives on the packed word planes
            // only; there is no reference twin to reroute to.
            JobKind::LerSliced { .. } | JobKind::LerSurface { .. } => &[Backend::Packed],
            JobKind::RandomCircuit { .. } => &[Backend::Statevector],
        }
    }
}

/// One job as accepted by the daemon.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Client-chosen id: the idempotency key. Non-empty, at most
    /// [`MAX_JOB_ID_LEN`] bytes, no whitespace or commas.
    pub id: String,
    /// Per-job deadline in milliseconds from admission (`None` = no
    /// deadline).
    pub deadline_ms: Option<u64>,
    /// What to compute.
    pub kind: JobKind,
}

impl JobSpec {
    /// Validates a candidate job id.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for empty, oversized, or
    /// delimiter-containing ids.
    pub fn validate_id(id: &str) -> Result<(), String> {
        if id.is_empty() {
            return Err("job id must not be empty".to_owned());
        }
        if id.len() > MAX_JOB_ID_LEN {
            return Err(format!("job id longer than {MAX_JOB_ID_LEN} bytes"));
        }
        if id.contains(|c: char| c.is_whitespace() || c == ',') {
            return Err("job id must not contain whitespace or commas".to_owned());
        }
        Ok(())
    }

    /// The wire/journal tail after the id: `<deadline_ms|-> <kind...>`.
    #[must_use]
    pub fn encode_tail(&self) -> String {
        match self.deadline_ms {
            Some(ms) => format!("{ms} {}", self.kind.encode()),
            None => format!("- {}", self.kind.encode()),
        }
    }

    /// Parses `<id> <deadline_ms|-> <kind...>` tokens.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason on malformed input.
    pub fn parse(tokens: &[&str]) -> Result<Self, String> {
        let [id, deadline, kind @ ..] = tokens else {
            return Err(format!("malformed job spec: {tokens:?}"));
        };
        Self::validate_id(id)?;
        let deadline_ms = match *deadline {
            "-" => None,
            ms => {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("malformed deadline {ms:?}"))?;
                if ms == 0 {
                    return Err("deadline must be at least 1 ms".to_owned());
                }
                Some(ms)
            }
        };
        Ok(JobSpec {
            id: (*id).to_owned(),
            deadline_ms,
            kind: JobKind::parse(kind)?,
        })
    }
}

/// The deterministic payload seed for a job: the attempt-0 supervisor
/// substream keyed by the job id, exactly what the worker pool derives
/// for a batch with `point = id, batch = 0` under the stable seed
/// policy. Crash recovery and breaker rerouting both rely on this being
/// a pure function of `(base_seed, id)`.
#[must_use]
pub fn job_seed(base_seed: u64, id: &str) -> u64 {
    substream_seed(base_seed, id, 0, 0)
}

/// How a tracked execution ([`execute_tracked`]) ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Execution {
    /// The job ran to completion: the whitespace-separated wire record.
    Done(String),
    /// Cooperative cancellation stopped the job early.
    Stopped {
        /// The accumulated prefix, when the kind tracks one (`None`
        /// when the cancellation landed before any progress, or the
        /// kind is atomic). For [resumable](JobKind::resumable) kinds
        /// this equals the last checkpoint reported to `on_batch`.
        checkpoint: Option<Checkpoint>,
        /// The human-readable stop reason, byte-identical to the
        /// [`ShotError::Cancelled`] message [`execute`] raises for the
        /// same stop.
        reason: String,
    },
}

/// Executes a job on a specific backend with a specific payload seed,
/// returning the whitespace-separated result record.
///
/// Records by kind: `ler` → the ten-field [`LerOutcome`] record;
/// `ler_sliced` → the executed shot count followed by the ten-field
/// sum over all trajectories; `ler_surface` → `<shots> <failures>
/// <defects>`; `rc` → the classically-tracked gate count; `bell` → the
/// four ket counts in `|00⟩ |01⟩ |10⟩ |11⟩` order.
///
/// # Errors
///
/// Returns [`ShotError::PoolFailure`] when the backend cannot run the
/// kind (e.g. a 17-qubit LER point on the state-vector engine), a
/// divergence for failed verifications, [`ShotError::Cancelled`] when
/// the token stopped the run, or the underlying stack error.
pub fn execute(
    kind: &JobKind,
    backend: Backend,
    seed: u64,
    cancel: &CancelToken,
) -> Result<String, ShotError> {
    match execute_tracked(kind, backend, seed, cancel, None, &mut |_| {})? {
        Execution::Done(record) => Ok(record),
        Execution::Stopped { reason, .. } => Err(ShotError::Cancelled { reason }),
    }
}

/// [`execute`] with checkpoint plumbing: `resume` seeds a shot sweep
/// with a previously durable [`Checkpoint`] (skipping its completed
/// batches — byte-identical to scratch because every batch draws from
/// its own deterministic substream), and `on_batch` observes the
/// accumulated checkpoint after every completed batch (the daemon's
/// progress sink journals a paced subset of these). Kinds that are not
/// [resumable](JobKind::resumable) ignore `resume` and never call
/// `on_batch`; a cancelled `ler` run still surfaces its completed
/// window prefix through [`Execution::Stopped`] so a deadline can turn
/// it into an anytime `Partial` rather than discarding the compute.
///
/// # Errors
///
/// Same contract as [`execute`], except cooperative cancellation is
/// *not* an error for kinds that track progress — it returns
/// [`Execution::Stopped`] carrying the usable prefix.
pub fn execute_tracked(
    kind: &JobKind,
    backend: Backend,
    seed: u64,
    cancel: &CancelToken,
    resume: Option<&Checkpoint>,
    on_batch: &mut dyn FnMut(&Checkpoint),
) -> Result<Execution, ShotError> {
    let unsupported = || {
        Err(ShotError::PoolFailure(format!(
            "backend {} cannot run this job kind",
            backend.name()
        )))
    };
    match (kind, backend) {
        (
            JobKind::Ler {
                per,
                kind,
                with_pf,
                target,
                max_windows,
            },
            Backend::Packed,
        ) => {
            let config = ler_config(*per, *kind, *with_pf, *target, *max_windows, seed);
            let (outcome, stopped) = run_ler_partial(&config, &|| cancel.is_cancelled())?;
            if stopped {
                // Windows are the scalar run's shot unit: one window per
                // "batch", so the checkpoint stays plausible (shots ≤
                // batches·64) without pretending the run is resumable.
                let checkpoint = (outcome.windows > 0).then(|| Checkpoint {
                    batches: outcome.windows,
                    shots: outcome.windows,
                    failures: outcome.logical_errors,
                    counters: Vec::new(),
                });
                return Ok(Execution::Stopped {
                    checkpoint,
                    reason: format!("ler run cancelled after {} windows", outcome.windows),
                });
            }
            Ok(Execution::Done(outcome.to_record()))
        }
        #[cfg(feature = "reference")]
        (
            JobKind::Ler {
                per,
                kind,
                with_pf,
                target,
                max_windows,
            },
            Backend::Reference,
        ) => {
            let config = ler_config(*per, *kind, *with_pf, *target, *max_windows, seed);
            Ok(Execution::Done(
                run_ler_reference_cancellable(&config, &|| cancel.is_cancelled())?.to_record(),
            ))
        }
        (
            JobKind::LerSliced {
                per,
                kind,
                with_pf,
                target,
                max_windows,
                shots,
            },
            Backend::Packed,
        ) => {
            let config = ler_config(*per, *kind, *with_pf, *target, *max_windows, seed);
            sliced_ler_tracked(&config, *shots, seed, cancel, resume, on_batch)
        }
        (JobKind::LerSurface { d, per, shots }, Backend::Packed) => {
            let config = SurfaceLerConfig {
                distance: *d,
                physical_error_rate: *per,
                error: CheckKind::X,
                shots: *shots,
                seed,
            };
            // `counters[0]` carries the kind-specific defect total; a
            // checkpoint without it (foreign or truncated) resumes the
            // defect count from zero, which only skews the historical
            // counter, never the failure estimate.
            let surface_resume = resume.map(|c| SurfaceProgress {
                batches: c.batches,
                shots: c.shots,
                failures: c.failures,
                defects: c.counters.first().copied().unwrap_or(0),
            });
            let mut last = resume.cloned();
            let (outcome, stopped) = run_ler_surface_resumable(
                &config,
                surface_resume.as_ref(),
                &|| cancel.is_cancelled(),
                &mut |p| {
                    let checkpoint = Checkpoint {
                        batches: p.batches,
                        shots: p.shots,
                        failures: p.failures,
                        counters: vec![p.defects],
                    };
                    on_batch(&checkpoint);
                    last = Some(checkpoint);
                },
            )?;
            if stopped {
                return Ok(Execution::Stopped {
                    checkpoint: last,
                    reason: format!(
                        "ler_surface job cancelled after {}/{shots} shots",
                        outcome.shots
                    ),
                });
            }
            Ok(Execution::Done(format!(
                "{} {} {}",
                outcome.shots, outcome.failures, outcome.defects
            )))
        }
        (JobKind::Bell { shots }, Backend::Packed) => {
            let counts = bell_counts::<StabilizerSim>(*shots, seed, cancel)?;
            Ok(Execution::Done(format!(
                "{} {} {} {}",
                counts[0], counts[1], counts[2], counts[3]
            )))
        }
        #[cfg(feature = "reference")]
        (JobKind::Bell { shots }, Backend::Reference) => {
            let counts = bell_counts::<ReferenceTableau>(*shots, seed, cancel)?;
            Ok(Execution::Done(format!(
                "{} {} {} {}",
                counts[0], counts[1], counts[2], counts[3]
            )))
        }
        (JobKind::RandomCircuit { qubits, gates }, Backend::Statevector) => Ok(Execution::Done(
            random_circuit_record(*qubits, *gates, seed)?,
        )),
        _ => unsupported(),
    }
}

/// The wire detail of a `Partial` outcome:
/// `<shots> <target> <failures> <ci_lo> <ci_hi>` — the completed-shot
/// prefix, the uninterrupted total it was heading for, the failures
/// observed, and the 95% Wilson score interval on the failure rate.
#[must_use]
pub fn partial_detail(kind: &JobKind, checkpoint: &Checkpoint) -> String {
    let (lo, hi) = wilson_interval(checkpoint.failures, checkpoint.shots, 1.96);
    format!(
        "{} {} {} {lo:.6} {hi:.6}",
        checkpoint.shots,
        kind.shot_target(),
        checkpoint.failures
    )
}

fn ler_config(
    per: f64,
    kind: LogicalErrorKind,
    with_pf: bool,
    target: u64,
    max_windows: u64,
    seed: u64,
) -> LerConfig {
    LerConfig {
        physical_error_rate: per,
        kind,
        with_pauli_frame: with_pf,
        target_logical_errors: target,
        max_windows,
        seed,
    }
}

/// The `ler_sliced` workload: `shots` rounded up to a lane multiple,
/// run 64 trajectories per pass on the sliced engine, summed into one
/// `"<executed_shots> <ten-field record>"` line.
///
/// Lane `k` of batch `b` seeds from the supervisor substream
/// `(job_seed, "lanes", b·64 + k)` — a pure function of
/// `(base_seed, id, batch, lane)`, so crash recovery and journal-retry
/// re-executions reproduce the record byte-for-byte, each lane's
/// trajectory equals the scalar run with that lane's seed (the
/// differential contract of `surface17::sliced`), and resuming from a
/// checkpoint's batch count replays exactly the remaining batches.
///
/// The checkpoint's kind-specific `counters` hold the running ten-field
/// [`LerOutcome`] sum in record order; a checkpoint without all ten
/// (foreign or truncated) is ignored and the sweep restarts from
/// scratch rather than resuming onto corrupt counters.
fn sliced_ler_tracked(
    config: &LerConfig,
    shots: u64,
    seed: u64,
    cancel: &CancelToken,
    resume: Option<&Checkpoint>,
    on_batch: &mut dyn FnMut(&Checkpoint),
) -> Result<Execution, ShotError> {
    let executed = round_up_to_lanes(shots);
    let batches = executed / LANES as u64;
    let resume = resume.filter(|c| c.counters.len() == 10 && c.batches <= batches);
    let mut total = match resume {
        Some(c) => LerOutcome {
            windows: c.counters[0],
            logical_errors: c.counters[1],
            ops_above_frame: c.counters[2],
            slots_above_frame: c.counters[3],
            ops_below_frame: c.counters[4],
            slots_below_frame: c.counters[5],
            injected: qpdo_core::ErrorCounts {
                single_qubit: c.counters[6],
                two_qubit: c.counters[7],
                measurement: c.counters[8],
                idle: c.counters[9],
            },
        },
        None => LerOutcome {
            windows: 0,
            logical_errors: 0,
            ops_above_frame: 0,
            slots_above_frame: 0,
            ops_below_frame: 0,
            slots_below_frame: 0,
            injected: qpdo_core::ErrorCounts::default(),
        },
    };
    let start = resume.map_or(0, |c| c.batches);
    // The checkpoint's `failures` counts failed *trajectories* (at
    // least one logical error), not summed logical errors — a
    // multi-error target could push the sum past the shot count and
    // trip the replay plausibility gate; the per-shot count is also
    // what the Partial estimator's Wilson interval is about.
    let mut failed_shots = resume.map_or(0, |c| c.failures);
    let mut last = resume.cloned();
    for batch in start..batches {
        let lane_seeds = sliced_lane_seeds(seed, "lanes", batch);
        let (outcomes, stopped) = run_ler_sliced(config, &lane_seeds, &|| cancel.is_cancelled())?;
        if stopped {
            return Ok(Execution::Stopped {
                checkpoint: last,
                reason: format!(
                    "ler_sliced job cancelled after {}/{executed} shots",
                    batch * LANES as u64
                ),
            });
        }
        for outcome in &outcomes {
            failed_shots += u64::from(outcome.logical_errors > 0);
            total.windows += outcome.windows;
            total.logical_errors += outcome.logical_errors;
            total.ops_above_frame += outcome.ops_above_frame;
            total.slots_above_frame += outcome.slots_above_frame;
            total.ops_below_frame += outcome.ops_below_frame;
            total.slots_below_frame += outcome.slots_below_frame;
            total.injected.single_qubit += outcome.injected.single_qubit;
            total.injected.two_qubit += outcome.injected.two_qubit;
            total.injected.measurement += outcome.injected.measurement;
            total.injected.idle += outcome.injected.idle;
        }
        let checkpoint = Checkpoint {
            batches: batch + 1,
            shots: (batch + 1) * LANES as u64,
            failures: failed_shots,
            counters: vec![
                total.windows,
                total.logical_errors,
                total.ops_above_frame,
                total.slots_above_frame,
                total.ops_below_frame,
                total.slots_below_frame,
                total.injected.single_qubit,
                total.injected.two_qubit,
                total.injected.measurement,
                total.injected.idle,
            ],
        };
        on_batch(&checkpoint);
        last = Some(checkpoint);
    }
    Ok(Execution::Done(format!("{executed} {}", total.to_record())))
}

/// The odd-Bell workload of Section 5.2.3, generic over the stabilizer
/// tableau so the packed and reference backends run the identical
/// circuit (and, drawing the stack RNG in the same order, produce
/// identical counts).
fn bell_counts<T: CliffordTableau>(
    shots: u64,
    seed: u64,
    cancel: &CancelToken,
) -> Result<[u64; 4], ShotError> {
    let mut counts = [0u64; 4];
    for shot in 0..shots {
        if cancel.is_cancelled() {
            return Err(ShotError::Cancelled {
                reason: format!("bell job cancelled after {shot}/{shots} shots"),
            });
        }
        let mut stack = ControlStack::with_seed(ChpCore::<T>::default(), seed.wrapping_add(shot));
        stack.push_layer(PauliFrameLayer::new());
        stack.create_qubits(26)?;
        let mut a = NinjaStar::new(StarLayout::with_shared_ancillas(0, 18));
        let mut b = NinjaStar::new(StarLayout::with_shared_ancillas(9, 18));
        a.initialize_zero(&mut stack)?;
        b.initialize_zero(&mut stack)?;
        a.apply_logical_h(&mut stack)?;
        let circuit = logical_cnot(
            a.layout(),
            a.properties().rotation,
            b.layout(),
            b.properties().rotation,
        );
        stack.execute_now(circuit)?;
        a.apply_logical_x(&mut stack)?;
        let ma = a.measure_logical(&mut stack)?;
        let mb = b.measure_logical(&mut stack)?;
        counts[2 * usize::from(ma) + usize::from(mb)] += 1;
    }
    Ok(counts)
}

/// `other = phase * this`, when states match up to global phase.
fn global_phase(a: &[Complex], b: &[Complex], tol: f64) -> Option<Complex> {
    let (anchor, _) = a
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.norm_sqr().total_cmp(&y.1.norm_sqr()))?;
    let (ra, rb) = (a[anchor], b[anchor]);
    if ra.norm() < tol || rb.norm() < tol {
        return None;
    }
    let phase = (rb * ra.conj()).scale(1.0 / ra.norm_sqr());
    a.iter()
        .zip(b)
        .all(|(&x, &y)| (x * phase).approx_eq(y, tol))
        .then_some(phase)
}

/// The random-circuit verification of Section 5.2.2: framed
/// state-vector execution must equal the reference up to global phase.
fn random_circuit_record(qubits: usize, gates: usize, seed: u64) -> Result<String, ShotError> {
    let mut workload_rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let circuit = random_circuit(qubits, gates, &mut workload_rng);
    let paulis = circuit.census().pauli_gates as u64;

    let mut reference = ControlStack::with_seed(SvCore::new(), seed);
    reference.create_qubits(qubits)?;
    reference.execute_now(circuit.clone())?;

    let mut framed = ControlStack::with_seed(SvCore::new(), seed);
    framed.push_layer(PauliFrameLayer::new());
    framed.create_qubits(qubits)?;
    framed.execute_now(circuit)?;
    let pf: &PauliFrameLayer = framed
        .find_layer()
        .ok_or_else(|| ShotError::PoolFailure("frame layer vanished".to_owned()))?;
    let filtered = pf.filtered_gates();
    if filtered != paulis {
        return Err(ShotError::Divergence {
            detail: format!("{filtered} gates filtered, circuit holds {paulis} Paulis"),
        });
    }
    framed.flush_pauli_frames()?;

    let a = reference.quantum_state()?;
    let b = framed.quantum_state()?;
    let (a, b) = (
        a.amplitudes().ok_or(qpdo_core::CoreError::NoQubits)?,
        b.amplitudes().ok_or(qpdo_core::CoreError::NoQubits)?,
    );
    if global_phase(a, b, 1e-7).is_none() {
        return Err(ShotError::Divergence {
            detail: "framed state differs from reference beyond global phase".to_owned(),
        });
    }
    Ok(filtered.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> Vec<JobKind> {
        vec![
            JobKind::Ler {
                per: 0.0075,
                kind: LogicalErrorKind::XL,
                with_pf: true,
                target: 2,
                max_windows: 500,
            },
            JobKind::Ler {
                per: 1e-3,
                kind: LogicalErrorKind::ZL,
                with_pf: false,
                target: 1,
                max_windows: 100,
            },
            JobKind::LerSliced {
                per: 0.008,
                kind: LogicalErrorKind::XL,
                with_pf: true,
                target: 1,
                max_windows: 250,
                shots: 100,
            },
            JobKind::LerSurface {
                d: 9,
                per: 0.05,
                shots: 1_000,
            },
            JobKind::RandomCircuit {
                qubits: 4,
                gates: 30,
            },
            JobKind::Bell { shots: 3 },
        ]
    }

    #[test]
    fn kind_encoding_round_trips() {
        for kind in kinds() {
            let text = kind.encode();
            let tokens: Vec<&str> = text.split_whitespace().collect();
            assert_eq!(JobKind::parse(&tokens), Ok(kind), "{text}");
        }
    }

    #[test]
    fn kind_parse_rejects_nonsense() {
        for tokens in [
            &["ler", "0.5", "YL", "1", "2", "3"][..],
            &["ler", "2.0", "XL", "1", "2", "3"],
            &["ler", "0.5", "XL", "1", "0", "3"],
            &["ler_sliced", "0.5", "XL", "1", "2", "3", "0"],
            &["ler_sliced", "1.5", "XL", "1", "2", "3", "64"],
            &["ler_sliced", "0.5", "XL", "1", "0", "3", "64"],
            &["ler_surface", "4", "0.05", "100"],
            &["ler_surface", "15", "0.05", "100"],
            &["ler_surface", "1", "0.05", "100"],
            &["ler_surface", "5", "1.5", "100"],
            &["ler_surface", "5", "0.05", "0"],
            &["ler_surface", "5", "0.05", "1048577"],
            &["rc", "0", "10"],
            &["rc", "30", "10"],
            &["bell", "0"],
            &["teleport", "1"],
            &[],
        ] {
            assert!(JobKind::parse(tokens).is_err(), "{tokens:?}");
        }
    }

    #[test]
    fn spec_encoding_round_trips() {
        for deadline_ms in [None, Some(1500)] {
            let spec = JobSpec {
                id: "job-007".to_owned(),
                deadline_ms,
                kind: JobKind::Bell { shots: 2 },
            };
            let text = format!("{} {}", spec.id, spec.encode_tail());
            let tokens: Vec<&str> = text.split_whitespace().collect();
            assert_eq!(JobSpec::parse(&tokens), Ok(spec));
        }
    }

    #[test]
    fn spec_ids_are_validated() {
        assert!(JobSpec::validate_id("job-1").is_ok());
        assert!(JobSpec::validate_id("").is_err());
        assert!(JobSpec::validate_id("has space").is_err());
        assert!(JobSpec::validate_id("has,comma").is_err());
        assert!(JobSpec::validate_id(&"x".repeat(MAX_JOB_ID_LEN + 1)).is_err());
    }

    #[test]
    fn job_seed_is_a_pure_function_of_base_and_id() {
        assert_eq!(job_seed(2016, "a"), job_seed(2016, "a"));
        assert_ne!(job_seed(2016, "a"), job_seed(2016, "b"));
        assert_ne!(job_seed(2016, "a"), job_seed(2017, "a"));
    }

    #[cfg(feature = "reference")]
    #[test]
    fn packed_and_reference_backends_agree_byte_for_byte() {
        let cancel = CancelToken::new();
        let seed = job_seed(2016, "agree-test");
        for kind in [
            JobKind::Ler {
                per: 0.008,
                kind: LogicalErrorKind::XL,
                with_pf: true,
                target: 1,
                max_windows: 400,
            },
            JobKind::Bell { shots: 2 },
        ] {
            let packed = execute(&kind, Backend::Packed, seed, &cancel).unwrap();
            let reference = execute(&kind, Backend::Reference, seed, &cancel).unwrap();
            assert_eq!(packed, reference, "{kind:?}");
        }
    }

    #[test]
    fn unsupported_backend_is_a_routing_error() {
        let cancel = CancelToken::new();
        let result = execute(
            &JobKind::Bell { shots: 1 },
            Backend::Statevector,
            1,
            &cancel,
        );
        assert!(matches!(result, Err(ShotError::PoolFailure(_))));
    }

    #[test]
    fn cancelled_bell_job_reports_cancellation() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = execute(&JobKind::Bell { shots: 5 }, Backend::Packed, 1, &cancel);
        assert!(matches!(result, Err(ShotError::Cancelled { .. })));
    }

    #[test]
    fn cancelled_ler_job_reports_cancellation() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let kind = JobKind::Ler {
            per: 0.005,
            kind: LogicalErrorKind::XL,
            with_pf: true,
            target: 50,
            max_windows: 1_000_000,
        };
        // The window loop consults the token, so even a huge job stops
        // immediately — this is what lets a deadline watcher cancel a
        // running LER job instead of stalling the round.
        let result = execute(&kind, Backend::Packed, 1, &cancel);
        assert!(matches!(result, Err(ShotError::Cancelled { .. })));
    }

    #[test]
    fn sliced_ler_job_sums_its_scalar_lane_twins() {
        use qpdo_surface17::experiment::run_ler;

        let cancel = CancelToken::new();
        let seed = job_seed(2016, "sliced-agree");
        let config = LerConfig {
            physical_error_rate: 0.01,
            kind: LogicalErrorKind::XL,
            with_pauli_frame: true,
            target_logical_errors: 1,
            max_windows: 100,
            seed,
        };
        let kind = JobKind::LerSliced {
            per: config.physical_error_rate,
            kind: config.kind,
            with_pf: config.with_pauli_frame,
            target: config.target_logical_errors,
            max_windows: config.max_windows,
            // Rounds up to one full 64-lane pass.
            shots: 10,
        };
        let record = execute(&kind, Backend::Packed, seed, &cancel).unwrap();

        let mut expected = LerOutcome {
            windows: 0,
            logical_errors: 0,
            ops_above_frame: 0,
            slots_above_frame: 0,
            ops_below_frame: 0,
            slots_below_frame: 0,
            injected: qpdo_core::ErrorCounts::default(),
        };
        for lane_seed in sliced_lane_seeds(seed, "lanes", 0) {
            let scalar = run_ler(&LerConfig {
                seed: lane_seed,
                ..config
            })
            .unwrap();
            expected.windows += scalar.windows;
            expected.logical_errors += scalar.logical_errors;
            expected.ops_above_frame += scalar.ops_above_frame;
            expected.slots_above_frame += scalar.slots_above_frame;
            expected.ops_below_frame += scalar.ops_below_frame;
            expected.slots_below_frame += scalar.slots_below_frame;
            expected.injected.single_qubit += scalar.injected.single_qubit;
            expected.injected.two_qubit += scalar.injected.two_qubit;
            expected.injected.measurement += scalar.injected.measurement;
            expected.injected.idle += scalar.injected.idle;
        }
        assert_eq!(record, format!("64 {}", expected.to_record()));
    }

    #[test]
    fn cancelled_sliced_ler_job_reports_cancellation() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let kind = JobKind::LerSliced {
            per: 0.005,
            kind: LogicalErrorKind::ZL,
            with_pf: false,
            target: 50,
            max_windows: 1_000_000,
            shots: 640,
        };
        let result = execute(&kind, Backend::Packed, 1, &cancel);
        assert!(matches!(result, Err(ShotError::Cancelled { .. })));
    }

    #[test]
    fn surface_ler_job_is_deterministic_and_reports_real_work() {
        let cancel = CancelToken::new();
        let seed = job_seed(2016, "surface-det");
        let kind = JobKind::LerSurface {
            d: 3,
            per: 0.1,
            shots: 256,
        };
        let first = execute(&kind, Backend::Packed, seed, &cancel).unwrap();
        let second = execute(&kind, Backend::Packed, seed, &cancel).unwrap();
        // Crash recovery / journal retry must reproduce the record
        // byte-for-byte from (base_seed, id) alone.
        assert_eq!(first, second);
        let fields: Vec<u64> = first
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(fields[0], 256, "all requested shots counted: {first}");
        assert!(fields[2] > 0, "p = 0.1 must fire checks: {first}");
    }

    #[test]
    fn cancelled_surface_ler_job_reports_cancellation() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let kind = JobKind::LerSurface {
            d: 13,
            per: 0.05,
            shots: MAX_SURFACE_SHOTS,
        };
        // The batch loop consults the token, so even the heaviest
        // surface job stops without running its million shots.
        let result = execute(&kind, Backend::Packed, 1, &cancel);
        assert!(matches!(result, Err(ShotError::Cancelled { .. })));
    }

    #[test]
    fn surface_ler_runs_only_on_the_packed_backend() {
        let cancel = CancelToken::new();
        let kind = JobKind::LerSurface {
            d: 5,
            per: 0.05,
            shots: 64,
        };
        assert_eq!(kind.backend_preference(), &[Backend::Packed]);
        for backend in [Backend::Reference, Backend::Statevector] {
            let result = execute(&kind, backend, 1, &cancel);
            assert!(matches!(result, Err(ShotError::PoolFailure(_))));
        }
    }

    #[test]
    fn sliced_ler_runs_only_on_the_packed_backend() {
        let cancel = CancelToken::new();
        let kind = JobKind::LerSliced {
            per: 0.005,
            kind: LogicalErrorKind::XL,
            with_pf: true,
            target: 1,
            max_windows: 10,
            shots: 64,
        };
        assert_eq!(kind.backend_preference(), &[Backend::Packed]);
        let result = execute(&kind, Backend::Reference, 1, &cancel);
        assert!(matches!(result, Err(ShotError::PoolFailure(_))));
    }
}

//! The nonblocking serving event loop (`DESIGN.md` §12.1).
//!
//! One thread multiplexes every client connection: a readiness scan
//! pass reads whatever each socket has, feeds it through the
//! connection's [`FrameBuf`] state machine, executes the complete
//! requests, and flushes replies — all on nonblocking sockets, so no
//! peer can ever block the loop. The repo forbids `unsafe`, which rules
//! out raw `epoll`; instead the loop is a scan poller: when a full pass
//! makes no progress it parks on a condvar for at most
//! [`IDLE_WAIT`], woken early by the commit thread whenever a batch of
//! submission acks becomes deliverable. On an idle daemon that is one
//! bounded wakeup every half millisecond; under load the loop never
//! parks at all.
//!
//! Invariants the loop maintains:
//!
//! - **Reply ordering**: each connection holds a queue of reply slots,
//!   one per request, filled in request order. A submit parks its slot
//!   on a group-commit token; replies behind it (even instant ones like
//!   `query`) wait until it resolves, so pipelined clients see
//!   responses in submission order.
//! - **WAL-before-ack**: a submit's `accepted` frame is only *encoded*
//!   when its commit token completes successfully — the bytes cannot
//!   reach the socket before the batch fsync returns.
//! - **Reservation hygiene**: every [`SubmitAdmission::Reserved`] is
//!   resolved through [`submit_finish`] exactly once, even when the
//!   connection dies while the commit is in flight (the completion is
//!   delivered to a dead connection id and the reply dropped, but the
//!   reservation is still released — otherwise a drain would wait on it
//!   forever).
//! - **Deadline reaping**: a connection with no socket progress for
//!   [`DaemonConfig::io_timeout`] is closed, whether it is idle,
//!   holding a partial frame (slowloris), or refusing to read its
//!   replies (write stall).
//! - **Backpressure**: beyond
//!   [`DaemonConfig::max_inflight_bytes`] of buffered input + output
//!   the loop stops reading, pushing back through the peers' TCP
//!   windows; admission sheds (`busy` over the connection cap,
//!   `overloaded` over the queue depth) are typed so the fleet router
//!   keeps its failover classification.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::daemon::{
    handle_progress, handle_query, shed_connection, submit_begin, submit_finish, Service,
    SubmitAdmission,
};
use crate::frame::{encode_frame, FrameBuf};
use crate::job::JobSpec;
use crate::protocol::{RejectCode, Request, Response};
use crate::wal::WalRecord;

/// Longest the loop parks when a full pass made no progress.
const IDLE_WAIT: Duration = Duration::from_micros(500);
/// Per-pass read chunk; a connection may drain several per pass.
const READ_CHUNK: usize = 4096;
/// After shutdown, how long the loop keeps flushing `drained` replies
/// to their waiters before giving up on unreachable peers.
const FLUSH_GRACE: Duration = Duration::from_secs(1);
/// Consumed output beyond this is compacted out of the buffer.
const OUT_COMPACT: usize = 64 * 1024;

/// One queued reply, in request order.
enum Slot {
    /// Encoded frame bytes ready to move to the output buffer.
    Ready(Vec<u8>),
    /// A submit parked on its group-commit token.
    Commit(u64),
    /// A drain request parked until the daemon finishes draining; it
    /// becomes `Ready(drained)` exactly once, when shutdown fires.
    Drain,
}

struct Conn {
    stream: TcpStream,
    inbuf: FrameBuf,
    outbuf: Vec<u8>,
    outpos: usize,
    replies: VecDeque<Slot>,
    last_activity: Instant,
    /// Flush what is queued, then close (malformed stream, or the peer
    /// half-closed and every pending reply has been delivered).
    closing: bool,
    /// Peer sent EOF; nothing more will be read.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Conn {
            stream,
            inbuf: FrameBuf::new(),
            outbuf: Vec::new(),
            outpos: 0,
            replies: VecDeque::new(),
            last_activity: now,
            closing: false,
            read_closed: false,
        }
    }

    fn unsent(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    fn buffered(&self) -> usize {
        self.inbuf.pending() + self.unsent()
    }

    fn push_reply(&mut self, response: &Response) {
        self.replies.push_back(Slot::Ready(encode_reply(response)));
    }

    /// Moves every leading `Ready` slot into the output buffer,
    /// preserving request order behind any parked slot.
    fn stage_replies(&mut self) {
        while let Some(Slot::Ready(_)) = self.replies.front() {
            let Some(Slot::Ready(bytes)) = self.replies.pop_front() else {
                unreachable!("front checked above");
            };
            self.outbuf.extend_from_slice(&bytes);
        }
    }
}

fn encode_reply(response: &Response) -> Vec<u8> {
    encode_frame(response.encode().as_bytes()).expect("responses are far below the frame bound")
}

/// Runs the event loop until a drain completes. See the module docs.
pub(crate) fn run(listener: &TcpListener, service: &Arc<Service>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    // The commit thread pokes this pair when submission acks become
    // deliverable, so ack latency is bounded by the fsync, not the
    // idle-wait granularity.
    let waker = Arc::new((Mutex::new(false), Condvar::new()));
    {
        let waker = Arc::clone(&waker);
        service.commit.set_waker(Arc::new(move || {
            let (flag, cond) = &*waker;
            *flag.lock().expect("waker lock") = true;
            cond.notify_all();
        }));
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 0;
    // Rotates the per-pass service order so read-budget exhaustion
    // never starves the same connections every pass.
    let mut service_offset: usize = 0;
    // Commit token → (connection, spec): kept past connection death so
    // the reservation still resolves.
    let mut inflight: HashMap<u64, (u64, JobSpec)> = HashMap::new();
    let mut shutdown_at: Option<Instant> = None;

    loop {
        let now = Instant::now();
        let mut progress = false;

        // 1. Deliver group-commit completions: finish the reserved
        // submissions and fill their reply slots (dead connections
        // still release their reservations; the reply is dropped).
        for completion in service.commit.take_completions() {
            progress = true;
            let Some((conn_id, spec)) = inflight.remove(&completion.token) else {
                continue;
            };
            let response = submit_finish(service, &spec, completion.result);
            if let Some(conn) = conns.get_mut(&conn_id) {
                for slot in &mut conn.replies {
                    if matches!(slot, Slot::Commit(t) if *t == completion.token) {
                        *slot = Slot::Ready(encode_reply(&response));
                        break;
                    }
                }
            }
        }

        // 2. Accept — drained fully each pass, shedding over the cap.
        if shutdown_at.is_none() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        if conns.len() >= service.config.max_conns {
                            shed_connection(service, stream);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        conns.insert(next_conn, Conn::new(stream, now));
                        next_conn += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // 3. Byte backpressure: over the budget, this pass reads
        // nothing and lets TCP windows fill, but keeps executing and
        // flushing so the budget drains.
        let buffered: usize = conns.values().map(Conn::buffered).sum();
        let mut read_budget = service
            .config
            .max_inflight_bytes
            .saturating_sub(buffered)
            .min(service.config.max_inflight_bytes);

        // 4. Service every connection: read, execute frames, stage and
        // write replies, then apply close/reap rules. The order rotates
        // each pass, and each connection's reads are capped at a fair
        // share of the pass budget (floored at one chunk), so a single
        // fast-writing peer cannot drain the whole global budget and
        // starve whoever happens to be iterated after it.
        let mut dead: Vec<u64> = Vec::new();
        let mut ids: Vec<u64> = conns.keys().copied().collect();
        ids.sort_unstable();
        if !ids.is_empty() {
            service_offset %= ids.len();
            ids.rotate_left(service_offset);
            service_offset = service_offset.wrapping_add(1);
        }
        let fair_share = read_budget
            .checked_div(ids.len())
            .unwrap_or(0)
            .max(READ_CHUNK);
        for id in ids {
            let conn = conns.get_mut(&id).expect("listed connection exists");
            let mut broken = false;

            // Read until WouldBlock, EOF, or budget exhaustion — the
            // connection's fair share first, the global budget second.
            if !conn.closing && !conn.read_closed {
                let mut chunk = [0u8; READ_CHUNK];
                let mut conn_budget = fair_share.min(read_budget);
                while conn_budget > 0 {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.read_closed = true;
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.last_activity = now;
                            conn.inbuf.extend(&chunk[..n]);
                            conn_budget = conn_budget.saturating_sub(n);
                            read_budget = read_budget.saturating_sub(n);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            broken = true;
                            break;
                        }
                    }
                }
            }

            // Execute every complete frame, in order.
            while !broken && !conn.closing {
                match conn.inbuf.next_frame() {
                    Ok(None) => break,
                    Ok(Some(payload)) => {
                        progress = true;
                        handle_frame(service, conn, id, &mut inflight, payload);
                    }
                    Err(e) => {
                        // Corrupt frame: answer once, then hang up
                        // (resync is impossible mid-stream).
                        conn.push_reply(&Response::rejected(
                            RejectCode::Malformed,
                            format!("malformed frame: {e}"),
                        ));
                        conn.closing = true;
                    }
                }
            }

            // Stage ordered replies and write until WouldBlock.
            conn.stage_replies();
            while !broken && conn.outpos < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => {
                        broken = true;
                    }
                    Ok(n) => {
                        progress = true;
                        conn.last_activity = now;
                        conn.outpos += n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        broken = true;
                    }
                }
            }
            if conn.outpos >= conn.outbuf.len() {
                conn.outbuf.clear();
                conn.outpos = 0;
            } else if conn.outpos > OUT_COMPACT {
                conn.outbuf.drain(..conn.outpos);
                conn.outpos = 0;
            }

            // Close rules: broken sockets immediately; flushed closers
            // and half-closed peers with nothing pending; and the
            // io-timeout reap for idle, mid-frame-stalled (slowloris),
            // and write-stalled peers alike.
            let flushed = conn.unsent() == 0 && conn.replies.is_empty();
            let reap = !service.config.io_timeout.is_zero()
                && now.saturating_duration_since(conn.last_activity) > service.config.io_timeout;
            if broken || (conn.closing && flushed) || (conn.read_closed && flushed) || reap {
                dead.push(id);
            }
        }
        for id in dead {
            progress = true;
            conns.remove(&id);
        }

        // 5. Drain: once requested, fires when every reservation has
        // resolved and (unless the journal is degraded, which strands
        // queued work forever) the queue is dry. Each parked drain
        // waiter is woken exactly once, here.
        if shutdown_at.is_none() {
            let degraded = service.commit.is_degraded();
            let mut state = service.state.lock().expect("state lock");
            if state.draining && !state.shutdown && state.drained(degraded) {
                state.shutdown = true;
                service.wake.notify_all();
                drop(state);
                progress = true;
                for conn in conns.values_mut() {
                    for slot in &mut conn.replies {
                        if matches!(slot, Slot::Drain) {
                            *slot = Slot::Ready(encode_reply(&Response::Drained));
                        }
                    }
                }
                shutdown_at = Some(now + FLUSH_GRACE);
            }
        }

        // 6. Exit once the drained replies are out (or the grace
        // period gives up on unreachable waiters).
        if let Some(deadline) = shutdown_at {
            let flushed = conns
                .values()
                .all(|c| c.unsent() == 0 && c.replies.is_empty());
            if flushed || now >= deadline {
                return Ok(());
            }
        }

        // 7. Idle park: bounded, and cut short by the commit waker.
        if !progress {
            let (flag, cond) = &*waker;
            let mut woken = flag.lock().expect("waker lock");
            if !*woken {
                let (w, _) = cond.wait_timeout(woken, IDLE_WAIT).expect("waker lock");
                woken = w;
            }
            *woken = false;
        }
    }
}

/// Executes one parsed frame on `conn`, pushing its reply slot.
fn handle_frame(
    service: &Arc<Service>,
    conn: &mut Conn,
    conn_id: u64,
    inflight: &mut HashMap<u64, (u64, JobSpec)>,
    payload: Vec<u8>,
) {
    let line = match String::from_utf8(payload) {
        Ok(line) => line,
        Err(_) => {
            conn.push_reply(&Response::rejected(
                RejectCode::Malformed,
                "frame payload is not UTF-8",
            ));
            conn.closing = true;
            return;
        }
    };
    match Request::parse(&line) {
        Err(reason) => conn.push_reply(&Response::rejected(RejectCode::Malformed, reason)),
        Ok(Request::Submit(spec)) => match submit_begin(service, spec) {
            SubmitAdmission::Reply(response) => conn.push_reply(&response),
            SubmitAdmission::Reserved(spec) => {
                match service.commit.append_async(WalRecord::Accept(spec.clone())) {
                    Ok(token) => {
                        inflight.insert(token, (conn_id, spec));
                        conn.replies.push_back(Slot::Commit(token));
                    }
                    Err(e) => {
                        // Refused at enqueue: resolve the reservation
                        // right here.
                        let response = submit_finish(service, &spec, Err(e));
                        conn.push_reply(&response);
                    }
                }
            }
        },
        Ok(Request::Query(id)) => conn.push_reply(&handle_query(service, &id)),
        Ok(Request::Progress(id)) => conn.push_reply(&handle_progress(service, &id)),
        Ok(Request::Health) => {
            let degraded = service.commit.is_degraded();
            let checkpointing = service.checkpointing_on();
            let state = service.state.lock().expect("state lock");
            let snapshot = state.health(degraded, checkpointing);
            drop(state);
            conn.push_reply(&Response::Health(Box::new(snapshot)));
        }
        Ok(Request::Drain) => {
            let mut state = service.state.lock().expect("state lock");
            state.draining = true;
            service.wake.notify_all();
            drop(state);
            conn.replies.push_back(Slot::Drain);
        }
    }
}

//! A crash-safe shot-service daemon for the QPDO simulation stack
//! (`DESIGN.md` §9).
//!
//! Clients connect over TCP, submit shot jobs (Surface-17 LER points,
//! random-circuit verifications, odd-Bell histograms), and poll for the
//! results. The daemon is built for hostile conditions:
//!
//! - **Write-ahead journal** ([`wal`]): every `accepted → dispatched →
//!   completed` transition is a CRC-framed, fsync'd record. `kill -9`
//!   at any instant loses at most the jobs never acknowledged; every
//!   acknowledged job is re-executed on restart onto a byte-identical
//!   result (deterministic substream seeding), exactly once.
//! - **Group commit** ([`commit`]): appends are batched by a dedicated
//!   commit thread — many records per fsync, acked only after the
//!   batch syncs. A failed fsync latches the daemon into a degraded
//!   refuse-new-work state instead of ever acking unsynced bytes.
//! - **Admission control** ([`daemon`]): a bounded queue sheds load
//!   with an explicit `overloaded` rejection instead of collapsing;
//!   per-job deadlines cancel cooperatively through the supervised
//!   worker pool; a drain request stops admission and waits the queue
//!   dry.
//! - **Nonblocking event loop** ([`eventloop`]): the default I/O model
//!   multiplexes hundreds of connections on one thread with
//!   per-connection state machines ([`frame`]), read/write deadlines
//!   that reap slowloris peers, and byte-budget backpressure. The
//!   legacy thread-per-connection model survives as
//!   `--io-model threaded` for A/B benchmarking (`loadgen`).
//! - **Circuit breakers** ([`breaker`]): per-backend failure tracking
//!   routes jobs around a sick backend (packed ↔ reference tableau for
//!   stabilizer jobs) and restores it through a half-open probe.
//!
//! The wire protocol ([`protocol`]) is a minimal length-prefixed codec
//! over the same CRC framing the journal uses — std-only, no external
//! dependencies. `bin/qpdo_serve` is the daemon, `bin/serve_chaos` the
//! adversarial client that kills and restarts it mid-load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod commit;
pub mod daemon;
pub mod eventloop;
pub mod frame;
pub mod job;
pub mod protocol;
pub mod wal;

//! Incremental frame codec for the nonblocking event loop
//! (`DESIGN.md` §12.1).
//!
//! The blocking protocol helpers ([`crate::protocol::recv_line`]) pull
//! whole frames out of a stream, sleeping inside `read`. The event
//! loop cannot sleep: it feeds whatever bytes a readiness pass yielded
//! into a [`FrameBuf`] and extracts as many complete frames as those
//! bytes finish. Partial frames stay buffered and resume on the next
//! pass — a client may dribble one byte per write and still parse.
//!
//! The wire format is the journal's CRC framing
//! (`[len u32 BE][crc32 u32 BE][payload]`, see `qpdo_bench::framing`),
//! and the error contract mirrors `read_record`: an oversized length
//! prefix or a CRC mismatch is `InvalidData` *before* any allocation
//! sized by attacker-controlled bytes.

use std::io;

use qpdo_bench::framing::{crc32, MAX_RECORD_LEN};

/// Frame header size: 4-byte length + 4-byte CRC, both big-endian.
pub const HEADER_LEN: usize = 8;

/// Encodes one payload as a CRC frame (the byte sequence
/// `qpdo_bench::framing::write_record` would emit).
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds
/// [`MAX_RECORD_LEN`](qpdo_bench::framing::MAX_RECORD_LEN).
pub fn encode_frame(payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_RECORD_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds {MAX_RECORD_LEN}", payload.len()),
        ));
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("bounded above")
            .to_be_bytes(),
    );
    frame.extend_from_slice(&crc32(payload).to_be_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// An incremental reassembly buffer: bytes in, complete frames out.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by extracted frames. Compacted
    /// lazily so a burst of small frames costs one `drain`, not many.
    pos: usize,
}

impl FrameBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the peer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing so a slow dribbler cannot pin
        // consumed prefixes forever.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > MAX_RECORD_LEN) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes buffered but not yet returned as frames (the
    /// event loop's per-connection read-budget accounting).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a partial frame is buffered — a peer that holds one of
    /// these across the read deadline is a mid-frame staller and gets
    /// reaped.
    #[must_use]
    pub fn has_partial(&self) -> bool {
        self.pending() > 0
    }

    /// Extracts the next complete frame, or `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the length prefix exceeds
    /// [`MAX_RECORD_LEN`](qpdo_bench::framing::MAX_RECORD_LEN) (checked
    /// before anything is allocated from it) or the payload fails its
    /// CRC. The connection is poisoned either way — framing never
    /// resynchronizes after corruption.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds {MAX_RECORD_LEN}"),
            ));
        }
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let expected = u32::from_be_bytes(avail[4..8].try_into().expect("4 bytes"));
        let payload = avail[HEADER_LEN..HEADER_LEN + len].to_vec();
        if crc32(&payload) != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame CRC mismatch",
            ));
        }
        self.pos += HEADER_LEN + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_frame_round_trips() {
        let mut fb = FrameBuf::new();
        fb.extend(&encode_frame(b"health").unwrap());
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"health"[..]));
        assert_eq!(fb.next_frame().unwrap(), None);
        assert!(!fb.has_partial());
    }

    #[test]
    fn byte_at_a_time_resumes_cleanly() {
        let frame = encode_frame(b"submit j-1 - bell 4").unwrap();
        let mut fb = FrameBuf::new();
        for (i, byte) in frame.iter().enumerate() {
            assert_eq!(fb.next_frame().unwrap(), None, "early frame at byte {i}");
            fb.extend(std::slice::from_ref(byte));
        }
        assert_eq!(
            fb.next_frame().unwrap().as_deref(),
            Some(&b"submit j-1 - bell 4"[..])
        );
        assert!(!fb.has_partial());
    }

    #[test]
    fn coalesced_frames_all_extract() {
        let mut bytes = Vec::new();
        for i in 0..5 {
            bytes.extend_from_slice(&encode_frame(format!("query j-{i}").as_bytes()).unwrap());
        }
        let mut fb = FrameBuf::new();
        fb.extend(&bytes);
        for i in 0..5 {
            assert_eq!(
                fb.next_frame().unwrap(),
                Some(format!("query j-{i}").into_bytes())
            );
        }
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut fb = FrameBuf::new();
        let mut header = ((MAX_RECORD_LEN + 1) as u32).to_be_bytes().to_vec();
        header.extend_from_slice(&[0; 4]);
        fb.extend(&header);
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn crc_mismatch_is_invalid_data() {
        let mut frame = encode_frame(b"health").unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut fb = FrameBuf::new();
        fb.extend(&frame);
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn consumed_prefixes_are_compacted() {
        let mut fb = FrameBuf::new();
        for i in 0..100 {
            fb.extend(&encode_frame(format!("query j-{i}").as_bytes()).unwrap());
            assert!(fb.next_frame().unwrap().is_some());
        }
        // After each fully-drained extend the buffer compacts, so
        // steady-state memory stays bounded by one frame.
        assert_eq!(fb.pending(), 0);
        fb.extend(b"");
        assert!(fb.buf.len() <= HEADER_LEN + 16);
    }
}

//! Per-backend circuit breakers (`DESIGN.md` §9.4).
//!
//! A breaker wraps one execution backend and runs the classic
//! three-state machine:
//!
//! - **Closed** — requests flow; consecutive failures are counted and
//!   the breaker trips open at a threshold.
//! - **Open** — requests are refused (the dispatcher routes around the
//!   backend) until a cooloff has elapsed.
//! - **Half-open** — after the cooloff exactly one probe request is
//!   admitted. Success closes the breaker; failure re-opens it and
//!   restarts the cooloff.
//!
//! Every transition takes the current [`Instant`] as an argument, so
//! tests drive the clock instead of sleeping.

use std::time::{Duration, Instant};

/// The observable state of a [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the cooloff elapses.
    Open,
    /// Probing: one request is in flight to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// The lowercase name used in health reports (`closed`, `open`,
    /// `half-open`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A consecutive-failure circuit breaker with a timed half-open probe.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    threshold: u32,
    cooloff: Duration,
    opened_at: Option<Instant>,
    /// Lifetime trip count (closed/half-open → open transitions).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker that trips after `threshold` consecutive
    /// failures and probes again `cooloff` after tripping.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (a breaker that can never admit a
    /// request is a configuration error).
    #[must_use]
    pub fn new(threshold: u32, cooloff: Duration) -> Self {
        assert!(threshold > 0, "breaker threshold must be at least 1");
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            threshold,
            cooloff,
            opened_at: None,
            trips: 0,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times this breaker has tripped open.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Asks to route one request through this backend at time `now`.
    ///
    /// Returns `true` when the request may proceed. While open, the
    /// first call at or after `opened_at + cooloff` transitions to
    /// half-open and admits the single probe; further calls are refused
    /// until the probe's outcome is recorded.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let ready = self
                    .opened_at
                    .is_none_or(|at| now.saturating_duration_since(at) >= self.cooloff);
                if ready {
                    self.state = BreakerState::HalfOpen;
                }
                ready
            }
        }
    }

    /// Records a successful request: any state closes.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// Records a failed request at time `now`.
    ///
    /// A half-open probe failure re-opens immediately; a closed breaker
    /// trips once the consecutive-failure count reaches the threshold.
    pub fn record_failure(&mut self, now: Instant) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Closed if self.consecutive_failures >= self.threshold => self.trip(now),
            _ => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(3, Duration::from_millis(100))
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker();
        let t0 = Instant::now();
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        // A success resets the streak.
        b.record_success();
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(t0));
    }

    #[test]
    fn half_open_probe_admits_exactly_one_request() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        assert!(!b.allow(t0 + Duration::from_millis(99)));
        assert!(b.allow(t0 + Duration::from_millis(100)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The probe is outstanding: nothing else gets through.
        assert!(!b.allow(t0 + Duration::from_millis(500)));
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow(t1));
        b.record_failure(t1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The cooloff restarts from the re-open instant.
        assert!(!b.allow(t1 + Duration::from_millis(99)));
        let t2 = t1 + Duration::from_millis(100);
        assert!(b.allow(t2));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        // Fully recovered: requests flow again.
        assert!(b.allow(t2));
    }

    #[test]
    fn racing_allows_admit_at_most_one_probe() {
        // The prober and the routing path may both ask `allow` after
        // the cooloff; only the first caller wins the probe slot, no
        // matter how many ask or how late they ask.
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        let ready = t0 + Duration::from_millis(100);
        let admitted = (0..10)
            .filter(|i| b.allow(ready + Duration::from_millis(i * 50)))
            .count();
        assert_eq!(admitted, 1, "exactly one probe may be in flight");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Still exactly one after the outcome restarts the cycle.
        b.record_failure(ready);
        let ready = ready + Duration::from_millis(100);
        let admitted = (0..10)
            .filter(|i| b.allow(ready + Duration::from_millis(i * 50)))
            .count();
        assert_eq!(admitted, 1, "a re-trip must not leak extra probes");
    }

    #[test]
    fn failed_probes_re_trip_with_a_full_cooloff_instead_of_flapping() {
        // A backend that stays dead gets exactly one probe per cooloff
        // window: N windows → N probes and N re-trips, never a burst.
        let mut b = breaker();
        let mut now = Instant::now();
        for _ in 0..3 {
            b.record_failure(now);
        }
        assert_eq!(b.trips(), 1);
        for cycle in 0..5u64 {
            // Nothing flows before the window, even asked repeatedly.
            for i in 0..4 {
                assert!(
                    !b.allow(now + Duration::from_millis(i * 25 + 24)),
                    "cycle {cycle}: allowed before the cooloff elapsed"
                );
            }
            now += Duration::from_millis(100);
            assert!(b.allow(now), "cycle {cycle}: the probe slot must open");
            b.record_failure(now);
            assert_eq!(b.state(), BreakerState::Open);
            assert_eq!(b.trips(), cycle + 2, "one trip per failed probe");
        }
        // The backend finally recovers: one good probe closes it and
        // resets the failure streak, so re-tripping takes a full
        // threshold again rather than a single post-recovery blip.
        now += Duration::from_millis(100);
        assert!(b.allow(now));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "the streak must restart from zero after a recovery"
        );
    }

    #[test]
    fn state_names_are_stable() {
        assert_eq!(BreakerState::Closed.name(), "closed");
        assert_eq!(BreakerState::Open.name(), "open");
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
    }
}

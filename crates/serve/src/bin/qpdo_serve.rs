//! The shot-service daemon binary (`DESIGN.md` §9).
//!
//! Binds a TCP listener, prints `listening on <addr>` and `ready`, and
//! serves framed protocol requests until a client sends `drain`. The
//! write-ahead journal in `--wal-dir` makes accepted jobs survive
//! `kill -9`: restart the daemon on the same journal directory and
//! every accepted-but-incomplete job re-executes deterministically.
//!
//! Serve-specific flags are parsed here; everything else is the shared
//! harness vocabulary (`--jobs`, `--watchdog-ms`, `--seed`,
//! `--queue-depth`, `--deadline-ms`).
//!
//! ```text
//! qpdo_serve --wal-dir results/wal [--port N] [shared harness flags]
//!     [--io-model event|threaded] [--commit-batch N]
//!     [--commit-interval-us N] [--max-inflight-bytes N]
//!     [--max-job-attempts N] [--breaker-threshold N]
//!     [--breaker-cooloff-ms N] [--retain-terminal N]
//!     [--max-conns N] [--io-timeout-ms N]
//!     [--progress-batches N]
//!     [--chaos-backend-fail BACKEND:N] [--chaos-stall-ms N]
//!     [--chaos-fsync-fail N] [--chaos-progress-fail N]
//!     [--chaos-corrupt-checkpoint]
//! ```

use std::io::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use qpdo_bench::{HarnessArgs, ParseError, MAX_MS_FLAG, USAGE};
use qpdo_serve::daemon::{serve, DaemonConfig, IoModel};
use qpdo_serve::job::Backend;

const SERVE_USAGE: &str = "\
usage: qpdo_serve --wal-dir DIR [options]
  --wal-dir DIR             write-ahead journal directory (required)
  --port N                  TCP port to bind on 127.0.0.1 (default 0 = ephemeral)
  --max-job-attempts N      attempts across backends before terminal failure (default 5)
  --breaker-threshold N     consecutive failures that trip a backend breaker (default 3)
  --breaker-cooloff-ms N    breaker cooloff before the half-open probe (default 500)
  --retain-terminal N       terminal jobs kept through journal compaction (default 65536)
  --max-conns N             concurrent client connections before shedding (default 256)
  --io-timeout-ms N         read/write deadline on client streams, 0 = none (default 30000)
  --io-model MODEL          connection handling: event (default) or threaded
  --commit-batch N          max journal records folded into one fsync (default 64)
  --commit-interval-us N    wait for commit-batch stragglers, 0 = sync now (default 200)
  --max-inflight-bytes N    event loop read-pause threshold, bytes (default 1048576)
  --progress-batches N      journal a resume checkpoint every N sweep batches, 0 = off (default 8)
  --chaos-backend-fail B:N  fault injection: first N executions on backend B fail
  --chaos-stall-ms N        fault injection: stall every execution N ms
  --chaos-fsync-fail N      fault injection: journal fsync fails after N successes
  --chaos-progress-fail N   fault injection: progress appends fail (ENOSPC) after N successes
  --chaos-corrupt-checkpoint  fault injection: corrupt every other journaled checkpoint
plus the shared harness flags:
";

fn usage_exit(code: i32) -> ! {
    eprint!("{SERVE_USAGE}");
    eprint!("{USAGE}");
    exit(code);
}

fn flag_value(args: &mut Vec<String>, i: usize, flag: &str) -> String {
    if i + 1 >= args.len() {
        eprintln!("error: {flag} requires a value");
        usage_exit(2);
    }
    args.remove(i); // the flag
    args.remove(i) // its value
}

fn parse_ms(flag: &str, value: &str, allow_zero: bool) -> u64 {
    match value.parse::<u64>() {
        Ok(0) if !allow_zero => {
            eprintln!("error: {flag} must be positive");
            usage_exit(2);
        }
        Ok(n) if n <= MAX_MS_FLAG => n,
        Ok(n) => {
            eprintln!("error: {flag} {n} exceeds the {MAX_MS_FLAG} ms cap");
            usage_exit(2);
        }
        Err(_) => {
            eprintln!("error: {flag} expects an integer, got {value:?}");
            usage_exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut wal_dir: Option<PathBuf> = None;
    let mut port: u16 = 0;
    let mut config = DaemonConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--wal-dir" => wal_dir = Some(PathBuf::from(flag_value(&mut args, i, "--wal-dir"))),
            "--port" => {
                let v = flag_value(&mut args, i, "--port");
                port = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --port expects a port number, got {v:?}");
                    usage_exit(2);
                });
            }
            "--max-job-attempts" => {
                let v = flag_value(&mut args, i, "--max-job-attempts");
                config.max_job_attempts =
                    parse_ms("--max-job-attempts", &v, false).min(u64::from(u32::MAX)) as u32;
            }
            "--breaker-threshold" => {
                let v = flag_value(&mut args, i, "--breaker-threshold");
                config.breaker_threshold =
                    parse_ms("--breaker-threshold", &v, false).min(u64::from(u32::MAX)) as u32;
            }
            "--breaker-cooloff-ms" => {
                let v = flag_value(&mut args, i, "--breaker-cooloff-ms");
                config.breaker_cooloff =
                    Duration::from_millis(parse_ms("--breaker-cooloff-ms", &v, false));
            }
            "--retain-terminal" => {
                let v = flag_value(&mut args, i, "--retain-terminal");
                config.retain_terminal =
                    parse_ms("--retain-terminal", &v, false).min(usize::MAX as u64) as usize;
            }
            "--max-conns" => {
                let v = flag_value(&mut args, i, "--max-conns");
                config.max_conns =
                    parse_ms("--max-conns", &v, false).min(usize::MAX as u64) as usize;
            }
            "--io-timeout-ms" => {
                let v = flag_value(&mut args, i, "--io-timeout-ms");
                config.io_timeout = Duration::from_millis(parse_ms("--io-timeout-ms", &v, true));
            }
            "--io-model" => {
                let v = flag_value(&mut args, i, "--io-model");
                config.io_model = match v.as_str() {
                    "event" => IoModel::Event,
                    "threaded" => IoModel::Threaded,
                    _ => {
                        eprintln!("error: --io-model expects event or threaded, got {v:?}");
                        usage_exit(2);
                    }
                };
            }
            "--commit-batch" => {
                let v = flag_value(&mut args, i, "--commit-batch");
                config.commit_batch =
                    parse_ms("--commit-batch", &v, false).min(usize::MAX as u64) as usize;
            }
            "--commit-interval-us" => {
                let v = flag_value(&mut args, i, "--commit-interval-us");
                config.commit_interval_us = parse_ms("--commit-interval-us", &v, true);
            }
            "--max-inflight-bytes" => {
                let v = flag_value(&mut args, i, "--max-inflight-bytes");
                config.max_inflight_bytes =
                    parse_ms("--max-inflight-bytes", &v, false).min(usize::MAX as u64) as usize;
            }
            "--progress-batches" => {
                let v = flag_value(&mut args, i, "--progress-batches");
                config.progress_batches = parse_ms("--progress-batches", &v, true);
            }
            "--chaos-fsync-fail" => {
                let v = flag_value(&mut args, i, "--chaos-fsync-fail");
                config.chaos_fsync_fail = Some(parse_ms("--chaos-fsync-fail", &v, true));
            }
            "--chaos-progress-fail" => {
                let v = flag_value(&mut args, i, "--chaos-progress-fail");
                config.chaos_progress_fail = Some(parse_ms("--chaos-progress-fail", &v, true));
            }
            "--chaos-corrupt-checkpoint" => {
                args.remove(i);
                config.chaos_corrupt_checkpoint = true;
            }
            "--chaos-backend-fail" => {
                let v = flag_value(&mut args, i, "--chaos-backend-fail");
                let Some((backend, count)) = v.split_once(':') else {
                    eprintln!("error: --chaos-backend-fail expects BACKEND:N, got {v:?}");
                    usage_exit(2);
                };
                let Some(backend) = Backend::parse(backend) else {
                    eprintln!("error: unknown backend {backend:?} in --chaos-backend-fail");
                    usage_exit(2);
                };
                let count = count.parse::<u32>().unwrap_or_else(|_| {
                    eprintln!(
                        "error: --chaos-backend-fail count must be an integer, got {count:?}"
                    );
                    usage_exit(2);
                });
                config.chaos_backend_fail = Some((backend, count));
            }
            "--chaos-stall-ms" => {
                let v = flag_value(&mut args, i, "--chaos-stall-ms");
                config.chaos_stall = Duration::from_millis(parse_ms("--chaos-stall-ms", &v, true));
            }
            _ => i += 1,
        }
    }

    let harness = match HarnessArgs::try_parse_from(args) {
        Ok(harness) => harness,
        Err(ParseError::Help) => usage_exit(0),
        Err(ParseError::Invalid(message)) => {
            eprintln!("error: {message}");
            usage_exit(2);
        }
    };
    let Some(wal_dir) = wal_dir else {
        eprintln!("error: --wal-dir is required");
        usage_exit(2);
    };
    config.jobs = harness.jobs;
    config.watchdog_ms = harness.watchdog_ms;
    config.base_seed = harness.seed;
    config.queue_depth = harness.queue_depth;
    config.default_deadline_ms = harness.deadline_ms;

    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: cannot bind 127.0.0.1:{port}: {e}");
            exit(1);
        }
    };
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    // The chaos harness scrapes these two lines; keep them stable.
    println!("listening on {addr}");
    println!("ready");
    std::io::stdout().flush().expect("stdout flush");

    match serve(listener, &wal_dir, config) {
        Ok(stats) => {
            println!(
                "drained: accepted={} completed={} failed={} partials={} shed={} \
                 duplicates={} reroutes={} batches={}",
                stats.accepted,
                stats.completed,
                stats.failed,
                stats.partials,
                stats.shed,
                stats.duplicates,
                stats.reroutes,
                stats.batches
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

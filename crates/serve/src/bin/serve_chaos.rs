//! Chaos drill for the shot service (`DESIGN.md` §9.5): spawns the
//! `qpdo_serve` daemon, hammers it with jobs while killing and
//! restarting it, and asserts the exactly-once contract — every
//! accepted job completes exactly once after recovery, byte-identical
//! to an unfaulted in-process execution of the same seed.
//!
//! Drills:
//!
//! 1. **Crash** — SIGKILL mid-load, restart on the same journal,
//!    resubmit everything (must all deduplicate), results golden, the
//!    journal audit clean.
//! 2. **Breaker** — injected packed-backend failures trip the breaker;
//!    jobs reroute to the reference backend with identical results; the
//!    half-open probe restores the backend to closed.
//! 3. **Overload** — a depth-2 queue sheds a burst with `overloaded`
//!    rejections while every accepted job still completes.
//! 4. **Deadline** — a stalled execution blows a 100 ms job deadline
//!    and fails terminally with `deadline exceeded`.
//! 5. **Drain-deadline** — a graceful drain races the deadline watcher
//!    across a stalled queue: exactly one terminal record lands per
//!    job and the drain still completes.
//! 6. **Group-commit crash** — SIGKILL lands while the commit thread
//!    is folding concurrent submissions into shared fsync batches
//!    (`--commit-batch 32 --commit-interval-us 2000`); every acked id
//!    must survive the torn journal — WAL-before-ack holds across
//!    batching, not just per-record fsync.
//! 7. **Overload wave** — concurrent client waves against a depth-3
//!    queue on the event loop: sheds carry the typed `overloaded`
//!    code, health answers mid-wave, accepted jobs finish golden.
//! 8. **Mid-frame stall** — a slowloris client parks half a frame and
//!    goes silent; the read deadline reaps it while live traffic on
//!    the same loop completes unharmed.
//! 9. **Fsync failure** — injected journal fsync failures latch the
//!    daemon into a refuse-new-work degraded state (typed `journal` /
//!    `degraded` rejections, health stops advertising `accepting`);
//!    a restart without the fault completes every acked job golden.
//! 10. **Resume** — SIGKILL mid shot-sweep; the restarted daemon
//!     resumes from the last durable checkpoint, re-executes strictly
//!     fewer batches than a scratch run (proven by the execution
//!     counter), and the final record is byte-identical to the
//!     unfaulted golden execution.
//! 11. **Anytime partial** — a deadline landing mid-sweep yields a
//!     typed `partial` terminal carrying the completed shots and a
//!     Wilson interval instead of a bare failure; the `progress` verb
//!     reports live batch counts before and the cached partial after.
//! 12. **Checkpoint faults** — injected ENOSPC on progress appends
//!     degrades checkpointing to off (health flag) while jobs keep
//!     completing golden; injected checkpoint corruption is dropped at
//!     replay in favour of the previous valid checkpoint.
//!
//! `--smoke` runs a reduced configuration; `--seed N` changes the
//! deterministic workload. Exits non-zero on the first violated
//! invariant.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qpdo_bench::framing::write_record;

use qpdo_bench::supervisor::CancelToken;
use qpdo_serve::job::{execute, job_seed, JobKind, JobSpec};
use qpdo_serve::protocol::{Client, JobState, RejectCode, Request, Response};
use qpdo_serve::wal::{recover, JobOutcome};
use qpdo_surface17::experiment::LogicalErrorKind;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);
const TERMINAL_TIMEOUT: Duration = Duration::from_secs(120);

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns `qpdo_serve` (sibling binary in the same target dir) and
    /// waits for its `listening on <addr>` / `ready` banner.
    fn spawn(wal_dir: &Path, seed: u64, extra: &[&str]) -> Daemon {
        let daemon_path = std::env::current_exe()
            .expect("own path")
            .parent()
            .expect("binary dir")
            .join("qpdo_serve");
        let mut child = Command::new(&daemon_path)
            .arg("--wal-dir")
            .arg(wal_dir)
            .args(["--port", "0", "--seed", &seed.to_string()])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", daemon_path.display()));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let mut addr = None;
        for line in &mut lines {
            let line = line.expect("daemon stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                addr = Some(rest.parse().expect("daemon printed a socket address"));
            }
            if line == "ready" {
                break;
            }
        }
        // Keep draining stdout so the daemon never blocks on the pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon {
            child,
            addr: addr.expect("daemon printed its listening address"),
        }
    }

    fn client(&self) -> Client {
        let deadline = Instant::now() + CLIENT_TIMEOUT;
        loop {
            match Client::connect(self.addr, Some(CLIENT_TIMEOUT)) {
                Ok(client) => return client,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("cannot connect to daemon at {}: {e}", self.addr),
            }
        }
    }

    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL the daemon");
        self.child.wait().expect("reap the killed daemon");
    }

    /// Drains the daemon and waits for a clean exit.
    fn drain(mut self) {
        let response = self.client().call(&Request::Drain).expect("drain call");
        assert_eq!(response, Response::Drained, "drain must report drained");
        let deadline = Instant::now() + CLIENT_TIMEOUT;
        loop {
            match self.child.try_wait().expect("poll daemon exit") {
                Some(status) => {
                    assert!(status.success(), "drained daemon exited with {status}");
                    return;
                }
                None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
                None => {
                    self.kill();
                    panic!("daemon did not exit after drain");
                }
            }
        }
    }
}

fn submit(client: &mut Client, spec: &JobSpec) -> Response {
    client
        .call(&Request::Submit(spec.clone()))
        .expect("submit call")
}

/// Polls a job until it reaches a terminal state, reconnecting as
/// needed (the daemon may be between lives during the crash drill).
fn wait_terminal(daemon: &Daemon, id: &str) -> JobState {
    let deadline = Instant::now() + TERMINAL_TIMEOUT;
    let mut client = daemon.client();
    loop {
        match client.call(&Request::Query(id.to_owned())) {
            Ok(Response::State(
                _,
                state @ (JobState::Done(_) | JobState::Failed(_) | JobState::Partial(_)),
            )) => {
                return state;
            }
            Ok(Response::State(..)) => {}
            Ok(other) => panic!("query {id} answered {other:?}"),
            Err(_) => client = daemon.client(),
        }
        assert!(
            Instant::now() < deadline,
            "job {id} not terminal within {TERMINAL_TIMEOUT:?}"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// The unfaulted ground truth: the job executed in-process on its
/// preferred backend with the deterministic daemon seed.
fn golden(base_seed: u64, spec: &JobSpec) -> String {
    let backend = spec.kind.backend_preference()[0];
    execute(
        &spec.kind,
        backend,
        job_seed(base_seed, &spec.id),
        &CancelToken::new(),
    )
    .unwrap_or_else(|e| panic!("golden execution of {} failed: {e}", spec.id))
}

fn job(id: &str, kind: JobKind) -> JobSpec {
    JobSpec {
        id: id.to_owned(),
        deadline_ms: None,
        kind,
    }
}

fn workload(wave: usize, count: usize) -> Vec<JobSpec> {
    (0..count)
        .map(|i| match i % 3 {
            0 => job(&format!("bell-{wave}-{i}"), JobKind::Bell { shots: 12 }),
            1 => job(
                &format!("rc-{wave}-{i}"),
                JobKind::RandomCircuit {
                    qubits: 4,
                    gates: 30,
                },
            ),
            _ => job(
                &format!("ler-{wave}-{i}"),
                JobKind::Ler {
                    per: 0.006,
                    kind: LogicalErrorKind::XL,
                    with_pf: true,
                    target: 2,
                    max_windows: 300,
                },
            ),
        })
        .collect()
}

fn fresh_dir(root: &Path, name: &str) -> PathBuf {
    let dir = root.join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear old drill directory");
    }
    dir
}

/// Drill 1: SIGKILL mid-load, restart, exactly-once recovery. Each
/// kill round submits a fresh wave of jobs first so the daemon always
/// dies with work in flight, not idle.
fn crash_drill(root: &Path, seed: u64, kills: usize, wave_size: usize) {
    println!("== crash drill: {kills} kill(s), {wave_size}-job wave per kill ==");
    let wal_dir = fresh_dir(root, "crash-wal");
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut interrupted = 0;

    let mut daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "2", "--chaos-stall-ms", "150"]);
    for round in 0..kills {
        let wave = workload(round, wave_size);
        let mut client = daemon.client();
        for spec in &wave {
            assert_eq!(
                submit(&mut client, spec),
                Response::Accepted(spec.id.clone()),
                "submission of {} must be accepted",
                spec.id
            );
        }
        specs.extend(wave);
        // Let a couple of completions land, then yank the power cord
        // with most of the wave still queued or on the workers.
        std::thread::sleep(Duration::from_millis(120));
        daemon.kill();

        // Offline audit of the torn journal: consistent, every
        // accepted job present, and (usually) some still pending.
        let recovery = recover(&wal_dir).expect("torn journal still readable");
        assert!(
            recovery.is_consistent(),
            "torn journal audit: duplicates {:?}, orphans {:?}",
            recovery.duplicate_terminals,
            recovery.orphaned
        );
        assert_eq!(recovery.jobs.len(), specs.len(), "accepted jobs survive");
        interrupted += recovery.pending().len();
        println!(
            "   kill {}: {} of {} jobs caught unfinished",
            round + 1,
            recovery.pending().len(),
            specs.len()
        );

        let stall = if round + 1 == kills { "0" } else { "150" };
        daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "2", "--chaos-stall-ms", stall]);
        let mut client = daemon.client();
        for spec in &specs {
            // WAL-before-ack: every accepted job survived the crash.
            assert_eq!(
                submit(&mut client, spec),
                Response::Duplicate(spec.id.clone()),
                "{} was acked before the kill, so resubmission must deduplicate",
                spec.id
            );
        }
    }
    assert!(
        interrupted >= 1,
        "no kill ever interrupted a job: the drill timing is broken"
    );

    for spec in &specs {
        match wait_terminal(&daemon, &spec.id) {
            JobState::Done(record) => assert_eq!(
                record,
                golden(seed, spec),
                "{} must match the unfaulted execution byte-for-byte",
                spec.id
            ),
            JobState::Failed(error) => panic!("{} failed: {error}", spec.id),
            _ => unreachable!(),
        }
    }
    daemon.drain();

    // Offline journal audit: exactly one terminal record per job.
    let recovery = recover(&wal_dir).expect("journal readable after drain");
    assert!(
        recovery.is_consistent(),
        "journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    assert_eq!(recovery.jobs.len(), specs.len(), "journal job count");
    assert!(recovery.pending().is_empty(), "no job may stay pending");
    for spec in &specs {
        let recovered = recovery
            .jobs
            .iter()
            .find(|j| j.spec.id == spec.id)
            .unwrap_or_else(|| panic!("{} missing from journal", spec.id));
        match &recovered.outcome {
            Some(JobOutcome::Done(record)) => assert_eq!(record, &golden(seed, spec)),
            other => panic!("{} journaled as {other:?}", spec.id),
        }
    }
    println!("   exactly-once verified for all {} jobs", specs.len());
}

/// Drill 2: breaker trips on injected failures, reroutes, and recovers
/// through the half-open probe.
fn breaker_drill(root: &Path, seed: u64, jobs: usize) {
    println!("== breaker drill: {jobs} jobs across an injected packed outage ==");
    let wal_dir = fresh_dir(root, "breaker-wal");
    let daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "1",
            "--chaos-backend-fail",
            "packed:3",
            "--breaker-threshold",
            "2",
            "--breaker-cooloff-ms",
            "150",
        ],
    );
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| job(&format!("brk-{i}"), JobKind::Bell { shots: 8 }))
        .collect();
    {
        let mut client = daemon.client();
        for spec in &specs {
            assert_eq!(
                submit(&mut client, spec),
                Response::Accepted(spec.id.clone())
            );
        }
    }
    for spec in &specs {
        match wait_terminal(&daemon, &spec.id) {
            JobState::Done(record) => assert_eq!(
                record,
                golden(seed, spec),
                "{} rerouted result must still be golden",
                spec.id
            ),
            JobState::Failed(error) => panic!("{} failed: {error}", spec.id),
            _ => unreachable!(),
        }
    }

    let mut client = daemon.client();
    let Response::Health(health) = client.call(&Request::Health).expect("health call") else {
        panic!("health request must answer with a snapshot");
    };
    assert!(health.breaker_trips >= 1, "the packed breaker must trip");
    assert!(health.reroutes >= 1, "jobs must reroute around the outage");
    println!(
        "   trips={} reroutes={}",
        health.breaker_trips, health.reroutes
    );

    // The injected budget is exhausted; keep probing with fresh jobs
    // until the half-open probe restores every breaker to closed.
    let deadline = Instant::now() + TERMINAL_TIMEOUT;
    let mut probe = 0;
    loop {
        let spec = job(&format!("probe-{probe}"), JobKind::Bell { shots: 2 });
        probe += 1;
        assert_eq!(
            submit(&mut client, &spec),
            Response::Accepted(spec.id.clone())
        );
        let _ = wait_terminal(&daemon, &spec.id);
        let Response::Health(health) = client.call(&Request::Health).expect("health call") else {
            panic!("health request must answer with a snapshot");
        };
        if health.breakers.iter().all(|b| b.name() == "closed") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breakers never returned to closed: {:?}",
            health.breakers
        );
        std::thread::sleep(Duration::from_millis(60));
    }
    println!("   half-open probe restored all breakers to closed");
    daemon.drain();
}

/// Drill 3: a tiny queue sheds a burst; accepted jobs still finish.
fn overload_drill(root: &Path, seed: u64, burst: usize) {
    println!("== overload drill: burst of {burst} into a depth-2 queue ==");
    let wal_dir = fresh_dir(root, "overload-wal");
    let daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "1",
            "--queue-depth",
            "2",
            "--chaos-stall-ms",
            "250",
        ],
    );
    let mut accepted = Vec::new();
    let mut shed = 0;
    {
        let mut client = daemon.client();
        for i in 0..burst {
            let spec = job(&format!("burst-{i}"), JobKind::Bell { shots: 2 });
            match submit(&mut client, &spec) {
                Response::Accepted(_) => accepted.push(spec),
                Response::Rejected(reason) => {
                    assert_eq!(
                        reason.code,
                        RejectCode::Overloaded,
                        "shed rejection must carry the overloaded code, said {reason:?}"
                    );
                    shed += 1;
                }
                other => panic!("burst submit answered {other:?}"),
            }
        }
    }
    assert!(
        shed >= 1,
        "a depth-2 queue must shed part of a {burst} burst"
    );
    assert!(!accepted.is_empty(), "some of the burst must be admitted");
    for spec in &accepted {
        match wait_terminal(&daemon, &spec.id) {
            JobState::Done(record) => assert_eq!(record, golden(seed, spec)),
            JobState::Failed(error) => panic!("{} failed: {error}", spec.id),
            _ => unreachable!(),
        }
    }
    println!(
        "   {} accepted, {shed} shed, all accepted completed",
        accepted.len()
    );
    daemon.drain();
}

/// Drill 4: a stalled execution blows the job deadline.
fn deadline_drill(root: &Path, seed: u64) {
    println!("== deadline drill: 100 ms deadline against a 400 ms stall ==");
    let wal_dir = fresh_dir(root, "deadline-wal");
    let daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "1", "--chaos-stall-ms", "400"]);
    let spec = JobSpec {
        id: "late-1".to_owned(),
        deadline_ms: Some(100),
        kind: JobKind::Bell { shots: 2 },
    };
    let mut client = daemon.client();
    assert_eq!(
        submit(&mut client, &spec),
        Response::Accepted(spec.id.clone())
    );
    match wait_terminal(&daemon, &spec.id) {
        JobState::Failed(error) => assert!(
            error.contains("deadline"),
            "late job must fail on its deadline, failed with {error:?}"
        ),
        JobState::Done(record) => panic!("late job completed ({record}) despite its deadline"),
        _ => unreachable!(),
    }
    println!("   deadline enforced");
    daemon.drain();
}

/// Drill 5: graceful drain racing the deadline watcher — deadlines
/// fire while the daemon drains a stalled queue. Exactly one terminal
/// record per job must land (the serialized transition), and the drain
/// must still complete instead of wedging on a conflicting append.
fn drain_deadline_drill(root: &Path, seed: u64, jobs: usize) {
    println!("== drain-deadline drill: {jobs} deadlined jobs drained mid-flight ==");
    let wal_dir = fresh_dir(root, "drain-deadline-wal");
    let daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "2", "--chaos-stall-ms", "250"]);
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| JobSpec {
            id: format!("dd-{i}"),
            // The 250 ms stall guarantees the watcher fires on every
            // round the drain has to wait out.
            deadline_ms: Some(150),
            kind: JobKind::Bell { shots: 2 },
        })
        .collect();
    let mut client = daemon.client();
    for spec in &specs {
        assert_eq!(
            submit(&mut client, spec),
            Response::Accepted(spec.id.clone())
        );
    }
    // Drain immediately: every deadline expires while the queue drains.
    daemon.drain();

    let recovery = recover(&wal_dir).expect("journal readable after drain");
    assert!(
        recovery.is_consistent(),
        "drain/deadline race journaled duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    assert_eq!(recovery.jobs.len(), specs.len(), "accepted jobs survive");
    assert!(
        recovery.pending().is_empty(),
        "drain returned with jobs still pending"
    );
    let mut expired = 0;
    for job in &recovery.jobs {
        match &job.outcome {
            Some(JobOutcome::Failed(error)) => {
                assert!(
                    error.contains("deadline"),
                    "{} failed with {error:?}, not its deadline",
                    job.spec.id
                );
                expired += 1;
            }
            // A job that finished before its deadline fired keeps its
            // completion — but only one terminal record either way.
            Some(JobOutcome::Done(_)) => {}
            // Bell jobs never checkpoint, so an anytime partial here
            // would mean the daemon invented progress from nothing.
            Some(JobOutcome::Partial(detail)) => {
                panic!(
                    "{} journaled a partial ({detail}) without progress",
                    job.spec.id
                )
            }
            None => unreachable!("pending() was empty"),
        }
    }
    assert!(
        expired >= 1,
        "no deadline fired during the drain: the drill timing is broken"
    );
    println!(
        "   drain completed, {expired}/{} deadlines enforced, one terminal each",
        specs.len()
    );
}

/// Drill 6: SIGKILL during group commit. Eight submitter threads keep
/// the commit thread folding many records per fsync (batch 32, 2 ms
/// straggler window) when the kill lands, so acks in flight at death
/// were granted by *batched* syncs. Every acked id must still be in
/// the torn journal: the WAL-before-ack invariant has to survive
/// batching, not just the fsync-per-record discipline it replaced.
fn group_commit_crash_drill(root: &Path, seed: u64, jobs: usize) {
    println!("== group-commit crash drill: {jobs} jobs, SIGKILL mid-batch ==");
    let wal_dir = fresh_dir(root, "group-commit-wal");
    let mut daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "2",
            "--queue-depth",
            "4096",
            "--chaos-stall-ms",
            "100",
            "--commit-batch",
            "32",
            "--commit-interval-us",
            "2000",
        ],
    );
    let addr = daemon.addr;
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| job(&format!("gc-{i}"), JobKind::Bell { shots: 4 }))
        .collect();
    let acked: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let threads = 8usize.min(jobs.max(1));
    std::thread::scope(|scope| {
        for chunk in specs.chunks(specs.len().div_ceil(threads)) {
            let acked = &acked;
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr, Some(CLIENT_TIMEOUT)) else {
                    return; // the daemon died before we connected
                };
                for spec in chunk {
                    match client.call(&Request::Submit(spec.clone())) {
                        Ok(Response::Accepted(id)) => {
                            acked.lock().expect("acked lock").push(id);
                        }
                        Ok(other) => panic!("group-commit submit answered {other:?}"),
                        Err(_) => return, // the daemon died under us
                    }
                }
            });
        }
        // Let the batches start flowing, then kill mid-stream.
        std::thread::sleep(Duration::from_millis(30));
        daemon.kill();
    });
    let acked = acked.into_inner().expect("acked lock");
    assert!(
        !acked.is_empty(),
        "no submission was acked before the kill: the drill timing is broken"
    );

    let recovery = recover(&wal_dir).expect("torn journal still readable");
    assert!(
        recovery.is_consistent(),
        "torn journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    for id in &acked {
        assert!(
            recovery.jobs.iter().any(|j| j.spec.id == *id),
            "{id} was acked through a group commit but is missing from the torn journal"
        );
    }
    println!(
        "   {} of {} acked before the kill, every ack durable",
        acked.len(),
        specs.len()
    );

    let daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "2",
            "--queue-depth",
            "4096",
            "--commit-batch",
            "32",
            "--commit-interval-us",
            "2000",
        ],
    );
    let acked_set: HashSet<&String> = acked.iter().collect();
    let mut client = daemon.client();
    for spec in &specs {
        let response = submit(&mut client, spec);
        if acked_set.contains(&spec.id) {
            assert_eq!(
                response,
                Response::Duplicate(spec.id.clone()),
                "{} was acked before the kill, so resubmission must deduplicate",
                spec.id
            );
        } else {
            // An unacked submission may still have reached the journal
            // (written and synced, killed before the reply flushed).
            assert!(
                matches!(response, Response::Accepted(_) | Response::Duplicate(_)),
                "{} resubmission answered {response:?}",
                spec.id
            );
        }
    }
    for spec in &specs {
        match wait_terminal(&daemon, &spec.id) {
            JobState::Done(record) => assert_eq!(
                record,
                golden(seed, spec),
                "{} must match the unfaulted execution byte-for-byte",
                spec.id
            ),
            JobState::Failed(error) => panic!("{} failed: {error}", spec.id),
            _ => unreachable!(),
        }
    }
    daemon.drain();

    let recovery = recover(&wal_dir).expect("journal readable after drain");
    assert!(
        recovery.is_consistent(),
        "journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    assert_eq!(recovery.jobs.len(), specs.len(), "journal job count");
    assert!(recovery.pending().is_empty(), "no job may stay pending");
    println!("   exactly-once verified for all {} jobs", specs.len());
}

/// Drill 7: overload waves against the event loop. Several client
/// threads hammer a depth-3 queue at once; the loop must answer every
/// one of them (typed `overloaded` sheds, never a stall), keep
/// answering health queries mid-wave, and finish every accepted job
/// golden.
fn overload_wave_drill(root: &Path, seed: u64, waves: usize, clients: usize) {
    println!("== overload wave drill: {waves} wave(s) x {clients} concurrent clients ==");
    let wal_dir = fresh_dir(root, "overload-wave-wal");
    let daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "1",
            "--queue-depth",
            "3",
            "--chaos-stall-ms",
            "150",
        ],
    );
    let addr = daemon.addr;
    let accepted: Mutex<Vec<JobSpec>> = Mutex::new(Vec::new());
    let shed = std::sync::atomic::AtomicUsize::new(0);
    for wave in 0..waves {
        std::thread::scope(|scope| {
            for c in 0..clients {
                let accepted = &accepted;
                let shed = &shed;
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr, Some(CLIENT_TIMEOUT)).expect("wave client connects");
                    for i in 0..4 {
                        let spec = job(&format!("wave-{wave}-{c}-{i}"), JobKind::Bell { shots: 2 });
                        match client
                            .call(&Request::Submit(spec.clone()))
                            .expect("wave submit")
                        {
                            Response::Accepted(_) => {
                                accepted.lock().expect("accepted lock").push(spec);
                            }
                            Response::Rejected(reason) => {
                                assert_eq!(
                                    reason.code,
                                    RejectCode::Overloaded,
                                    "wave shed must carry the overloaded code, said {reason:?}"
                                );
                                shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            other => panic!("wave submit answered {other:?}"),
                        }
                    }
                });
            }
            // The loop must keep answering control traffic mid-wave.
            let mut health_client =
                Client::connect(addr, Some(CLIENT_TIMEOUT)).expect("health client connects");
            let Response::Health(health) = health_client
                .call(&Request::Health)
                .expect("health mid-wave")
            else {
                panic!("health request must answer with a snapshot");
            };
            assert!(health.accepting, "daemon must stay accepting mid-wave");
        });
        // Let the single worker make headway so the next wave is also
        // partially admitted, not shed wholesale.
        std::thread::sleep(Duration::from_millis(200));
    }
    let accepted = accepted.into_inner().expect("accepted lock");
    let shed = shed.into_inner();
    assert!(
        shed >= 1,
        "a depth-3 queue must shed part of {waves} wave(s) of {clients} clients"
    );
    assert!(!accepted.is_empty(), "some of each wave must be admitted");
    for spec in &accepted {
        match wait_terminal(&daemon, &spec.id) {
            JobState::Done(record) => assert_eq!(record, golden(seed, spec)),
            JobState::Failed(error) => panic!("{} failed: {error}", spec.id),
            _ => unreachable!(),
        }
    }
    daemon.drain();
    let recovery = recover(&wal_dir).expect("journal readable after drain");
    assert!(
        recovery.is_consistent(),
        "journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    assert_eq!(recovery.jobs.len(), accepted.len(), "journal job count");
    println!(
        "   {} accepted, {shed} shed across {waves} wave(s), all accepted completed",
        accepted.len()
    );
}

/// Drill 8: a slowloris client sends half a frame and goes silent. The
/// per-connection read deadline must reap it — without it the stalled
/// parse state would pin its buffer forever — while a live client on
/// the same event loop completes a job unharmed.
fn stall_drill(root: &Path, seed: u64) {
    println!("== mid-frame stall drill: slowloris vs a 300 ms read deadline ==");
    let wal_dir = fresh_dir(root, "stall-wal");
    let daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "1", "--io-timeout-ms", "300"]);

    // Park half a valid frame on the wire and never send the rest.
    let mut framed = Vec::new();
    write_record(&mut framed, b"health").expect("frame a health line");
    let mut stalled = TcpStream::connect(daemon.addr).expect("slowloris connects");
    stalled
        .write_all(&framed[..framed.len() / 2])
        .expect("send half a frame");

    // Live traffic on the same loop is unaffected by the parked parse.
    let spec = job("stall-live", JobKind::Bell { shots: 4 });
    let mut client = daemon.client();
    assert_eq!(
        submit(&mut client, &spec),
        Response::Accepted(spec.id.clone())
    );
    match wait_terminal(&daemon, &spec.id) {
        JobState::Done(record) => assert_eq!(record, golden(seed, &spec)),
        JobState::Failed(error) => panic!("{} failed: {error}", spec.id),
        _ => unreachable!(),
    }

    // The read deadline must close the stalled connection; a server
    // that never reaps half-open peers hangs here until the drill's
    // own deadline calls it out.
    stalled
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("read timeout");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut buf = [0u8; 16];
    loop {
        match stalled.read(&mut buf) {
            Ok(0) => break, // clean close: reaped
            Ok(n) => panic!("server answered {n} bytes to half a frame"),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                assert!(
                    Instant::now() < deadline,
                    "stalled connection never reaped by the io deadline"
                );
            }
            Err(_) => break, // reset: also reaped
        }
    }
    println!("   slowloris reaped, live traffic completed");
    daemon.drain();
}

/// Drill 9: injected fsync failures. After the fault fires the daemon
/// must refuse new work with typed `journal` (the ambiguous in-batch
/// record) and `degraded` rejections and stop advertising `accepting`;
/// a restart without the fault completes every previously-acked job
/// golden and accepts fresh work again.
fn fsync_failure_drill(root: &Path, seed: u64) {
    println!("== fsync failure drill: degraded latch and clean recovery ==");
    let wal_dir = fresh_dir(root, "fsync-wal");
    let mut daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "1",
            "--chaos-stall-ms",
            "50",
            "--chaos-fsync-fail",
            "3",
        ],
    );
    let mut client = daemon.client();
    let mut acked: Vec<JobSpec> = Vec::new();
    let mut ambiguous: Vec<JobSpec> = Vec::new();
    let mut degraded_rejections = 0usize;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut i = 0;
    while degraded_rejections == 0 {
        assert!(
            Instant::now() < deadline,
            "daemon never degraded despite --chaos-fsync-fail 3"
        );
        let spec = job(&format!("fs-{i}"), JobKind::Bell { shots: 2 });
        i += 1;
        match submit(&mut client, &spec) {
            Response::Accepted(_) => acked.push(spec),
            Response::Rejected(reason) => match reason.code {
                // The record sharing the failed batch: durability
                // unknown, parked as ambiguous.
                RejectCode::Journal => ambiguous.push(spec),
                RejectCode::Degraded => degraded_rejections += 1,
                other => panic!("degrading daemon rejected fs-{} with {other:?}", i - 1),
            },
            other => panic!("submit answered {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        !acked.is_empty(),
        "the first submit must be acked before the injected fsync failure"
    );
    // Degraded is sticky and visible: health stops advertising
    // `accepting`, and further submissions keep bouncing.
    let Response::Health(health) = client.call(&Request::Health).expect("health call") else {
        panic!("health request must answer with a snapshot");
    };
    assert!(
        !health.accepting,
        "a degraded daemon must not advertise accepting"
    );
    let probe = job("fs-probe", JobKind::Bell { shots: 2 });
    match submit(&mut client, &probe) {
        Response::Rejected(reason) => assert_eq!(
            reason.code,
            RejectCode::Degraded,
            "post-latch submit must carry the degraded code, said {reason:?}"
        ),
        other => panic!("degraded daemon answered a fresh submit with {other:?}"),
    }
    println!(
        "   degraded after {} ack(s), {} ambiguous, typed rejections observed",
        acked.len(),
        ambiguous.len()
    );
    daemon.kill();

    // Restart without the fault: acked jobs are durable and complete
    // golden; ambiguous ones resolve from whatever actually hit disk.
    let daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "1"]);
    let mut client = daemon.client();
    for spec in &acked {
        assert_eq!(
            submit(&mut client, spec),
            Response::Duplicate(spec.id.clone()),
            "{} was acked before degradation, so resubmission must deduplicate",
            spec.id
        );
    }
    for spec in &ambiguous {
        let response = submit(&mut client, spec);
        assert!(
            matches!(response, Response::Accepted(_) | Response::Duplicate(_)),
            "{} resubmission answered {response:?}",
            spec.id
        );
    }
    let fresh = job("fs-fresh", JobKind::Bell { shots: 2 });
    assert_eq!(
        submit(&mut client, &fresh),
        Response::Accepted(fresh.id.clone()),
        "a recovered daemon must accept fresh work"
    );
    for spec in acked.iter().chain(ambiguous.iter()).chain([&fresh]) {
        match wait_terminal(&daemon, &spec.id) {
            JobState::Done(record) => assert_eq!(
                record,
                golden(seed, spec),
                "{} must match the unfaulted execution byte-for-byte",
                spec.id
            ),
            JobState::Failed(error) => panic!("{} failed: {error}", spec.id),
            _ => unreachable!(),
        }
    }
    daemon.drain();
    let recovery = recover(&wal_dir).expect("journal readable after drain");
    assert!(
        recovery.is_consistent(),
        "journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    assert!(recovery.pending().is_empty(), "no job may stay pending");
    println!("   recovered: acked jobs golden, fresh work accepted");
}

/// Polls the `progress` verb until the job reports at least `batches`
/// completed batches, panicking if the job goes terminal first (the
/// drill workload was sized too small for its machine).
fn wait_batches(client: &mut Client, id: &str, batches: u64) -> u64 {
    let deadline = Instant::now() + TERMINAL_TIMEOUT;
    loop {
        match client
            .call(&Request::Progress(id.to_owned()))
            .expect("progress call")
        {
            Response::Progress {
                batches: done,
                shots,
                ..
            } => {
                if done >= batches {
                    assert!(shots > 0, "{id}: completed batches must carry shots");
                    return done;
                }
            }
            Response::State(_, state) => {
                panic!("{id} went terminal ({state:?}) before {batches} batches; grow the workload")
            }
            other => panic!("progress {id} answered {other:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "{id} never reached {batches} batches"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn health(client: &mut Client) -> qpdo_serve::protocol::HealthSnapshot {
    match client.call(&Request::Health).expect("health call") {
        Response::Health(health) => *health,
        other => panic!("health request answered {other:?}"),
    }
}

/// Drill 10: SIGKILL mid shot-sweep, resume from the durable
/// checkpoint. The restarted daemon must finish the job byte-identical
/// to an unfaulted scratch run while re-executing strictly fewer
/// batches — exactly the suffix past the checkpoint, proven by the
/// `batches` execution counter in its health snapshot.
fn resume_drill(root: &Path, seed: u64, d: usize, shots: u64, kill_after: u64) {
    println!(
        "== resume drill: SIGKILL a d={d} sweep of {shots} shots at >={kill_after} batches =="
    );
    let wal_dir = fresh_dir(root, "resume-wal");
    let total_batches = shots.div_ceil(64);
    assert!(kill_after < total_batches, "drill must kill mid-sweep");
    let mut daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "1", "--progress-batches", "4"]);
    let spec = job(
        "resume-1",
        JobKind::LerSurface {
            d,
            per: 0.05,
            shots,
        },
    );
    let mut client = daemon.client();
    assert_eq!(
        submit(&mut client, &spec),
        Response::Accepted(spec.id.clone())
    );
    let observed = wait_batches(&mut client, &spec.id, kill_after);
    daemon.kill();

    // Offline audit of the torn journal: the sweep is pending with a
    // plausible durable checkpoint strictly inside the run.
    let recovery = recover(&wal_dir).expect("torn journal still readable");
    assert!(
        recovery.is_consistent(),
        "torn journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    let resumable = recovery.resumable();
    assert!(
        resumable.iter().any(|(j, _)| j.spec.id == spec.id),
        "the killed sweep must be reported resumable, got {:?}",
        resumable
            .iter()
            .map(|(j, _)| &j.spec.id)
            .collect::<Vec<_>>()
    );
    let ckpt = recovery
        .jobs
        .iter()
        .find(|j| j.spec.id == spec.id)
        .expect("killed sweep in the journal")
        .checkpoint
        .clone()
        .expect("a durable checkpoint survived the kill");
    assert!(ckpt.plausible(), "recovered checkpoint {ckpt:?}");
    assert!(
        ckpt.batches >= 4 && ckpt.batches < total_batches,
        "checkpoint at {} of {total_batches} batches",
        ckpt.batches
    );
    println!(
        "   killed at >={observed} batches, durable checkpoint at {} of {total_batches}",
        ckpt.batches
    );

    let daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "1", "--progress-batches", "4"]);
    match wait_terminal(&daemon, &spec.id) {
        JobState::Done(record) => assert_eq!(
            record,
            golden(seed, &spec),
            "the resumed run must be byte-identical to an unfaulted scratch run"
        ),
        other => panic!("resumed sweep ended as {other:?}"),
    }
    // The execution counter proves the checkpoint saved work: the
    // restarted daemon ran exactly the unfinished suffix, never the
    // whole sweep again.
    let mut client = daemon.client();
    let snapshot = health(&mut client);
    assert_eq!(
        snapshot.batches,
        total_batches - ckpt.batches,
        "resume must re-execute exactly the batches past the checkpoint"
    );
    assert!(
        snapshot.batches < total_batches,
        "resume re-executed the whole sweep from scratch"
    );
    daemon.drain();

    let recovery = recover(&wal_dir).expect("journal readable after drain");
    assert!(
        recovery.is_consistent(),
        "journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    assert!(recovery.pending().is_empty(), "no job may stay pending");
    println!(
        "   resumed: {} of {total_batches} batches re-executed, result golden",
        total_batches - ckpt.batches
    );
}

/// Drill 11: a deadline landing mid-sweep ends the job as a typed
/// anytime `partial` — completed shots, target, failures, and a Wilson
/// interval — instead of a bare `deadline exceeded` failure. The
/// `progress` verb answers live batch counts while the sweep runs and
/// the cached partial after it lands.
fn partial_drill(root: &Path, seed: u64) {
    println!("== anytime partial drill: 600 ms deadline against a ~1M-shot sweep ==");
    let wal_dir = fresh_dir(root, "partial-wal");
    let daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "1"]);
    let spec = JobSpec {
        id: "anytime-1".to_owned(),
        deadline_ms: Some(600),
        kind: JobKind::LerSurface {
            d: 11,
            per: 0.05,
            shots: 1_000_000,
        },
    };
    let mut client = daemon.client();
    assert_eq!(
        submit(&mut client, &spec),
        Response::Accepted(spec.id.clone())
    );
    wait_batches(&mut client, &spec.id, 1);

    let JobState::Partial(detail) = wait_terminal(&daemon, &spec.id) else {
        panic!("deadlined sweep must end as an anytime partial");
    };
    // detail = "{shots} {target} {failures} {ci_lo} {ci_hi}"
    let fields: Vec<&str> = detail.split_whitespace().collect();
    assert_eq!(fields.len(), 5, "partial detail {detail:?}");
    let done_shots: u64 = fields[0].parse().expect("completed shots");
    let target: u64 = fields[1].parse().expect("target shots");
    let failures: u64 = fields[2].parse().expect("failures");
    let lo: f64 = fields[3].parse().expect("ci low");
    let hi: f64 = fields[4].parse().expect("ci high");
    assert!(
        done_shots > 0,
        "a partial must carry completed work: {detail}"
    );
    assert_eq!(target, 1_000_000, "{detail}");
    assert!(done_shots < target, "{detail}");
    assert!(failures <= done_shots, "{detail}");
    assert!(
        (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0,
        "the Wilson interval must be a sane probability range: {detail}"
    );

    // After the terminal, `progress` answers with the cached partial.
    match client
        .call(&Request::Progress(spec.id.clone()))
        .expect("post-terminal progress call")
    {
        Response::State(_, JobState::Partial(cached)) => assert_eq!(cached, detail),
        other => panic!("post-terminal progress answered {other:?}"),
    }
    let snapshot = health(&mut client);
    assert_eq!(snapshot.partials, 1, "health must count the partial");
    daemon.drain();

    let recovery = recover(&wal_dir).expect("journal readable after drain");
    assert!(
        recovery.is_consistent(),
        "journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    assert!(recovery.pending().is_empty(), "no job may stay pending");
    match &recovery.jobs[0].outcome {
        Some(JobOutcome::Partial(journaled)) => assert_eq!(journaled, &detail),
        other => panic!("partial journaled as {other:?}"),
    }
    println!("   partial delivered: {done_shots} of {target} shots, CI [{lo}, {hi}]");
}

/// Drill 12: checkpoint-path fault injection.
///
/// Part A: progress appends start failing (injected ENOSPC) after two
/// successes. Checkpointing must degrade to off — visible in health —
/// while the running job and fresh submissions keep completing golden:
/// losing checkpoint durability must never take down execution.
///
/// Part B: every other journaled checkpoint is corrupted in flight.
/// After a SIGKILL, replay must drop the implausible records and fall
/// back to the newest valid checkpoint, and the resumed run must still
/// finish byte-identical to scratch.
fn checkpoint_fault_drill(root: &Path, seed: u64, d: usize, shots: u64, kill_after: u64) {
    println!("== checkpoint fault drill: ENOSPC degrade, then corrupt-checkpoint fallback ==");
    let wal_dir = fresh_dir(root, "ckpt-enospc-wal");
    let daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "1",
            "--progress-batches",
            "4",
            "--chaos-progress-fail",
            "2",
        ],
    );
    let spec = job(
        "enospc-1",
        JobKind::LerSurface {
            d: 9,
            per: 0.05,
            shots: 16384,
        },
    );
    let mut client = daemon.client();
    assert_eq!(
        submit(&mut client, &spec),
        Response::Accepted(spec.id.clone())
    );
    match wait_terminal(&daemon, &spec.id) {
        JobState::Done(record) => assert_eq!(
            record,
            golden(seed, &spec),
            "a job must survive losing its checkpoint stream"
        ),
        other => panic!("{} ended as {other:?}", spec.id),
    }
    let snapshot = health(&mut client);
    assert!(
        !snapshot.checkpointing,
        "a failed progress append must degrade checkpointing to off"
    );
    assert!(
        snapshot.accepting,
        "checkpoint degradation is advisory: the daemon must keep accepting"
    );
    let fresh = job("enospc-fresh", JobKind::Bell { shots: 4 });
    assert_eq!(
        submit(&mut client, &fresh),
        Response::Accepted(fresh.id.clone())
    );
    match wait_terminal(&daemon, &fresh.id) {
        JobState::Done(record) => assert_eq!(record, golden(seed, &fresh)),
        other => panic!("{} ended as {other:?}", fresh.id),
    }
    daemon.drain();
    println!("   ENOSPC: checkpointing off, execution unharmed");

    // Part B: corrupted checkpoints are dropped at replay.
    let wal_dir = fresh_dir(root, "ckpt-corrupt-wal");
    let mut daemon = Daemon::spawn(
        &wal_dir,
        seed,
        &[
            "--jobs",
            "1",
            "--progress-batches",
            "4",
            "--chaos-corrupt-checkpoint",
        ],
    );
    let spec = job(
        "corrupt-1",
        JobKind::LerSurface {
            d,
            per: 0.05,
            shots,
        },
    );
    let mut client = daemon.client();
    assert_eq!(
        submit(&mut client, &spec),
        Response::Accepted(spec.id.clone())
    );
    wait_batches(&mut client, &spec.id, kill_after);
    daemon.kill();

    let recovery = recover(&wal_dir).expect("torn journal still readable");
    assert!(
        recovery.is_consistent(),
        "torn journal audit: duplicates {:?}, orphans {:?}",
        recovery.duplicate_terminals,
        recovery.orphaned
    );
    let ckpt = recovery
        .jobs
        .iter()
        .find(|j| j.spec.id == spec.id)
        .expect("killed sweep in the journal")
        .checkpoint
        .clone()
        .expect("a valid checkpoint must survive the corrupted stream");
    // Every other append was corrupted (failures > shots); replay must
    // have fallen back to a plausible one, never surfaced the garbage.
    assert!(
        ckpt.plausible(),
        "replay surfaced an implausible checkpoint: {ckpt:?}"
    );
    println!(
        "   corruption: replay fell back to the valid checkpoint at batch {}",
        ckpt.batches
    );

    let daemon = Daemon::spawn(&wal_dir, seed, &["--jobs", "1", "--progress-batches", "4"]);
    match wait_terminal(&daemon, &spec.id) {
        JobState::Done(record) => assert_eq!(
            record,
            golden(seed, &spec),
            "resume from the fallback checkpoint must still be byte-identical"
        ),
        other => panic!("resumed sweep ended as {other:?}"),
    }
    daemon.drain();
    println!("   corruption: resumed golden from the fallback checkpoint");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 2016u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--seed expects an integer");
            }
            other => panic!("unknown flag {other:?} (serve_chaos takes --smoke and --seed N)"),
        }
        i += 1;
    }

    let root = std::env::temp_dir().join(format!("serve-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("create drill root");
    println!("serve_chaos: drill directory {}", root.display());

    let (kills, wave, burst) = if smoke { (1, 6, 8) } else { (3, 4, 12) };
    crash_drill(&root, seed, kills, wave);
    breaker_drill(&root, seed, if smoke { 4 } else { 6 });
    overload_drill(&root, seed, burst);
    deadline_drill(&root, seed);
    drain_deadline_drill(&root, seed, if smoke { 4 } else { 8 });
    group_commit_crash_drill(&root, seed, if smoke { 48 } else { 96 });
    overload_wave_drill(&root, seed, if smoke { 2 } else { 3 }, 8);
    stall_drill(&root, seed);
    fsync_failure_drill(&root, seed);
    // Shot-sweep sizes tuned so the kill lands mid-run on slow and
    // fast machines alike: the kill waits on observed batch counts,
    // not wall-clock guesses.
    if smoke {
        resume_drill(&root, seed, 9, 16384, 32);
        partial_drill(&root, seed);
        checkpoint_fault_drill(&root, seed, 9, 16384, 32);
    } else {
        resume_drill(&root, seed, 11, 65536, 256);
        partial_drill(&root, seed);
        checkpoint_fault_drill(&root, seed, 11, 65536, 64);
    }

    std::fs::remove_dir_all(&root).expect("clean drill root");
    println!("serve_chaos: all drills passed");
}

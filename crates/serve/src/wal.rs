//! The write-ahead journal of the shot service (`DESIGN.md` §9.3).
//!
//! Every job transition is one CRC-framed record
//! ([`qpdo_bench::framing`]) appended to the active segment and
//! fsync'd before the daemon acts on it:
//!
//! - `accept <id> <deadline_ms|-> <kind…>` — written before the client
//!   sees `accepted`; the job is now durable.
//! - `dispatch <id> <backend> <attempt>` — informational routing trace.
//! - `progress <id> <batches> <shots> <failures> <counters…>` — a
//!   checkpoint of a running shot sweep, group-committed every N batches
//!   (`DESIGN.md` §14). Purely an optimization record: losing one costs
//!   re-execution, never correctness.
//! - `done <id> <record…>` / `failed <id> <error…>` /
//!   `partial <id> <detail…>` — written before the in-memory result
//!   becomes queryable; the job is now terminal. `partial` is the
//!   anytime terminal a deadline expiry produces from the completed
//!   prefix of a shot sweep.
//!
//! **Recovery invariant:** after any crash, replaying the segments
//! yields every acknowledged job exactly once, with its terminal
//! outcome if one was journaled. Jobs without a terminal record are
//! re-queued; their deterministic seeds make re-execution byte-identical,
//! so recovery is exactly-once by construction — and a surviving
//! `progress` checkpoint lets the re-queued job resume after its last
//! durable batch instead of from scratch, with the identical bytes
//! (per-batch RNG substreams; see `qpdo-surface`'s resume oracle). A
//! torn tail (the frame being written when the process died) is dropped
//! by the CRC framing; everything before it is intact. A CRC-valid but
//! semantically implausible or non-monotone `progress` record is
//! dropped at replay — the job falls back to its previous checkpoint,
//! then to scratch. A byte-identical duplicate terminal record is
//! absorbed (it is a retried append of the same outcome, not a second
//! execution); only *conflicting* terminals are flagged.
//!
//! **Rotation:** [`WriteAheadLog::open`] always compacts the recovered
//! state into a fresh segment (atomic write + rename + directory sync)
//! and deletes the old ones — both to bound startup cost and because a
//! torn tail must never be appended after. Every compacted segment
//! begins with a `snapshot` marker record: replay resets at the marker,
//! so a crash *between* the snapshot rename and the old-segment unlinks
//! (both left on disk) still recovers to exactly the snapshot state.
//! During operation the log rotates once a full size bound of fresh
//! records has been appended since the last compaction — paced on
//! appended bytes, not total segment size, so a snapshot larger than
//! the bound never forces a rewrite per append — and compaction prunes
//! terminal jobs beyond a retention count to keep the snapshot (and the
//! in-memory mirror) bounded for a long-lived daemon.
//!
//! **Pruned-id ledger:** pruning a terminal job must not reopen its id.
//! Each compaction folds the dropped ids into a digest set (one 64-bit
//! FNV-1a hash per id, 8 bytes instead of a full record) carried in the
//! snapshot as `pruned` records, together with a high-water count of
//! everything pruned so far. Re-accepting a pruned id is refused at
//! [`WriteAheadLog::append`], so a resubmission after compaction is
//! answered deterministically instead of silently re-executing — the
//! re-execution would be byte-identical only while the binary and base
//! seed never change, which retention must not assume.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};

use qpdo_bench::framing::{atomic_replace, read_records, sync_file, sync_parent_dir, write_record};

use crate::job::{Backend, JobSpec};

/// A job's terminal result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The whitespace-separated result record.
    Done(String),
    /// The terminal error description.
    Failed(String),
    /// An anytime partial result: the job hit its deadline after
    /// completing a nonzero prefix of a shot sweep, and the detail
    /// carries `<shots> <target> <failures> <ci_lo> <ci_hi>` — the
    /// completed-shot estimator with its Wilson confidence interval.
    /// Delivered, terminal, and exactly-once like `Done`.
    Partial(String),
}

/// A durable checkpoint of a running shot sweep: how many whole batches
/// completed and the counters accumulated over exactly those batches.
/// The first three counters are common to every checkpointed kind; the
/// kind-specific remainder (`ler_surface`: defects; `ler_sliced`: the
/// ten `LerOutcome` fields) rides in `counters`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Completed whole batches.
    pub batches: u64,
    /// Shots (or windows) counted over those batches.
    pub shots: u64,
    /// Failures among those shots.
    pub failures: u64,
    /// Kind-specific extra counters, replayed verbatim.
    pub counters: Vec<u64>,
}

impl Checkpoint {
    /// Semantic plausibility, enforced at replay rather than append so
    /// that CRC-valid but corrupt records (torn page, bit rot, injected
    /// corruption) are *dropped* — falling back to the previous
    /// checkpoint — instead of poisoning recovery. Both checkpointed
    /// kinds are 64-lane sweeps, so a batch never yields more than 64
    /// shots, and failures can never exceed shots.
    #[must_use]
    pub fn plausible(&self) -> bool {
        self.batches > 0
            && self.shots > 0
            && self.shots <= self.batches.saturating_mul(64)
            && self.failures <= self.shots
    }
}

/// One journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A job was admitted.
    Accept(JobSpec),
    /// A job was handed to the worker pool on a backend.
    Dispatch {
        /// The job id.
        id: String,
        /// The backend chosen at dispatch.
        backend: Backend,
        /// The daemon-level attempt number, starting at 0.
        attempt: u32,
    },
    /// A job reached its terminal state.
    Complete {
        /// The job id.
        id: String,
        /// The terminal result.
        outcome: JobOutcome,
    },
    /// A checkpoint of a running shot sweep (see [`Checkpoint`]).
    Progress {
        /// The job id.
        id: String,
        /// The accumulated position.
        checkpoint: Checkpoint,
    },
    /// First record of a compacted segment: everything replayed before
    /// this point belongs to older segments that the rotation meant to
    /// delete, and is superseded by the records that follow.
    Snapshot,
    /// Digest ledger of terminal jobs dropped by retention pruning:
    /// the cumulative pruned count plus a chunk of [`id_digest`] hashes.
    /// Written only inside compacted snapshots, right after the marker.
    Pruned {
        /// Terminal jobs pruned since the journal began (high water).
        count: u64,
        /// One chunk of the pruned-id digest set.
        hashes: Vec<u64>,
    },
}

/// The 64-bit FNV-1a digest of a job id, the membership key of the
/// pruned-id ledger. A colliding *new* id is (harmlessly) refused; a
/// pruned id is never reopened, which is the invariant that matters.
#[must_use]
pub fn id_digest(id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl WalRecord {
    fn encode(&self) -> String {
        match self {
            WalRecord::Accept(spec) => format!("accept {} {}", spec.id, spec.encode_tail()),
            WalRecord::Dispatch {
                id,
                backend,
                attempt,
            } => format!("dispatch {id} {} {attempt}", backend.name()),
            WalRecord::Complete {
                id,
                outcome: JobOutcome::Done(record),
            } => format!("done {id} {record}"),
            WalRecord::Complete {
                id,
                outcome: JobOutcome::Failed(error),
            } => format!("failed {id} {error}"),
            WalRecord::Complete {
                id,
                outcome: JobOutcome::Partial(detail),
            } => format!("partial {id} {detail}"),
            WalRecord::Progress { id, checkpoint } => {
                let mut line = format!(
                    "progress {id} {} {} {}",
                    checkpoint.batches, checkpoint.shots, checkpoint.failures
                );
                for counter in &checkpoint.counters {
                    line.push_str(&format!(" {counter}"));
                }
                line
            }
            WalRecord::Snapshot => "snapshot".to_owned(),
            WalRecord::Pruned { count, hashes } => {
                let mut line = format!("pruned {count}");
                for hash in hashes {
                    line.push_str(&format!(" {hash:016x}"));
                }
                line
            }
        }
    }

    fn parse(line: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["accept", rest @ ..] => Ok(WalRecord::Accept(JobSpec::parse(rest)?)),
            ["dispatch", id, backend, attempt] => Ok(WalRecord::Dispatch {
                id: (*id).to_owned(),
                backend: Backend::parse(backend)
                    .ok_or_else(|| format!("unknown backend {backend:?}"))?,
                attempt: attempt
                    .parse()
                    .map_err(|_| format!("malformed attempt {attempt:?}"))?,
            }),
            ["done", id, record @ ..] => Ok(WalRecord::Complete {
                id: (*id).to_owned(),
                outcome: JobOutcome::Done(record.join(" ")),
            }),
            ["failed", id, error @ ..] => Ok(WalRecord::Complete {
                id: (*id).to_owned(),
                outcome: JobOutcome::Failed(error.join(" ")),
            }),
            ["partial", id, detail @ ..] => Ok(WalRecord::Complete {
                id: (*id).to_owned(),
                outcome: JobOutcome::Partial(detail.join(" ")),
            }),
            ["progress", id, batches, shots, failures, counters @ ..] => {
                let field = |name: &str, token: &str| {
                    token
                        .parse::<u64>()
                        .map_err(|_| format!("malformed progress {name} {token:?}"))
                };
                Ok(WalRecord::Progress {
                    id: (*id).to_owned(),
                    checkpoint: Checkpoint {
                        batches: field("batches", batches)?,
                        shots: field("shots", shots)?,
                        failures: field("failures", failures)?,
                        counters: counters
                            .iter()
                            .map(|c| field("counter", c))
                            .collect::<Result<_, _>>()?,
                    },
                })
            }
            ["snapshot"] => Ok(WalRecord::Snapshot),
            ["pruned", count, hashes @ ..] => Ok(WalRecord::Pruned {
                count: count
                    .parse()
                    .map_err(|_| format!("malformed pruned count {count:?}"))?,
                hashes: hashes
                    .iter()
                    .map(|h| u64::from_str_radix(h, 16))
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("malformed pruned digest in {line:?}"))?,
            }),
            _ => Err(format!("unknown journal record {line:?}")),
        }
    }
}

/// One job as reconstructed from the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredJob {
    /// The accepted spec.
    pub spec: JobSpec,
    /// The terminal outcome, when one was journaled.
    pub outcome: Option<JobOutcome>,
    /// Dispatch records seen (how often the job reached a worker).
    pub dispatches: u32,
    /// The newest plausible progress checkpoint, when one survived. A
    /// pending job with a checkpoint resumes after its recorded batches
    /// instead of from scratch; for a terminal job this is historical.
    pub checkpoint: Option<Checkpoint>,
}

/// What a journal replay found.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recovery {
    /// Every accepted job, in acceptance order.
    pub jobs: Vec<RecoveredJob>,
    /// Ids with more than one terminal record — an exactly-once
    /// violation that must never happen.
    pub duplicate_terminals: Vec<String>,
    /// Dispatch/complete records whose id was never accepted — a
    /// write-ordering violation that must never happen.
    pub orphaned: Vec<String>,
    /// Terminal jobs pruned by retention so far (high water).
    pub pruned_count: u64,
    /// Digest set of pruned job ids ([`id_digest`] per id).
    pub pruned: HashSet<u64>,
}

impl Recovery {
    /// Whether the journal satisfies the exactly-once invariants.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.duplicate_terminals.is_empty() && self.orphaned.is_empty()
    }

    /// Jobs still awaiting execution, in acceptance order.
    #[must_use]
    pub fn pending(&self) -> Vec<&RecoveredJob> {
        self.jobs.iter().filter(|j| j.outcome.is_none()).collect()
    }

    /// Pending jobs that carry a durable checkpoint — the offline-audit
    /// view of what a restarted daemon will resume mid-sweep rather than
    /// re-execute from scratch, with the checkpoint's batch/shot stats.
    #[must_use]
    pub fn resumable(&self) -> Vec<(&RecoveredJob, &Checkpoint)> {
        self.jobs
            .iter()
            .filter(|j| j.outcome.is_none())
            .filter_map(|j| j.checkpoint.as_ref().map(|c| (j, c)))
            .collect()
    }

    /// Whether `id` belongs to a terminal job pruned by retention.
    #[must_use]
    pub fn was_pruned(&self, id: &str) -> bool {
        self.pruned.contains(&id_digest(id))
    }

    fn replay(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Accept(spec) => {
                // A duplicate accept is idempotently absorbed, exactly
                // like a duplicate submission.
                if !self.jobs.iter().any(|j| j.spec.id == spec.id) {
                    self.jobs.push(RecoveredJob {
                        spec: spec.clone(),
                        outcome: None,
                        dispatches: 0,
                        checkpoint: None,
                    });
                }
            }
            WalRecord::Dispatch { id, .. } => {
                match self.jobs.iter_mut().find(|j| j.spec.id == *id) {
                    Some(job) => job.dispatches += 1,
                    None => self.orphaned.push(id.clone()),
                }
            }
            WalRecord::Progress { id, checkpoint } => {
                match self.jobs.iter_mut().find(|j| j.spec.id == *id) {
                    Some(job) => apply_progress(job, checkpoint),
                    None => self.orphaned.push(id.clone()),
                }
            }
            WalRecord::Complete { id, outcome } => {
                match self.jobs.iter_mut().find(|j| j.spec.id == *id) {
                    Some(job) => match &job.outcome {
                        // A byte-identical duplicate is a retried append
                        // of the same terminal (the first write's fsync
                        // failed but its bytes reached disk): absorbed.
                        Some(existing) if existing == outcome => {}
                        Some(_) => self.duplicate_terminals.push(id.clone()),
                        None => job.outcome = Some(outcome.clone()),
                    },
                    None => self.orphaned.push(id.clone()),
                }
            }
            WalRecord::Snapshot => {
                // A compacted segment starts here; whatever older
                // segments a crash mid-rotation left behind is
                // superseded by the snapshot contents that follow
                // (including its pruned-id ledger, rewritten in full
                // right after this marker).
                self.jobs.clear();
                self.duplicate_terminals.clear();
                self.orphaned.clear();
                self.pruned_count = 0;
                self.pruned.clear();
            }
            WalRecord::Pruned { count, hashes } => {
                self.pruned_count = self.pruned_count.max(*count);
                self.pruned.extend(hashes);
            }
        }
    }
}

/// The one rule for folding a progress record into a job, shared by
/// replay and the append-side mirror: a checkpoint must be semantically
/// plausible and strictly advance the job's batch count, and it never
/// touches a terminal job (the terminal supersedes any checkpoint). A
/// record failing the rule is dropped — the job keeps its previous
/// checkpoint, the fallback path corruption injection exercises.
fn apply_progress(job: &mut RecoveredJob, checkpoint: &Checkpoint) {
    if job.outcome.is_some() || !checkpoint.plausible() {
        return;
    }
    let current = job.checkpoint.as_ref().map_or(0, |c| c.batches);
    if checkpoint.batches > current {
        job.checkpoint = Some(checkpoint.clone());
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // Leftover `.tmp` files are aborted rotations: never valid state.
        if name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
            continue;
        }
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Replays every segment in `dir` without modifying anything. This is
/// the read-only audit path (`serve_chaos` uses it to assert the
/// exactly-once invariants after a drill).
///
/// # Errors
///
/// Propagates I/O errors; torn tails are tolerated, not errors.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    let mut recovery = Recovery::default();
    if !dir.exists() {
        return Ok(recovery);
    }
    for (_, path) in list_segments(dir)? {
        let mut reader = BufReader::new(File::open(&path)?);
        for payload in read_records(&mut reader)? {
            let line = String::from_utf8(payload)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 journal"))?;
            let record = WalRecord::parse(&line)
                .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))?;
            recovery.replay(&record);
        }
    }
    Ok(recovery)
}

/// The append side of the journal.
pub struct WriteAheadLog {
    dir: PathBuf,
    active: File,
    active_seq: u64,
    active_bytes: u64,
    /// Rotate once `active_bytes` passes this: the last snapshot's size
    /// plus a full `max_segment_bytes` of fresh appends, so a snapshot
    /// larger than the bound cannot force a rewrite on every append.
    rotate_at: u64,
    max_segment_bytes: u64,
    /// Terminal jobs beyond this count are pruned at compaction.
    retain_terminal: usize,
    /// Fault injection: fsyncs of the active segment fail once this
    /// many have succeeded (`None` = never). Rotation syncs are exempt
    /// so the failure mode under test is "the commit fsync fails", not
    /// "the disk is gone entirely".
    fail_sync_after: Option<u64>,
    /// Active-segment fsyncs performed so far (for the injection).
    syncs: u64,
    /// Fault injection: record writes fail once this many have
    /// succeeded (`None` = never), before any byte reaches the segment
    /// — exercising the mid-batch write-failure path in group commit.
    fail_write_after: Option<u64>,
    /// Record writes performed so far (for the injection).
    writes: u64,
    /// Mirror of the journal state, for compaction snapshots.
    jobs: Vec<RecoveredJob>,
    index: HashMap<String, usize>,
    /// Digest set of every id pruned by retention (see [`id_digest`]):
    /// carried through each snapshot so a pruned id is never reopened.
    pruned: HashSet<u64>,
    /// Terminal jobs pruned so far (high water, monotone).
    pruned_count: u64,
}

impl WriteAheadLog {
    /// The default rotation bound for the active segment.
    pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 1 << 20;

    /// The default bound on terminal jobs kept through compaction.
    /// Jobs pruned past it lose result queryability, but never their
    /// id: the pruned-id ledger keeps an 8-byte digest per pruned job,
    /// and [`append`](Self::append) refuses to re-accept a pruned id,
    /// so a resubmission is answered deterministically instead of
    /// silently re-executing.
    pub const DEFAULT_RETAIN_TERMINAL: usize = 1 << 16;

    /// Opens (creating if needed) the journal in `dir`, replays it, and
    /// compacts the recovered state into a fresh segment — a crash tears
    /// at most the active segment's tail, and a torn tail must never be
    /// appended after, so every open starts a clean segment.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and corrupt (non-frame-level) journal
    /// content.
    pub fn open(dir: &Path, max_segment_bytes: u64) -> io::Result<(Self, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let recovery = recover(dir)?;
        let next_seq = list_segments(dir)?.last().map_or(1, |(seq, _)| seq + 1);
        let mut wal = WriteAheadLog {
            dir: dir.to_path_buf(),
            // Placeholder; rotate_to() below installs the real handle.
            active: OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(dir, next_seq))?,
            active_seq: next_seq,
            active_bytes: 0,
            rotate_at: max_segment_bytes.max(1),
            max_segment_bytes: max_segment_bytes.max(1),
            retain_terminal: Self::DEFAULT_RETAIN_TERMINAL,
            fail_sync_after: None,
            syncs: 0,
            fail_write_after: None,
            writes: 0,
            jobs: recovery.jobs.clone(),
            index: recovery
                .jobs
                .iter()
                .enumerate()
                .map(|(i, j)| (j.spec.id.clone(), i))
                .collect(),
            pruned: recovery.pruned.clone(),
            pruned_count: recovery.pruned_count,
        };
        wal.rotate_to(next_seq)?;
        Ok((wal, recovery))
    }

    /// The directory holding the segments.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number of the active segment (tests observe
    /// rotation through this).
    #[must_use]
    pub fn active_seq(&self) -> u64 {
        self.active_seq
    }

    /// Bounds the terminal jobs kept through compaction (oldest pruned
    /// first; pending jobs are always kept). Takes effect at the next
    /// rotation.
    pub fn set_retain_terminal(&mut self, retain_terminal: usize) {
        self.retain_terminal = retain_terminal.max(1);
    }

    /// Appends one record, fsyncs it, and rotates the segment once a
    /// full size bound of fresh records has accumulated. When this
    /// returns, the record is durable. This is
    /// [`write_unsynced`](Self::write_unsynced) + [`sync`](Self::sync)
    /// — the group-commit thread calls the halves directly to batch
    /// many records per fsync.
    ///
    /// # Errors
    ///
    /// Refuses invariant-violating records (a conflicting terminal, a
    /// dispatch/terminal for an unknown id) *before* any byte reaches
    /// disk — a rejected record must leave no durable trace, or the
    /// next restart would flag it. I/O errors are propagated; on an I/O
    /// error the record's durability is unknown, so callers must retry
    /// the identical record, never a different outcome for the same id.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.write_unsynced(record)?;
        self.sync()
    }

    /// Validates and writes one record to the active segment **without
    /// syncing**: the record is not durable (and must not be acked)
    /// until a following [`sync`](Self::sync) returns `Ok`. The
    /// bytes-since-compaction counter that paces rotation advances here,
    /// per record — never per fsync batch — so group-committed batches
    /// cannot starve compaction.
    ///
    /// # Errors
    ///
    /// Same validation contract as [`append`](Self::append); a write
    /// error leaves durability of the partial frame unknown (the CRC
    /// framing drops it as a torn tail on recovery).
    pub fn write_unsynced(&mut self, record: &WalRecord) -> io::Result<()> {
        self.validate(record)?;
        self.writes += 1;
        if self
            .fail_write_after
            .is_some_and(|after| self.writes > after)
        {
            return Err(io::Error::other("injected write failure"));
        }
        let line = record.encode();
        write_record(&mut self.active, line.as_bytes())?;
        self.active_bytes += 8 + line.len() as u64;
        self.apply(record);
        Ok(())
    }

    /// Fsyncs the active segment — every record written since the last
    /// sync becomes durable at once — then rotates if a full size bound
    /// of fresh records has accumulated since the last compaction.
    ///
    /// # Errors
    ///
    /// A sync failure means durability of every unsynced record is
    /// unknown: the caller must stop acking (degraded mode), because a
    /// retry that succeeds cannot prove the earlier bytes landed in
    /// order.
    pub fn sync(&mut self) -> io::Result<()> {
        self.syncs += 1;
        if self.fail_sync_after.is_some_and(|after| self.syncs > after) {
            return Err(io::Error::other(
                "injected fsync failure (--chaos-fsync-fail)",
            ));
        }
        sync_file(&self.active)?;
        if self.active_bytes > self.rotate_at {
            self.rotate_to(self.active_seq + 1)?;
        }
        Ok(())
    }

    /// Fault injection: active-segment fsyncs fail once `after` have
    /// succeeded (`None` disables). Rotation is exempt.
    pub fn set_fail_sync_after(&mut self, after: Option<u64>) {
        self.fail_sync_after = after;
    }

    /// Fault injection: record writes fail (before any byte reaches the
    /// segment) once `after` have succeeded (`None` disables).
    pub fn set_fail_write_after(&mut self, after: Option<u64>) {
        self.fail_write_after = after;
    }

    /// Enforces the journal invariants as programmer-error checks on
    /// the daemon, without touching disk or the mirror. Public so the
    /// group-commit thread can distinguish a *rejected* record (refused
    /// before any byte reaches disk, per-record error) from an *I/O*
    /// failure mid-batch (durability unknown, daemon must degrade).
    ///
    /// # Errors
    ///
    /// Describes the violated invariant.
    pub fn validate(&self, record: &WalRecord) -> io::Result<()> {
        match record {
            WalRecord::Accept(spec) => {
                if self.pruned.contains(&id_digest(&spec.id)) {
                    Err(io::Error::other(format!(
                        "job {:?} already reached a terminal state (pruned by retention)",
                        spec.id
                    )))
                } else {
                    Ok(())
                }
            }
            WalRecord::Snapshot | WalRecord::Pruned { .. } => Ok(()),
            WalRecord::Dispatch { id, .. } => {
                if self.index.contains_key(id) {
                    Ok(())
                } else {
                    Err(io::Error::other(format!("dispatch for unknown job {id:?}")))
                }
            }
            WalRecord::Progress { id, .. } => {
                let job =
                    self.index.get(id).map(|&i| &self.jobs[i]).ok_or_else(|| {
                        io::Error::other(format!("progress for unknown job {id:?}"))
                    })?;
                if job.outcome.is_some() {
                    Err(io::Error::other(format!(
                        "progress for terminal job {id:?}"
                    )))
                } else {
                    Ok(())
                }
            }
            WalRecord::Complete { id, outcome } => {
                let job =
                    self.index.get(id).map(|&i| &self.jobs[i]).ok_or_else(|| {
                        io::Error::other(format!("complete for unknown job {id:?}"))
                    })?;
                match &job.outcome {
                    // A retried append of the identical terminal (the
                    // first attempt's error may still have left durable
                    // bytes): allowed, recovery absorbs the duplicate.
                    Some(existing) if existing == outcome => Ok(()),
                    Some(_) => Err(io::Error::other(format!(
                        "conflicting terminal record for job {id:?} (exactly-once violation)"
                    ))),
                    None => Ok(()),
                }
            }
        }
    }

    /// Mirrors a validated record into the in-memory state (used for
    /// compaction snapshots).
    fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Accept(spec) => {
                if !self.index.contains_key(&spec.id) {
                    self.index.insert(spec.id.clone(), self.jobs.len());
                    self.jobs.push(RecoveredJob {
                        spec: spec.clone(),
                        outcome: None,
                        dispatches: 0,
                        checkpoint: None,
                    });
                }
            }
            WalRecord::Dispatch { id, .. } => {
                self.jobs[self.index[id]].dispatches += 1;
            }
            WalRecord::Progress { id, checkpoint } => {
                apply_progress(&mut self.jobs[self.index[id]], checkpoint);
            }
            WalRecord::Complete { id, outcome } => {
                let job = &mut self.jobs[self.index[id]];
                if job.outcome.is_none() {
                    job.outcome = Some(outcome.clone());
                }
            }
            // Only written directly by `rotate_to`, never appended.
            WalRecord::Snapshot | WalRecord::Pruned { .. } => {}
        }
    }

    /// Whether `id` belongs to a terminal job pruned by retention. The
    /// daemon consults this before journaling an accept, so resubmits
    /// of a pruned id are answered deterministically.
    #[must_use]
    pub fn was_pruned(&self, id: &str) -> bool {
        self.pruned.contains(&id_digest(id))
    }

    /// Terminal jobs pruned by retention since the journal began.
    #[must_use]
    pub fn pruned_count(&self) -> u64 {
        self.pruned_count
    }

    /// Prunes the oldest terminal jobs beyond the retention bound (a
    /// pending job is never pruned), rebuilding the id index.
    fn prune_terminal(&mut self) {
        let terminal = self.jobs.iter().filter(|j| j.outcome.is_some()).count();
        if terminal <= self.retain_terminal {
            return;
        }
        let mut drop = terminal - self.retain_terminal;
        let (pruned, pruned_count) = (&mut self.pruned, &mut self.pruned_count);
        self.jobs.retain(|job| {
            if drop > 0 && job.outcome.is_some() {
                drop -= 1;
                // The id's digest outlives the record: pruning loses
                // the result, never the fact that the id is terminal.
                pruned.insert(id_digest(&job.spec.id));
                *pruned_count += 1;
                false
            } else {
                true
            }
        });
        self.index = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.spec.id.clone(), i))
            .collect();
    }

    /// Writes the current state (after retention pruning) as segment
    /// `seq` — a `snapshot` marker followed by one `accept` plus the
    /// terminal (or, for a pending job, its newest checkpoint) per job,
    /// atomic replace + rename + directory sync —
    /// switches appends to it, and deletes every older segment. The
    /// leading marker makes the deletes safe: if a crash leaves old
    /// segments beside the renamed snapshot, replay resets at the
    /// marker instead of double-counting their terminal records.
    fn rotate_to(&mut self, seq: u64) -> io::Result<()> {
        self.prune_terminal();
        let mut snapshot = Vec::new();
        write_record(&mut snapshot, WalRecord::Snapshot.encode().as_bytes())?;
        // The pruned-id ledger rides in every snapshot, right after the
        // marker (which resets it on replay). Sorted, fixed-size chunks
        // keep the snapshot bytes deterministic and the lines bounded.
        if !self.pruned.is_empty() {
            let mut hashes: Vec<u64> = self.pruned.iter().copied().collect();
            hashes.sort_unstable();
            for chunk in hashes.chunks(256) {
                let record = WalRecord::Pruned {
                    count: self.pruned_count,
                    hashes: chunk.to_vec(),
                };
                write_record(&mut snapshot, record.encode().as_bytes())?;
            }
        }
        for job in &self.jobs {
            write_record(
                &mut snapshot,
                WalRecord::Accept(job.spec.clone()).encode().as_bytes(),
            )?;
            match (&job.outcome, &job.checkpoint) {
                (Some(outcome), _) => {
                    // A terminal supersedes any checkpoint: only the
                    // terminal is carried forward.
                    let record = WalRecord::Complete {
                        id: job.spec.id.clone(),
                        outcome: outcome.clone(),
                    };
                    write_record(&mut snapshot, record.encode().as_bytes())?;
                }
                (None, Some(checkpoint)) => {
                    // A pending job keeps exactly its newest checkpoint,
                    // so compaction bounds progress history to one
                    // record per resumable job.
                    let record = WalRecord::Progress {
                        id: job.spec.id.clone(),
                        checkpoint: checkpoint.clone(),
                    };
                    write_record(&mut snapshot, record.encode().as_bytes())?;
                }
                (None, None) => {}
            }
        }
        let path = segment_path(&self.dir, seq);
        let bytes = snapshot.len() as u64;
        atomic_replace(&path, &snapshot)?;
        for (old_seq, old_path) in list_segments(&self.dir)? {
            if old_seq < seq {
                std::fs::remove_file(old_path)?;
            }
        }
        sync_parent_dir(&path)?;
        self.active = OpenOptions::new().append(true).open(&path)?;
        self.active_seq = seq;
        self.active_bytes = bytes;
        self.rotate_at = bytes + self.max_segment_bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qpdo-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_owned(),
            deadline_ms: None,
            kind: JobKind::Bell { shots: 2 },
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        let records = vec![
            WalRecord::Accept(spec("j1")),
            WalRecord::Dispatch {
                id: "j1".to_owned(),
                backend: Backend::Reference,
                attempt: 2,
            },
            WalRecord::Complete {
                id: "j1".to_owned(),
                outcome: JobOutcome::Done("1 2 3 4".to_owned()),
            },
            WalRecord::Complete {
                id: "j2".to_owned(),
                outcome: JobOutcome::Failed("deadline exceeded".to_owned()),
            },
            WalRecord::Complete {
                id: "j3".to_owned(),
                outcome: JobOutcome::Partial("1024 20000 13 0.0003 0.0011".to_owned()),
            },
            WalRecord::Progress {
                id: "j1".to_owned(),
                checkpoint: Checkpoint {
                    batches: 32,
                    shots: 2048,
                    failures: 5,
                    counters: vec![117, 0, u64::MAX],
                },
            },
            WalRecord::Progress {
                id: "j4".to_owned(),
                checkpoint: Checkpoint {
                    batches: 1,
                    shots: 64,
                    failures: 0,
                    counters: Vec::new(),
                },
            },
            WalRecord::Snapshot,
            WalRecord::Pruned {
                count: 9,
                hashes: vec![0, 1, u64::MAX, id_digest("j1")],
            },
        ];
        for record in records {
            let line = record.encode();
            assert_eq!(WalRecord::parse(&line), Ok(record), "{line}");
        }
    }

    fn progress(id: &str, batches: u64, shots: u64, failures: u64) -> WalRecord {
        WalRecord::Progress {
            id: id.to_owned(),
            checkpoint: Checkpoint {
                batches,
                shots,
                failures,
                counters: vec![batches * 3],
            },
        }
    }

    #[test]
    fn progress_interleaves_with_terminals_and_newest_wins() {
        let dir = tmp_dir("progress");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("resumes"))).unwrap();
            wal.append(&WalRecord::Accept(spec("finishes"))).unwrap();
            wal.append(&progress("resumes", 8, 512, 1)).unwrap();
            wal.append(&progress("finishes", 4, 256, 0)).unwrap();
            wal.append(&progress("resumes", 16, 1024, 2)).unwrap();
            wal.append(&WalRecord::Complete {
                id: "finishes".to_owned(),
                outcome: JobOutcome::Done("512 3 99".to_owned()),
            })
            .unwrap();
        }
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        // The audit reports exactly the pending job as resumable, with
        // its newest checkpoint's stats.
        let resumable = recovery.resumable();
        assert_eq!(resumable.len(), 1);
        let (job, checkpoint) = resumable[0];
        assert_eq!(job.spec.id, "resumes");
        assert_eq!(
            checkpoint,
            &Checkpoint {
                batches: 16,
                shots: 1024,
                failures: 2,
                counters: vec![48],
            }
        );
        // The finished job's checkpoint is superseded by its terminal.
        let finished = recovery
            .jobs
            .iter()
            .find(|j| j.spec.id == "finishes")
            .unwrap();
        assert!(finished.outcome.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_progress_tail_falls_back_to_previous_checkpoint() {
        let dir = tmp_dir("torn-progress");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("job"))).unwrap();
            wal.append(&progress("job", 8, 512, 1)).unwrap();
            wal.append(&progress("job", 16, 1024, 2)).unwrap();
        }
        // Tear the newest progress frame mid-payload, as a crash during
        // the checkpoint write would.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        let resumable = recovery.resumable();
        assert_eq!(resumable.len(), 1);
        assert_eq!(resumable[0].1.batches, 8, "fell back past the torn tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn implausible_progress_is_dropped_not_applied() {
        let dir = tmp_dir("implausible");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        for line in [
            "accept job - bell 2",
            "progress job 8 512 1 24",
            // CRC-valid but semantically corrupt checkpoints, every
            // plausibility clause: failures > shots, shots > 64/batch,
            // zero batches, and a *stale* (non-monotone) batch count.
            "progress job 16 1024 2000 48",
            "progress job 16 999999 2 48",
            "progress job 0 0 0",
            "progress job 4 256 0 12",
        ] {
            write_record(&mut bytes, line.as_bytes()).unwrap();
        }
        std::fs::write(segment_path(&dir, 1), bytes).unwrap();
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        let resumable = recovery.resumable();
        assert_eq!(resumable.len(), 1);
        assert_eq!(
            resumable[0].1,
            &Checkpoint {
                batches: 8,
                shots: 512,
                failures: 1,
                counters: vec![24],
            },
            "corrupt or stale checkpoints must not supersede the good one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_progress_is_flagged() {
        let dir = tmp_dir("orphan-progress");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        for line in ["accept job - bell 2", "progress ghost 8 512 1"] {
            write_record(&mut bytes, line.as_bytes()).unwrap();
        }
        std::fs::write(segment_path(&dir, 1), bytes).unwrap();
        let recovery = recover(&dir).unwrap();
        assert!(!recovery.is_consistent());
        assert_eq!(recovery.orphaned, vec!["ghost".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_only_the_newest_checkpoint_per_pending_job() {
        let dir = tmp_dir("compact-progress");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("job"))).unwrap();
            for k in 1..=20u64 {
                wal.append(&progress("job", k, k * 64, k / 4)).unwrap();
            }
        }
        // Reopen compacts: the fresh segment must hold the snapshot
        // marker, the accept, and exactly one progress record — the
        // newest.
        let (wal, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(recovery.resumable().len(), 1);
        assert_eq!(recovery.resumable()[0].1.batches, 20);
        let (_, active) = list_segments(&dir).unwrap().pop().unwrap();
        assert_eq!(active, segment_path(&dir, wal.active_seq()));
        let mut reader = BufReader::new(File::open(&active).unwrap());
        let lines: Vec<String> = read_records(&mut reader)
            .unwrap()
            .into_iter()
            .map(|p| String::from_utf8(p).unwrap())
            .collect();
        let progress_lines: Vec<&String> =
            lines.iter().filter(|l| l.starts_with("progress")).collect();
        assert_eq!(progress_lines.len(), 1, "segment: {lines:?}");
        assert!(progress_lines[0].starts_with("progress job 20 1280 5"));
        // And the compacted checkpoint replays on the next reopen too.
        drop(wal);
        let (_, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(recovery.resumable().len(), 1);
        assert_eq!(recovery.resumable()[0].1.batches, 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_for_unknown_or_terminal_jobs_is_refused_at_append() {
        let dir = tmp_dir("progress-validate");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert!(wal.append(&progress("ghost", 1, 64, 0)).is_err());
        wal.append(&WalRecord::Accept(spec("done-job"))).unwrap();
        wal.append(&WalRecord::Complete {
            id: "done-job".to_owned(),
            outcome: JobOutcome::Done("1".to_owned()),
        })
        .unwrap();
        let err = wal.append(&progress("done-job", 1, 64, 0)).unwrap_err();
        assert!(err.to_string().contains("terminal"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_outcomes_are_terminal_and_exactly_once() {
        let dir = tmp_dir("partial");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.append(&WalRecord::Accept(spec("anytime"))).unwrap();
        let partial = WalRecord::Complete {
            id: "anytime".to_owned(),
            outcome: JobOutcome::Partial("512 20000 3 0.0012 0.0171".to_owned()),
        };
        wal.append(&partial).unwrap();
        // Identical retry absorbed; conflicting terminal refused.
        wal.append(&partial).unwrap();
        assert!(wal
            .append(&WalRecord::Complete {
                id: "anytime".to_owned(),
                outcome: JobOutcome::Done("1 2 3".to_owned()),
            })
            .is_err());
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(
            recovery.jobs[0].outcome,
            Some(JobOutcome::Partial("512 20000 3 0.0012 0.0171".to_owned()))
        );
        assert!(recovery.pending().is_empty(), "partial is terminal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_survives_reopen_with_exact_state() {
        let dir = tmp_dir("reopen");
        {
            let (mut wal, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            assert!(recovery.jobs.is_empty());
            wal.append(&WalRecord::Accept(spec("a"))).unwrap();
            wal.append(&WalRecord::Accept(spec("b"))).unwrap();
            wal.append(&WalRecord::Dispatch {
                id: "a".to_owned(),
                backend: Backend::Packed,
                attempt: 0,
            })
            .unwrap();
            wal.append(&WalRecord::Complete {
                id: "a".to_owned(),
                outcome: JobOutcome::Done("0 1 1 0".to_owned()),
            })
            .unwrap();
        }
        let (_, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 2);
        assert_eq!(
            recovery.jobs[0].outcome,
            Some(JobOutcome::Done("0 1 1 0".to_owned()))
        );
        assert_eq!(recovery.jobs[1].outcome, None);
        assert_eq!(recovery.pending().len(), 1);
        assert_eq!(recovery.pending()[0].spec.id, "b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_reopen_starts_clean() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("kept"))).unwrap();
            wal.append(&WalRecord::Accept(spec("torn"))).unwrap();
        }
        // Tear the last frame mid-payload, as a crash mid-write would.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let (wal, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].spec.id, "kept");
        // The reopened journal compacted into a fresh segment: the torn
        // bytes are gone from disk, not merely skipped. The segment
        // holds the snapshot marker plus the one surviving accept.
        let (_, active) = list_segments(&dir).unwrap().pop().unwrap();
        assert_eq!(active, segment_path(&dir, wal.active_seq()));
        let mut reader = BufReader::new(File::open(&active).unwrap());
        assert_eq!(read_records(&mut reader).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_compacts_and_deletes_old_segments() {
        let dir = tmp_dir("rotate");
        let (mut wal, _) = WriteAheadLog::open(&dir, 64).unwrap();
        let first_seq = wal.active_seq();
        for i in 0..20 {
            wal.append(&WalRecord::Accept(spec(&format!("job-{i}"))))
                .unwrap();
            wal.append(&WalRecord::Complete {
                id: format!("job-{i}"),
                outcome: JobOutcome::Done("0 0 1 1".to_owned()),
            })
            .unwrap();
        }
        assert!(wal.active_seq() > first_seq, "no rotation happened");
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "old segments were not deleted");
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 20);
        assert!(recovery.jobs.iter().all(|j| j.outcome.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_absorbs_identical_terminals_and_refuses_conflicts() {
        let dir = tmp_dir("dup");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.append(&WalRecord::Accept(spec("a"))).unwrap();
        let done = WalRecord::Complete {
            id: "a".to_owned(),
            outcome: JobOutcome::Done("1".to_owned()),
        };
        wal.append(&done).unwrap();
        // A retried append of the identical terminal is absorbed...
        wal.append(&done).unwrap();
        // ...but a conflicting outcome is an exactly-once violation.
        assert!(wal
            .append(&WalRecord::Complete {
                id: "a".to_owned(),
                outcome: JobOutcome::Failed("boom".to_owned()),
            })
            .is_err());
        assert!(wal
            .append(&WalRecord::Dispatch {
                id: "ghost".to_owned(),
                backend: Backend::Packed,
                attempt: 0,
            })
            .is_err());
        // The doubled identical record on disk recovers consistently.
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(
            recovery.jobs[0].outcome,
            Some(JobOutcome::Done("1".to_owned()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_flags_conflicting_terminals_in_the_journal() {
        let dir = tmp_dir("audit");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write a journal that violates exactly-once: conflicting
        // terminal outcomes and an orphaned record.
        let mut bytes = Vec::new();
        for line in [
            "accept a - bell 2",
            "done a 1 1 0 0",
            "failed a boom",
            "done ghost 0 0 0 0",
        ] {
            write_record(&mut bytes, line.as_bytes()).unwrap();
        }
        std::fs::write(segment_path(&dir, 1), bytes).unwrap();
        let recovery = recover(&dir).unwrap();
        assert!(!recovery.is_consistent());
        assert_eq!(recovery.duplicate_terminals, vec!["a".to_owned()]);
        assert_eq!(recovery.orphaned, vec!["ghost".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_absorbs_identical_duplicate_terminals() {
        let dir = tmp_dir("absorb");
        std::fs::create_dir_all(&dir).unwrap();
        // A retried append of the same terminal leaves two identical
        // records on disk; the audit must stay consistent.
        let mut bytes = Vec::new();
        for line in ["accept a - bell 2", "done a 1 1 0 0", "done a 1 1 0 0"] {
            write_record(&mut bytes, line.as_bytes()).unwrap();
        }
        std::fs::write(segment_path(&dir, 1), bytes).unwrap();
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(
            recovery.jobs[0].outcome,
            Some(JobOutcome::Done("1 1 0 0".to_owned()))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_rotation_leaves_a_recoverable_journal() {
        let dir = tmp_dir("interrupted");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("a"))).unwrap();
            wal.append(&WalRecord::Complete {
                id: "a".to_owned(),
                outcome: JobOutcome::Done("1 1 0 0".to_owned()),
            })
            .unwrap();
            wal.append(&WalRecord::Accept(spec("b"))).unwrap();
        }
        // Simulate `kill -9` between the snapshot rename and the
        // old-segment unlinks: compact (reopen), then resurrect the
        // pre-compaction segment beside the fresh snapshot.
        let (_, old_path) = list_segments(&dir).unwrap().pop().unwrap();
        let old_bytes = std::fs::read(&old_path).unwrap();
        {
            let _ = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        }
        std::fs::write(&old_path, old_bytes).unwrap();
        assert!(list_segments(&dir).unwrap().len() > 1);

        // The audit replays the stale segment, then resets at the
        // snapshot marker: no duplicate terminals, exact state.
        let recovery = recover(&dir).unwrap();
        assert!(
            recovery.is_consistent(),
            "duplicates {:?}, orphans {:?}",
            recovery.duplicate_terminals,
            recovery.orphaned
        );
        assert_eq!(recovery.jobs.len(), 2);
        assert_eq!(
            recovery.jobs[0].outcome,
            Some(JobOutcome::Done("1 1 0 0".to_owned()))
        );
        assert_eq!(recovery.pending().len(), 1);

        // And the service-facing open (which the daemon gates startup
        // on) also succeeds and cleans up the stale segment.
        let (_, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 2);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_snapshot_does_not_rotate_on_every_append() {
        let dir = tmp_dir("pacing");
        let (mut wal, _) = WriteAheadLog::open(&dir, 64).unwrap();
        // Grow the compacted state far past the 64-byte bound.
        for i in 0..20 {
            wal.append(&WalRecord::Accept(spec(&format!("big-{i}"))))
                .unwrap();
            wal.append(&WalRecord::Complete {
                id: format!("big-{i}"),
                outcome: JobOutcome::Done("0 0 1 1".to_owned()),
            })
            .unwrap();
        }
        // Rotation is paced on bytes appended since the last snapshot,
        // so small appends must not each trigger a full-history rewrite.
        let before = wal.active_seq();
        let appends = 10u64;
        for i in 0..appends {
            wal.append(&WalRecord::Accept(spec(&format!("t-{i}"))))
                .unwrap();
        }
        let rotations = wal.active_seq() - before;
        assert!(
            rotations < appends,
            "{rotations} rotations for {appends} appends"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_pacing_advances_per_record_not_per_fsync_batch() {
        // Regression: with group commit, many records share one fsync.
        // If the bytes-since-compaction counter advanced per sync
        // instead of per record, a large batch would count as one tiny
        // append and rotation (with its retention pruning) would
        // effectively never fire under batched load.
        let dir = tmp_dir("batch-pacing");
        let (mut wal, _) = WriteAheadLog::open(&dir, 256).unwrap();
        let first_seq = wal.active_seq();
        let before = wal.active_bytes;
        // One group-committed batch far larger than the segment bound.
        for i in 0..24 {
            wal.write_unsynced(&WalRecord::Accept(spec(&format!("gc-{i}"))))
                .unwrap();
        }
        let appended = wal.active_bytes - before;
        assert!(
            appended > 24 * 8,
            "pacing counter must advance per record ({appended} bytes for 24 records)"
        );
        assert_eq!(wal.active_seq(), first_seq, "rotation waits for sync");
        wal.sync().unwrap();
        assert!(
            wal.active_seq() > first_seq,
            "a batch past the bound must rotate at its commit sync"
        );
        // And the rotated journal replays the whole batch.
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 24);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_records_are_not_durable_until_sync() {
        let dir = tmp_dir("unsynced");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.append(&WalRecord::Accept(spec("durable"))).unwrap();
        wal.write_unsynced(&WalRecord::Accept(spec("buffered")))
            .unwrap();
        // The buffered record sits in the OS page cache at best; the
        // mirror already sees it (validation state), but a crash now may
        // lose it — which is exactly why acks wait for sync(). What we
        // can assert without a crash: sync() makes it replayable.
        wal.sync().unwrap();
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.jobs.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fsync_failure_fails_sync_but_not_validation() {
        let dir = tmp_dir("fsync-fail");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.set_fail_sync_after(Some(wal.syncs + 1));
        wal.append(&WalRecord::Accept(spec("ok-1"))).unwrap();
        // The injection budget is spent: the next commit sync fails...
        wal.write_unsynced(&WalRecord::Accept(spec("doomed")))
            .unwrap();
        let err = wal.sync().unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"), "{err}");
        // ...and keeps failing (a daemon must degrade, not flap).
        assert!(wal.sync().is_err());
        // Validation is unaffected: rejects still classify correctly.
        assert!(wal.validate(&WalRecord::Accept(spec("fresh"))).is_ok());
        assert!(wal
            .validate(&WalRecord::Complete {
                id: "ghost".to_owned(),
                outcome: JobOutcome::Done("1".to_owned()),
            })
            .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_prunes_terminal_jobs_beyond_retention() {
        let dir = tmp_dir("retain");
        let (mut wal, _) = WriteAheadLog::open(&dir, 64).unwrap();
        wal.set_retain_terminal(2);
        wal.append(&WalRecord::Accept(spec("keep-pending")))
            .unwrap();
        for i in 0..10 {
            wal.append(&WalRecord::Accept(spec(&format!("t-{i}"))))
                .unwrap();
            wal.append(&WalRecord::Complete {
                id: format!("t-{i}"),
                outcome: JobOutcome::Done("0 0 1 1".to_owned()),
            })
            .unwrap();
        }
        // Every in-flight rotation pruned down to 2 terminal jobs; only
        // the short tail appended after the last rotation rides on top.
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        let terminal = recovery.jobs.iter().filter(|j| j.outcome.is_some()).count();
        assert!(terminal <= 5, "retention kept {terminal} terminal jobs");
        // The newest terminal job and the pending job always survive.
        assert!(recovery.jobs.iter().any(|j| j.spec.id == "t-9"));
        assert!(recovery
            .jobs
            .iter()
            .any(|j| j.spec.id == "keep-pending" && j.outcome.is_none()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruned_ids_survive_compaction_and_refuse_reacceptance() {
        let dir = tmp_dir("pruned");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 64).unwrap();
            wal.set_retain_terminal(1);
            for i in 0..8 {
                wal.append(&WalRecord::Accept(spec(&format!("p-{i}"))))
                    .unwrap();
                wal.append(&WalRecord::Complete {
                    id: format!("p-{i}"),
                    outcome: JobOutcome::Done("0 0 1 1".to_owned()),
                })
                .unwrap();
            }
            assert!(wal.pruned_count() > 0, "retention never pruned");
            assert!(wal.was_pruned("p-0"), "oldest terminal must be pruned");
            assert!(!wal.was_pruned("p-7"), "newest terminal is retained");
            // Re-accepting a pruned id is refused before any byte
            // reaches disk — exactly-once survives retention.
            let err = wal.append(&WalRecord::Accept(spec("p-0"))).unwrap_err();
            assert!(err.to_string().contains("pruned"), "{err}");
        }
        // The ledger rides in the snapshot: a reopened journal still
        // knows every pruned id and still refuses it.
        let (mut wal, recovery) = WriteAheadLog::open(&dir, 64).unwrap();
        assert!(recovery.is_consistent());
        assert!(recovery.was_pruned("p-0"));
        assert!(recovery.pruned_count > 0);
        assert!(wal.was_pruned("p-0"));
        assert!(wal.append(&WalRecord::Accept(spec("p-0"))).is_err());
        // A genuinely fresh id is still welcome.
        wal.append(&WalRecord::Accept(spec("fresh"))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_segment_byte_keeps_the_prefix() {
        let dir = tmp_dir("corrupt");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("one"))).unwrap();
            wal.append(&WalRecord::Accept(spec("two"))).unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        // Flip a byte inside the second record's payload.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let mut content = Vec::new();
        file.read_to_end(&mut content).unwrap();
        let target = content.len() - 3;
        content[target] ^= 0xFF;
        file.seek(SeekFrom::Start(0)).unwrap();
        file.write_all(&content).unwrap();
        drop(file);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].spec.id, "one");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

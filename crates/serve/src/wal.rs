//! The write-ahead journal of the shot service (`DESIGN.md` §9.3).
//!
//! Every job transition is one CRC-framed record
//! ([`qpdo_bench::framing`]) appended to the active segment and
//! fsync'd before the daemon acts on it:
//!
//! - `accept <id> <deadline_ms|-> <kind…>` — written before the client
//!   sees `accepted`; the job is now durable.
//! - `dispatch <id> <backend> <attempt>` — informational routing trace.
//! - `done <id> <record…>` / `failed <id> <error…>` — written before
//!   the in-memory result becomes queryable; the job is now terminal.
//!
//! **Recovery invariant:** after any crash, replaying the segments
//! yields every acknowledged job exactly once, with its terminal
//! outcome if one was journaled. Jobs without a terminal record are
//! re-queued; their deterministic seeds make re-execution byte-identical,
//! so recovery is exactly-once by construction. A torn tail (the frame
//! being written when the process died) is dropped by the CRC framing;
//! everything before it is intact.
//!
//! **Rotation:** [`WriteAheadLog::open`] always compacts the recovered
//! state into a fresh segment (atomic write + rename + directory sync)
//! and deletes the old ones — both to bound startup cost and because a
//! torn tail must never be appended after. During operation the log
//! rotates the same way whenever the active segment exceeds the size
//! bound.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};

use qpdo_bench::framing::{atomic_replace, read_records, sync_file, sync_parent_dir, write_record};

use crate::job::{Backend, JobSpec};

/// A job's terminal result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The whitespace-separated result record.
    Done(String),
    /// The terminal error description.
    Failed(String),
}

/// One journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A job was admitted.
    Accept(JobSpec),
    /// A job was handed to the worker pool on a backend.
    Dispatch {
        /// The job id.
        id: String,
        /// The backend chosen at dispatch.
        backend: Backend,
        /// The daemon-level attempt number, starting at 0.
        attempt: u32,
    },
    /// A job reached its terminal state.
    Complete {
        /// The job id.
        id: String,
        /// The terminal result.
        outcome: JobOutcome,
    },
}

impl WalRecord {
    fn encode(&self) -> String {
        match self {
            WalRecord::Accept(spec) => format!("accept {} {}", spec.id, spec.encode_tail()),
            WalRecord::Dispatch {
                id,
                backend,
                attempt,
            } => format!("dispatch {id} {} {attempt}", backend.name()),
            WalRecord::Complete {
                id,
                outcome: JobOutcome::Done(record),
            } => format!("done {id} {record}"),
            WalRecord::Complete {
                id,
                outcome: JobOutcome::Failed(error),
            } => format!("failed {id} {error}"),
        }
    }

    fn parse(line: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["accept", rest @ ..] => Ok(WalRecord::Accept(JobSpec::parse(rest)?)),
            ["dispatch", id, backend, attempt] => Ok(WalRecord::Dispatch {
                id: (*id).to_owned(),
                backend: Backend::parse(backend)
                    .ok_or_else(|| format!("unknown backend {backend:?}"))?,
                attempt: attempt
                    .parse()
                    .map_err(|_| format!("malformed attempt {attempt:?}"))?,
            }),
            ["done", id, record @ ..] => Ok(WalRecord::Complete {
                id: (*id).to_owned(),
                outcome: JobOutcome::Done(record.join(" ")),
            }),
            ["failed", id, error @ ..] => Ok(WalRecord::Complete {
                id: (*id).to_owned(),
                outcome: JobOutcome::Failed(error.join(" ")),
            }),
            _ => Err(format!("unknown journal record {line:?}")),
        }
    }
}

/// One job as reconstructed from the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredJob {
    /// The accepted spec.
    pub spec: JobSpec,
    /// The terminal outcome, when one was journaled.
    pub outcome: Option<JobOutcome>,
    /// Dispatch records seen (how often the job reached a worker).
    pub dispatches: u32,
}

/// What a journal replay found.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recovery {
    /// Every accepted job, in acceptance order.
    pub jobs: Vec<RecoveredJob>,
    /// Ids with more than one terminal record — an exactly-once
    /// violation that must never happen.
    pub duplicate_terminals: Vec<String>,
    /// Dispatch/complete records whose id was never accepted — a
    /// write-ordering violation that must never happen.
    pub orphaned: Vec<String>,
}

impl Recovery {
    /// Whether the journal satisfies the exactly-once invariants.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.duplicate_terminals.is_empty() && self.orphaned.is_empty()
    }

    /// Jobs still awaiting execution, in acceptance order.
    #[must_use]
    pub fn pending(&self) -> Vec<&RecoveredJob> {
        self.jobs.iter().filter(|j| j.outcome.is_none()).collect()
    }

    fn replay(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Accept(spec) => {
                // A duplicate accept is idempotently absorbed, exactly
                // like a duplicate submission.
                if !self.jobs.iter().any(|j| j.spec.id == spec.id) {
                    self.jobs.push(RecoveredJob {
                        spec: spec.clone(),
                        outcome: None,
                        dispatches: 0,
                    });
                }
            }
            WalRecord::Dispatch { id, .. } => {
                match self.jobs.iter_mut().find(|j| j.spec.id == *id) {
                    Some(job) => job.dispatches += 1,
                    None => self.orphaned.push(id.clone()),
                }
            }
            WalRecord::Complete { id, outcome } => {
                match self.jobs.iter_mut().find(|j| j.spec.id == *id) {
                    Some(job) => {
                        if job.outcome.is_some() {
                            self.duplicate_terminals.push(id.clone());
                        } else {
                            job.outcome = Some(outcome.clone());
                        }
                    }
                    None => self.orphaned.push(id.clone()),
                }
            }
        }
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // Leftover `.tmp` files are aborted rotations: never valid state.
        if name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
            continue;
        }
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Replays every segment in `dir` without modifying anything. This is
/// the read-only audit path (`serve_chaos` uses it to assert the
/// exactly-once invariants after a drill).
///
/// # Errors
///
/// Propagates I/O errors; torn tails are tolerated, not errors.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    let mut recovery = Recovery::default();
    if !dir.exists() {
        return Ok(recovery);
    }
    for (_, path) in list_segments(dir)? {
        let mut reader = BufReader::new(File::open(&path)?);
        for payload in read_records(&mut reader)? {
            let line = String::from_utf8(payload)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 journal"))?;
            let record = WalRecord::parse(&line)
                .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))?;
            recovery.replay(&record);
        }
    }
    Ok(recovery)
}

/// The append side of the journal.
pub struct WriteAheadLog {
    dir: PathBuf,
    active: File,
    active_seq: u64,
    active_bytes: u64,
    max_segment_bytes: u64,
    /// Mirror of the journal state, for compaction snapshots.
    jobs: Vec<RecoveredJob>,
    index: HashMap<String, usize>,
}

impl WriteAheadLog {
    /// The default rotation bound for the active segment.
    pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 1 << 20;

    /// Opens (creating if needed) the journal in `dir`, replays it, and
    /// compacts the recovered state into a fresh segment — a crash tears
    /// at most the active segment's tail, and a torn tail must never be
    /// appended after, so every open starts a clean segment.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and corrupt (non-frame-level) journal
    /// content.
    pub fn open(dir: &Path, max_segment_bytes: u64) -> io::Result<(Self, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let recovery = recover(dir)?;
        let next_seq = list_segments(dir)?.last().map_or(1, |(seq, _)| seq + 1);
        let mut wal = WriteAheadLog {
            dir: dir.to_path_buf(),
            // Placeholder; rotate_to() below installs the real handle.
            active: OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(dir, next_seq))?,
            active_seq: next_seq,
            active_bytes: 0,
            max_segment_bytes: max_segment_bytes.max(1),
            jobs: recovery.jobs.clone(),
            index: recovery
                .jobs
                .iter()
                .enumerate()
                .map(|(i, j)| (j.spec.id.clone(), i))
                .collect(),
        };
        wal.rotate_to(next_seq)?;
        Ok((wal, recovery))
    }

    /// The directory holding the segments.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number of the active segment (tests observe
    /// rotation through this).
    #[must_use]
    pub fn active_seq(&self) -> u64 {
        self.active_seq
    }

    /// Appends one record, fsyncs it, and rotates the segment if the
    /// size bound is exceeded. When this returns, the record is durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on error the record must be treated as
    /// not written (the daemon rejects the triggering request).
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let line = record.encode();
        write_record(&mut self.active, line.as_bytes())?;
        sync_file(&self.active)?;
        self.active_bytes += 8 + line.len() as u64;
        self.apply(record)?;
        if self.active_bytes > self.max_segment_bytes {
            self.rotate_to(self.active_seq + 1)?;
        }
        Ok(())
    }

    /// Mirrors the record into the in-memory state (used for
    /// compaction snapshots), enforcing the journal invariants as
    /// programmer-error checks on the daemon.
    fn apply(&mut self, record: &WalRecord) -> io::Result<()> {
        match record {
            WalRecord::Accept(spec) => {
                if !self.index.contains_key(&spec.id) {
                    self.index.insert(spec.id.clone(), self.jobs.len());
                    self.jobs.push(RecoveredJob {
                        spec: spec.clone(),
                        outcome: None,
                        dispatches: 0,
                    });
                }
                Ok(())
            }
            WalRecord::Dispatch { id, .. } => {
                let job = self
                    .index
                    .get(id)
                    .map(|&i| &mut self.jobs[i])
                    .ok_or_else(|| io::Error::other(format!("dispatch for unknown job {id:?}")))?;
                job.dispatches += 1;
                Ok(())
            }
            WalRecord::Complete { id, outcome } => {
                let job = self
                    .index
                    .get(id)
                    .map(|&i| &mut self.jobs[i])
                    .ok_or_else(|| io::Error::other(format!("complete for unknown job {id:?}")))?;
                if job.outcome.is_some() {
                    return Err(io::Error::other(format!(
                        "second terminal record for job {id:?} (exactly-once violation)"
                    )));
                }
                job.outcome = Some(outcome.clone());
                Ok(())
            }
        }
    }

    /// Writes the full current state as segment `seq` (atomic replace +
    /// rename + directory sync), switches appends to it, and deletes
    /// every older segment.
    fn rotate_to(&mut self, seq: u64) -> io::Result<()> {
        let mut snapshot = Vec::new();
        for job in &self.jobs {
            write_record(
                &mut snapshot,
                WalRecord::Accept(job.spec.clone()).encode().as_bytes(),
            )?;
            if let Some(outcome) = &job.outcome {
                let record = WalRecord::Complete {
                    id: job.spec.id.clone(),
                    outcome: outcome.clone(),
                };
                write_record(&mut snapshot, record.encode().as_bytes())?;
            }
        }
        let path = segment_path(&self.dir, seq);
        let bytes = snapshot.len() as u64;
        atomic_replace(&path, &snapshot)?;
        for (old_seq, old_path) in list_segments(&self.dir)? {
            if old_seq < seq {
                std::fs::remove_file(old_path)?;
            }
        }
        sync_parent_dir(&path)?;
        self.active = OpenOptions::new().append(true).open(&path)?;
        self.active_seq = seq;
        self.active_bytes = bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qpdo-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_owned(),
            deadline_ms: None,
            kind: JobKind::Bell { shots: 2 },
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        let records = vec![
            WalRecord::Accept(spec("j1")),
            WalRecord::Dispatch {
                id: "j1".to_owned(),
                backend: Backend::Reference,
                attempt: 2,
            },
            WalRecord::Complete {
                id: "j1".to_owned(),
                outcome: JobOutcome::Done("1 2 3 4".to_owned()),
            },
            WalRecord::Complete {
                id: "j2".to_owned(),
                outcome: JobOutcome::Failed("deadline exceeded".to_owned()),
            },
        ];
        for record in records {
            let line = record.encode();
            assert_eq!(WalRecord::parse(&line), Ok(record), "{line}");
        }
    }

    #[test]
    fn journal_survives_reopen_with_exact_state() {
        let dir = tmp_dir("reopen");
        {
            let (mut wal, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            assert!(recovery.jobs.is_empty());
            wal.append(&WalRecord::Accept(spec("a"))).unwrap();
            wal.append(&WalRecord::Accept(spec("b"))).unwrap();
            wal.append(&WalRecord::Dispatch {
                id: "a".to_owned(),
                backend: Backend::Packed,
                attempt: 0,
            })
            .unwrap();
            wal.append(&WalRecord::Complete {
                id: "a".to_owned(),
                outcome: JobOutcome::Done("0 1 1 0".to_owned()),
            })
            .unwrap();
        }
        let (_, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 2);
        assert_eq!(
            recovery.jobs[0].outcome,
            Some(JobOutcome::Done("0 1 1 0".to_owned()))
        );
        assert_eq!(recovery.jobs[1].outcome, None);
        assert_eq!(recovery.pending().len(), 1);
        assert_eq!(recovery.pending()[0].spec.id, "b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_reopen_starts_clean() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("kept"))).unwrap();
            wal.append(&WalRecord::Accept(spec("torn"))).unwrap();
        }
        // Tear the last frame mid-payload, as a crash mid-write would.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let (wal, recovery) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].spec.id, "kept");
        // The reopened journal compacted into a fresh segment: the torn
        // bytes are gone from disk, not merely skipped.
        let (_, active) = list_segments(&dir).unwrap().pop().unwrap();
        assert_eq!(active, segment_path(&dir, wal.active_seq()));
        let mut reader = BufReader::new(File::open(&active).unwrap());
        assert_eq!(read_records(&mut reader).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_compacts_and_deletes_old_segments() {
        let dir = tmp_dir("rotate");
        let (mut wal, _) = WriteAheadLog::open(&dir, 64).unwrap();
        let first_seq = wal.active_seq();
        for i in 0..20 {
            wal.append(&WalRecord::Accept(spec(&format!("job-{i}"))))
                .unwrap();
            wal.append(&WalRecord::Complete {
                id: format!("job-{i}"),
                outcome: JobOutcome::Done("0 0 1 1".to_owned()),
            })
            .unwrap();
        }
        assert!(wal.active_seq() > first_seq, "no rotation happened");
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "old segments were not deleted");
        let recovery = recover(&dir).unwrap();
        assert!(recovery.is_consistent());
        assert_eq!(recovery.jobs.len(), 20);
        assert!(recovery.jobs.iter().all(|j| j.outcome.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_refuses_exactly_once_violations() {
        let dir = tmp_dir("dup");
        let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
        wal.append(&WalRecord::Accept(spec("a"))).unwrap();
        let done = WalRecord::Complete {
            id: "a".to_owned(),
            outcome: JobOutcome::Done("1".to_owned()),
        };
        wal.append(&done).unwrap();
        assert!(wal.append(&done).is_err());
        assert!(wal
            .append(&WalRecord::Dispatch {
                id: "ghost".to_owned(),
                backend: Backend::Packed,
                attempt: 0,
            })
            .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_flags_duplicate_terminals_in_the_journal() {
        let dir = tmp_dir("audit");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write a journal that violates exactly-once.
        let mut bytes = Vec::new();
        for line in [
            "accept a - bell 2",
            "done a 1 1 0 0",
            "done a 1 1 0 0",
            "done ghost 0 0 0 0",
        ] {
            write_record(&mut bytes, line.as_bytes()).unwrap();
        }
        std::fs::write(segment_path(&dir, 1), bytes).unwrap();
        let recovery = recover(&dir).unwrap();
        assert!(!recovery.is_consistent());
        assert_eq!(recovery.duplicate_terminals, vec!["a".to_owned()]);
        assert_eq!(recovery.orphaned, vec!["ghost".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_segment_byte_keeps_the_prefix() {
        let dir = tmp_dir("corrupt");
        {
            let (mut wal, _) = WriteAheadLog::open(&dir, 1 << 20).unwrap();
            wal.append(&WalRecord::Accept(spec("one"))).unwrap();
            wal.append(&WalRecord::Accept(spec("two"))).unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        // Flip a byte inside the second record's payload.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let mut content = Vec::new();
        file.read_to_end(&mut content).unwrap();
        let target = content.len() - 3;
        content[target] ^= 0xFF;
        file.seek(SeekFrom::Start(0)).unwrap();
        file.write_all(&content).unwrap();
        drop(file);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].spec.id, "one");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Known-answer tests locking `qpdo-rng`'s output streams.
//!
//! The golden vectors were generated from an independent big-integer
//! reference implementation of the public-domain algorithms; the
//! xoshiro256** `seed_from_u64(0)` stream also matches the published
//! `rand_xoshiro` test vector, confirming the SplitMix64 seeding
//! procedure is the standard one. If any of these tests ever fails, a
//! code change has silently broken every recorded experiment seed.

use qpdo_rng::rngs::StdRng;
use qpdo_rng::{Rng, RngCore, SeedableRng, SplitMix64, Xoshiro256StarStar};

#[test]
fn splitmix64_golden_vectors() {
    let cases: [(u64, [u64; 5]); 3] = [
        (
            0,
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
                0x1B39_896A_51A8_749B,
            ],
        ),
        (
            1,
            [
                0x910A_2DEC_8902_5CC1,
                0xBEEB_8DA1_658E_EC67,
                0xF893_A2EE_FB32_555E,
                0x71C1_8690_EE42_C90B,
                0x71BB_54D8_D101_B5B9,
            ],
        ),
        (
            0xDEAD_BEEF,
            [
                0x4ADF_B90F_68C9_EB9B,
                0xDE58_6A31_41A1_0922,
                0x021F_BC2F_8E1C_FC1D,
                0x7466_CE73_7BE1_6790,
                0x3BFA_8764_F685_BD1C,
            ],
        ),
    ];
    for (seed, expected) in cases {
        let mut rng = SplitMix64::seed_from_u64(seed);
        for (i, want) in expected.into_iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "SplitMix64 seed {seed}, draw {i}");
        }
    }
}

#[test]
fn xoshiro256starstar_golden_vectors() {
    let cases: [(u64, [u64; 8]); 3] = [
        (
            0,
            [
                0x99EC_5F36_CB75_F2B4,
                0xBF6E_1F78_4956_452A,
                0x1A5F_849D_4933_E6E0,
                0x6AA5_94F1_262D_2D2C,
                0xBBA5_AD4A_1F84_2E59,
                0xFFEF_8375_D9EB_CACA,
                0x6C16_0DEE_D2F5_4C98,
                0x8920_AD64_8FC3_0A3F,
            ],
        ),
        (
            42,
            [
                0x1578_0B2E_0C2E_C716,
                0x6104_D986_6D11_3A7E,
                0xAE17_5332_39E4_99A1,
                0xECB8_AD47_03B3_60A1,
                0xFDE6_DC7F_E2EC_5E64,
                0xC50D_A531_0179_5238,
                0xB821_5485_5A65_DDB2,
                0xD99A_2743_EBE6_0087,
            ],
        ),
        (
            2016, // the experiment harness's default base seed
            [
                0x2783_899F_312C_A7A0,
                0x0624_859D_A8FD_69E2,
                0xB6D2_3129_6DD6_A35B,
                0xD160_CD43_7036_B5F1,
                0xA25B_C637_6E6C_9BBC,
                0xC15E_01F8_0AEF_96D0,
                0x839F_EE18_0945_02D2,
                0xD5D5_542B_85D2_A9CA,
            ],
        ),
    ];
    for (seed, expected) in cases {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for (i, want) in expected.into_iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "xoshiro256** seed {seed}, draw {i}");
        }
    }
}

#[test]
fn stdrng_is_xoshiro256starstar() {
    let mut a = StdRng::seed_from_u64(7);
    let mut b = Xoshiro256StarStar::seed_from_u64(7);
    for _ in 0..64 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn fill_bytes_matches_next_u64_le() {
    let mut a = StdRng::seed_from_u64(9);
    let mut b = StdRng::seed_from_u64(9);
    let mut buf = [0u8; 20];
    a.fill_bytes(&mut buf);
    let mut expected = Vec::new();
    for _ in 0..3 {
        expected.extend_from_slice(&b.next_u64().to_le_bytes());
    }
    assert_eq!(buf[..16], expected[..16]);
    assert_eq!(buf[16..20], expected[16..20]);
}

#[test]
fn next_u32_is_upper_half() {
    let mut a = StdRng::seed_from_u64(11);
    let mut b = StdRng::seed_from_u64(11);
    for _ in 0..32 {
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}

#[test]
fn gen_range_respects_bounds_and_covers_values() {
    let mut rng = StdRng::seed_from_u64(1234);
    let mut seen = [false; 7];
    for _ in 0..10_000 {
        let v = rng.gen_range(3..10usize);
        assert!((3..10).contains(&v), "half-open sample {v} out of bounds");
        seen[v - 3] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "7 buckets × 10k draws must all be hit"
    );

    let mut seen_edge = (false, false);
    for _ in 0..10_000 {
        let v = rng.gen_range(-2i64..=2);
        assert!((-2..=2).contains(&v), "inclusive sample {v} out of bounds");
        seen_edge.0 |= v == -2;
        seen_edge.1 |= v == 2;
    }
    assert!(
        seen_edge.0 && seen_edge.1,
        "inclusive endpoints must be reachable"
    );
}

#[test]
fn gen_range_is_roughly_uniform() {
    let mut rng = StdRng::seed_from_u64(5150);
    const BUCKETS: usize = 16;
    const DRAWS: usize = 160_000;
    let mut counts = [0usize; BUCKETS];
    for _ in 0..DRAWS {
        counts[rng.gen_range(0..BUCKETS)] += 1;
    }
    let expected = (DRAWS / BUCKETS) as f64;
    for (bucket, &count) in counts.iter().enumerate() {
        let dev = (count as f64 - expected).abs() / expected;
        // Binomial σ/µ ≈ 1.2% here; 5% is > 4σ per bucket.
        assert!(
            dev < 0.05,
            "bucket {bucket}: {count} vs expected {expected}"
        );
    }
}

#[test]
fn gen_bool_frequency_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(777);
    for p in [0.1, 0.5, 0.9] {
        let hits = (0..100_000).filter(|_| rng.gen_bool(p)).count();
        let freq = hits as f64 / 100_000.0;
        assert!(
            (freq - p).abs() < 0.01,
            "gen_bool({p}) frequency {freq} off by more than 1%"
        );
    }
    let mut rng = StdRng::seed_from_u64(778);
    assert!(
        (0..1000).all(|_| !rng.gen_bool(0.0)),
        "p = 0 must never hit"
    );
    let mut rng = StdRng::seed_from_u64(779);
    assert!(
        (0..1000).all(|_| rng.gen_bool(1.0)),
        "p = 1 must always hit"
    );
}

#[test]
fn gen_f64_stays_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(31337);
    for _ in 0..100_000 {
        let v: f64 = rng.gen();
        assert!((0.0..1.0).contains(&v), "f64 sample {v} outside [0, 1)");
    }
}

#[test]
fn dyn_rngcore_samples_like_concrete() {
    let mut concrete = StdRng::seed_from_u64(21);
    let mut boxed: Box<dyn RngCore> = Box::new(StdRng::seed_from_u64(21));
    let dynamic: &mut dyn RngCore = boxed.as_mut();
    for _ in 0..16 {
        assert_eq!(dynamic.next_u64(), concrete.next_u64());
    }
}

#[test]
fn from_entropy_produces_distinct_streams() {
    let mut a = StdRng::from_entropy();
    let mut b = StdRng::from_entropy();
    let a8: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
    let b8: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
    assert_ne!(a8, b8, "entropy seeding must not repeat across instances");
}

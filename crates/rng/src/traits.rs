use crate::uniform::{SampleRange, SampleUniform, Standard};

/// The raw generator interface: a source of uniform `u64`s.
///
/// Object-safe, so heterogeneous layers can share one generator through
/// `&mut dyn RngCore` (the control stack hands its RNG down to back-ends
/// this way).
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is fully determined by `seed`.
    ///
    /// This is the reproducibility anchor: experiment CSVs record the
    /// seed, and replaying it reproduces every sample exactly.
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from ambient process entropy (wall clock plus
    /// a process-wide counter). **Not** reproducible — prefer
    /// [`seed_from_u64`](Self::seed_from_u64) everywhere an experiment
    /// might need replaying.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    // Distinct per call even within one clock tick, and mixed through
    // SplitMix64's finalizer downstream so consecutive seeds decorrelate.
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    nanos ^ count.rotate_left(32) ^ (std::process::id() as u64).rotate_left(48)
}

/// Convenience sampling methods over any [`RngCore`].
///
/// Blanket-implemented, so `&mut dyn RngCore`, `&mut StdRng` and
/// generics like `R: Rng + ?Sized` all work at call sites exactly as
/// they did under `rand`.
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (`bool`: fair coin; floats: `[0, 1)`;
    /// integers: full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (`low..high` or `low..=high`).
    ///
    /// Integer sampling is unbiased (Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

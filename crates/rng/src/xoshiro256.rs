use crate::splitmix64::SplitMix64;
use crate::traits::{RngCore, SeedableRng};

/// xoshiro256**: the workspace's standard generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, all 64 output bits pass BigCrush.
/// Seeding expands a `u64` through four draws of [`SplitMix64`], the
/// procedure recommended by the algorithm's authors, so `seed_from_u64`
/// produces the same stream as the reference implementation (locked by
/// the crate's known-answer tests).
///
/// Reference: Blackman & Vigna, *Scrambled Linear Pseudorandom Number
/// Generators* (ACM TOMS 2021), public-domain C at
/// `prng.di.unimi.it/xoshiro256starstar.c`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// A generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the all-zero state is the one
    /// fixed point of the linear engine and would emit zeros forever).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be non-zero"
        );
        Xoshiro256StarStar { s }
    }

    /// The current raw state words (for checkpointing long sweeps).
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        // SplitMix64 output is equidistributed, so the four words are
        // never all zero for any u64 seed.
        Xoshiro256StarStar {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

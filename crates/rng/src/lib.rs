//! Deterministic, seedable randomness for the QPDO workspace.
//!
//! The stochastic layers of the platform — depolarizing error injection,
//! random-circuit test benches (Section 5.2.2), Monte Carlo LER sweeps —
//! all draw from this crate. Keeping the generator **in-repo** means a
//! seed reproduces the same experiment byte-for-byte on every platform,
//! forever, and the workspace builds hermetically offline with zero
//! external dependencies.
//!
//! Two primitives, both public-domain algorithms by Blackman and Vigna:
//!
//! - [`SplitMix64`] — a tiny 64-bit generator used to expand a `u64` seed
//!   into a full generator state (the seeding procedure recommended by
//!   the xoshiro authors),
//! - [`Xoshiro256StarStar`] — the workhorse generator: 256 bits of state,
//!   period 2²⁵⁶ − 1, passes BigCrush; aliased as [`rngs::StdRng`].
//!
//! The trait surface mirrors the subset of `rand` 0.8 the codebase uses
//! ([`RngCore`], [`Rng`], [`SeedableRng`]), so call sites read
//! identically:
//!
//! ```
//! use qpdo_rng::rngs::StdRng;
//! use qpdo_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(17);
//! let coin: bool = rng.gen();
//! let qubit = rng.gen_range(0..17);
//! let noisy = rng.gen_bool(1e-3);
//! # let _ = (coin, qubit, noisy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod splitmix64;
mod traits;
mod uniform;
mod xoshiro256;

pub use splitmix64::SplitMix64;
pub use traits::{Rng, RngCore, SeedableRng};
pub use uniform::{SampleRange, SampleUniform, Standard};
pub use xoshiro256::Xoshiro256StarStar;

/// Named generators, mirroring the `rngs` module of `rand`.
pub mod rngs {
    /// The workspace's standard generator: [`Xoshiro256StarStar`].
    ///
    /// Unlike `rand`'s `StdRng`, this alias is a stability **guarantee**:
    /// the stream for a given seed is part of the crate's contract (the
    /// known-answer tests lock it), so recorded experiment seeds stay
    /// meaningful across releases.
    ///
    /// [`Xoshiro256StarStar`]: crate::Xoshiro256StarStar
    pub type StdRng = crate::Xoshiro256StarStar;
}

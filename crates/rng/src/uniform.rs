use std::ops::{Range, RangeInclusive};

use crate::traits::RngCore;

/// Types with a canonical "uniform over the whole type" distribution,
/// sampled by [`Rng::gen`](crate::Rng::gen).
///
/// `bool` is a fair coin, floats are uniform over `[0, 1)` (53 / 24
/// explicit mantissa bits), integers cover their full range.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits scaled into [0, 1): every representable value
        // in the output set is hit with equal probability.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased sampling from `[0, span)` for `span ≥ 1` via Lemire's
/// multiply-shift rejection (*Fast Random Integer Generation in an
/// Interval*, ACM TOMS 2019): one 128-bit multiply per accepted draw,
/// rejection probability below `span / 2⁶⁴`.
fn lemire<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
        }
    }
    (m >> 64) as u64
}

/// Types [`Rng::gen_range`](crate::Rng::gen_range) can sample uniformly
/// from a range of.
pub trait SampleUniform: Copy {
    /// Uniform over `low..high`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform over `low..=high`. Panics if the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty => $uty:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = high.wrapping_sub(low) as $uty as u64;
                low.wrapping_add(lemire(rng, span) as $ty)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high.wrapping_sub(low) as $uty as u64).wrapping_add(1);
                if span == 0 {
                    // low..=high covers the whole 64-bit type.
                    return rng.next_u64() as $ty;
                }
                low.wrapping_add(lemire(rng, span) as $ty)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range {low}..{high}");
        let unit: f64 = Standard::sample(rng);
        let sample = low + (high - low) * unit;
        // Guard against rounding up onto the excluded endpoint.
        if sample < high {
            sample
        } else {
            low
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range {low}..={high}");
        let unit: f64 = Standard::sample(rng);
        low + (high - low) * unit
    }
}

/// Range shapes accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

use crate::traits::{RngCore, SeedableRng};

/// SplitMix64: a 64-bit generator with a single `u64` of state.
///
/// Every distinct seed yields a distinct full-period sequence (the state
/// update is a Weyl sequence with an odd increment), which makes it the
/// standard choice for expanding a small seed into the larger state of
/// [`Xoshiro256StarStar`](crate::Xoshiro256StarStar) without correlation
/// artifacts. It is also a perfectly serviceable generator on its own for
/// non-adversarial workloads.
///
/// Reference: Steele, Lea, Flood, *Fast Splittable Pseudorandom Number
/// Generators* (OOPSLA 2014); constants as in Vigna's public-domain C
/// implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator starting from the given state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

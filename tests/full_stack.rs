//! End-to-end integration tests across every crate, through the public
//! `qpdo` meta-crate exactly as a downstream user would drive it.

use qpdo::circuit::Circuit;
use qpdo::core::testbench::{BellStateHistoTb, GateSupportTb};
use qpdo::core::{ChpCore, ControlStack, CounterLayer, DepolarizingModel, PauliFrameLayer, SvCore};
use qpdo::pauli::PauliRecord;
use qpdo::surface17::{NinjaStar, StarLayout};

#[test]
fn fully_instrumented_stack_runs_a_star() {
    // The Fig 5.8 stack: counters around a Pauli frame over a noisy CHP
    // core, driving a ninja star through windows.
    let below = CounterLayer::new();
    let below_counts = below.counters();
    let above = CounterLayer::new();
    let above_counts = above.counters();
    let mut stack = ControlStack::with_seed(ChpCore::new(), 99);
    stack.push_layer(below);
    stack.push_layer(PauliFrameLayer::new());
    stack.push_layer(above);
    stack.set_error_model(DepolarizingModel::new(5e-3));
    stack.create_qubits(17).unwrap();

    let mut star = NinjaStar::new(StarLayout::standard(0));
    star.initialize_zero(&mut stack).unwrap();
    // Initialization runs in bypass mode: its gauge corrections are
    // absorbed by the frame but invisible to the counters.
    let baseline = stack
        .find_layer::<PauliFrameLayer>()
        .unwrap()
        .filtered_gates();
    for _ in 0..30 {
        star.run_window(&mut stack).unwrap();
        let _ = star.has_observable_error(&mut stack).unwrap();
    }

    // The frame only ever filters; it never invents work.
    assert!(below_counts.operations() <= above_counts.operations());
    assert!(below_counts.time_slots() <= above_counts.time_slots());
    // Whatever was filtered was Pauli gates.
    let filtered = above_counts.operations() - below_counts.operations();
    let pf: &PauliFrameLayer = stack.find_layer().unwrap();
    assert_eq!(pf.filtered_gates() - baseline, filtered);
    // The slot saving respects the 1/17 schedule bound of Section 5.3.2.
    let slot_saving = (above_counts.time_slots() - below_counts.time_slots()) as f64
        / above_counts.time_slots() as f64;
    assert!(slot_saving <= 1.0 / 17.0 + 1e-9, "saving {slot_saving}");
}

#[test]
fn frame_state_stays_consistent_under_noise() {
    // After any number of noisy windows, flushing the frame onto the
    // physical qubits must leave every record I and diagnostics clean or
    // dirty exactly as before (flush commutes with the tracked view).
    let mut stack = ControlStack::with_seed(ChpCore::new(), 123);
    stack.push_layer(PauliFrameLayer::new());
    stack.set_error_model(DepolarizingModel::new(3e-3));
    stack.create_qubits(17).unwrap();
    let mut star = NinjaStar::new(StarLayout::standard(0));
    star.initialize_zero(&mut stack).unwrap();
    for _ in 0..20 {
        star.run_window(&mut stack).unwrap();
    }
    let before = star.has_observable_error(&mut stack).unwrap();
    stack.clear_error_model();
    stack.flush_pauli_frames().unwrap();
    let pf: &PauliFrameLayer = stack.find_layer().unwrap();
    assert!(pf.frame().iter().all(|r| r == PauliRecord::I));
    let after = star.has_observable_error(&mut stack).unwrap();
    assert_eq!(before, after, "flushing must not change observable status");
}

#[test]
fn test_benches_run_on_layered_stacks() {
    let mut stack = ControlStack::with_seed(ChpCore::new(), 5);
    stack.push_layer(CounterLayer::new());
    stack.push_layer(PauliFrameLayer::new());
    stack.create_qubits(3).unwrap();
    let report = GateSupportTb.run(&mut stack).unwrap();
    // The frame layer absorbs Pauli gates, so they are "supported" even
    // on the Clifford-only core; T flushes then fails at the core.
    let t_row = report
        .iter()
        .find(|r| r.gate == qpdo::circuit::Gate::T)
        .unwrap();
    assert!(!t_row.supported);
    let x_row = report
        .iter()
        .find(|r| r.gate == qpdo::circuit::Gate::X)
        .unwrap();
    assert!(x_row.supported);

    let mut stack = ControlStack::with_seed(SvCore::new(), 6);
    stack.push_layer(PauliFrameLayer::new());
    stack.create_qubits(2).unwrap();
    let histo = BellStateHistoTb {
        shots: 32,
        odd: true,
    }
    .run(&mut stack)
    .unwrap();
    assert_eq!(histo.count("|00>") + histo.count("|11>"), 0);
}

#[test]
fn circuit_text_roundtrip_through_execution() {
    let text = "\
prep_z q0; prep_z q1; prep_z q2
h q0
cnot q0,q1
cnot q1,q2
x q0
measure q0; measure q1; measure q2
";
    let circuit: Circuit = text.parse().unwrap();
    for seed in 0..8 {
        // Individual outcomes are random coin flips and the frame maps
        // raw coins through the tracked X, so only the *correlations* are
        // comparable: q0 opposite to q1 = q2 in every stack.
        let mut plain = ControlStack::with_seed(ChpCore::new(), seed);
        plain.create_qubits(3).unwrap();
        plain.execute_now(circuit.clone()).unwrap();
        assert_ne!(plain.state().bit(0), plain.state().bit(1));
        assert_eq!(plain.state().bit(1), plain.state().bit(2));

        let mut framed = ControlStack::with_seed(ChpCore::new(), seed);
        framed.push_layer(PauliFrameLayer::new());
        framed.create_qubits(3).unwrap();
        framed.execute_now(circuit.clone()).unwrap();
        assert_ne!(framed.state().bit(0), framed.state().bit(1));
        assert_eq!(framed.state().bit(1), framed.state().bit(2));
    }
}

#[test]
fn two_backends_agree_on_logical_init() {
    // The same ninja-star initialization on CHP and the state-vector
    // core ends in states with the same logical value and clean
    // syndromes.
    let mut chp = ControlStack::with_seed(ChpCore::new(), 77);
    chp.create_qubits(17).unwrap();
    let mut star_chp = NinjaStar::new(StarLayout::standard(0));
    star_chp.initialize_zero(&mut chp).unwrap();
    assert!(!star_chp.has_observable_error(&mut chp).unwrap());
    assert!(!star_chp.measure_logical(&mut chp).unwrap());

    let mut sv = ControlStack::with_seed(SvCore::new(), 77);
    sv.create_qubits(17).unwrap();
    let mut star_sv = NinjaStar::new(StarLayout::standard(0));
    star_sv.initialize_zero(&mut sv).unwrap();
    assert!(!star_sv.has_observable_error(&mut sv).unwrap());
    assert!(!star_sv.measure_logical(&mut sv).unwrap());
}

//! The paper's headline claims, asserted end-to-end at test scale.

use qpdo::core::arch::WindowSchedule;
use qpdo::stats::independent_t_test;
use qpdo::surface17::experiment::{run_ler, LerConfig, LogicalErrorKind};

fn ler_samples(p: f64, with_pf: bool, reps: u64) -> Vec<f64> {
    (0..reps)
        .map(|rep| {
            let config = LerConfig {
                physical_error_rate: p,
                kind: LogicalErrorKind::XL,
                with_pauli_frame: with_pf,
                target_logical_errors: 8,
                max_windows: 60_000,
                seed: 31 + rep,
            };
            run_ler(&config).expect("LER run").ler()
        })
        .collect()
}

/// Claim 1 (Chapter 6): "a Pauli frame does not improve the LER of a
/// SC17 logical qubit". At test scale: the two samples are not
/// significantly different.
#[test]
fn pauli_frame_does_not_change_the_ler() {
    let without = ler_samples(4e-3, false, 5);
    let with = ler_samples(4e-3, true, 5);
    let t = independent_t_test(&without, &with).expect("t-test");
    assert!(
        t.p_value > 0.05,
        "unexpectedly significant difference: rho = {}, {:?} vs {:?}",
        t.p_value,
        without,
        with
    );
}

/// Claim 2 (Section 3.3 / Fig 3.3): the frame removes correction slots,
/// relaxing the schedule — bounded by one slot per window.
#[test]
fn frame_saves_schedule_time_within_the_bound() {
    let config = LerConfig {
        physical_error_rate: 8e-3,
        kind: LogicalErrorKind::XL,
        with_pauli_frame: true,
        target_logical_errors: 10,
        max_windows: 30_000,
        seed: 90,
    };
    let outcome = run_ler(&config).expect("LER run");
    let saved = outcome.saved_time_slots();
    assert!(saved > 0.0, "the frame saved nothing at a high error rate");
    assert!(saved <= 1.0 / 17.0 + 1e-9, "saving {saved} above the bound");
    assert!(outcome.saved_operations() > 0.0);
    assert!(outcome.ops_below_frame < outcome.ops_above_frame);
}

/// Claim 3 (Eq 5.12 / Fig 5.27): the bound on the relative improvement
/// converges to zero with distance, so larger codes gain nothing either.
#[test]
fn improvement_bound_vanishes_with_distance() {
    let bounds: Vec<f64> = (3..=15)
        .step_by(2)
        .map(|d| WindowSchedule::new(8, d).relative_improvement_upper_bound())
        .collect();
    assert!((bounds[0] - 1.0 / 17.0).abs() < 1e-12);
    for pair in bounds.windows(2) {
        assert!(pair[1] < pair[0]);
    }
    assert!(*bounds.last().unwrap() < 0.01);
}

/// Claim 4 (Section 5.3.2): the LER grows superlinearly in `p` below the
/// pseudo-threshold — halving `p` more than halves the LER.
#[test]
fn ler_scales_superlinearly_below_threshold() {
    let sample = |p: f64| -> f64 {
        let config = LerConfig {
            physical_error_rate: p,
            kind: LogicalErrorKind::XL,
            with_pauli_frame: false,
            target_logical_errors: 12,
            max_windows: 400_000,
            seed: 300,
        };
        run_ler(&config).expect("LER run").ler()
    };
    let high = sample(2e-3);
    let low = sample(5e-4);
    // Quadratic scaling predicts a factor 16; demand well beyond linear.
    assert!(
        high / low > 6.0,
        "LER(2e-3) = {high:.3e}, LER(5e-4) = {low:.3e}: scaling looks linear"
    );
}

//! A miniature logical-error-rate sweep (the Section 5.3 experiment at
//! demonstration scale): three physical error rates, with and without a
//! Pauli frame.
//!
//! ```sh
//! cargo run --release --example ler_sweep
//! ```

use qpdo::surface17::experiment::{run_ler, LerConfig, LogicalErrorKind};

fn main() {
    println!("PER        LER(no frame)  LER(frame)  slots saved by frame");
    for &p in &[5e-4, 1.5e-3, 5e-3] {
        let mut lers = [0.0f64; 2];
        let mut saved = 0.0;
        for (i, with_pf) in [false, true].into_iter().enumerate() {
            let config = LerConfig {
                physical_error_rate: p,
                kind: LogicalErrorKind::XL,
                with_pauli_frame: with_pf,
                target_logical_errors: 10,
                max_windows: 200_000,
                seed: 42,
            };
            let outcome = run_ler(&config).expect("LER run");
            lers[i] = outcome.ler();
            if with_pf {
                saved = 100.0 * outcome.saved_time_slots();
            }
        }
        println!(
            "{p:<9.1e}  {:<13.3e}  {:<10.3e}  {saved:.2} %",
            lers[0], lers[1]
        );
    }
    println!();
    println!("the frame saves schedule time, not logical fidelity — the paper's headline result");
}

//! Quickstart: assemble a QPDO control stack, run a Bell-state circuit
//! through a Pauli-frame layer, and inspect the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qpdo::circuit::Circuit;
use qpdo::core::{ControlStack, PauliFrameLayer, SvCore};

fn main() {
    // A control stack is a simulation core plus stacked layers (Fig 4.3
    // of the paper). Here: universal state-vector core + Pauli frame.
    let mut stack = ControlStack::with_seed(SvCore::new(), 2017);
    stack.push_layer(PauliFrameLayer::new());
    stack.create_qubits(2).expect("allocate qubits");

    // Build the odd-Bell circuit of Fig 5.6: the X gate will never reach
    // the simulator — the frame tracks it and flips the measured result.
    let mut circuit = Circuit::new();
    circuit.prep(0).prep(1);
    circuit.h(0).cnot(0, 1);
    circuit.x(0);
    circuit.measure(0).measure(1);
    println!("circuit:\n{circuit}");

    stack.add(circuit).expect("queue circuit");
    stack.execute().expect("execute");

    let m0 = stack.state().bit(0);
    let m1 = stack.state().bit(1);
    println!("measured: q0 = {m0}, q1 = {m1} (odd Bell state: always opposite)");
    assert_ne!(m0, m1);

    let pf: &PauliFrameLayer = stack.find_layer().expect("frame layer present");
    println!(
        "the Pauli frame absorbed {} gate(s); records: {}",
        pf.filtered_gates(),
        pf.frame()
    );
}

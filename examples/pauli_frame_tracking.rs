//! The worked Pauli-frame example of Section 3.4, plus the hardware view
//! of Section 3.5: the Pauli arbiter deciding, per operation, what
//! reaches the Physical Execution Layer.
//!
//! ```sh
//! cargo run --example pauli_frame_tracking
//! ```

use qpdo::circuit::{Gate, Operation};
use qpdo::core::arch::{PauliArbiter, PelCommand};
use qpdo::pauli::{Pauli, PauliFrame};

fn show(frame: &PauliFrame) {
    let records: Vec<String> = frame
        .iter()
        .enumerate()
        .map(|(q, r)| format!("D{q}:{r}"))
        .collect();
    println!("    frame: {}", records.join(" "));
}

fn main() {
    println!("== Section 3.4: tracking errors on the ninja star's data qubits ==");
    let mut frame = PauliFrame::new(9);

    println!("[Fig 3.5] initialize: all records reset to I");
    frame.reset_all();
    show(&frame);

    println!("[Fig 3.6] decoder reports an X error on D2 and a Z error on D4;");
    println!("          corrections are *tracked*, not applied:");
    frame.apply_pauli(2, Pauli::X);
    frame.apply_pauli(4, Pauli::Z);
    show(&frame);

    println!("[Fig 3.7] a combined X and Z error on D4: the Xs cancel, Z remains tracked");
    frame.apply_pauli(4, Pauli::X);
    frame.apply_pauli(4, Pauli::Z);
    show(&frame);

    println!("[Fig 3.8] logical Hadamard: H on every data qubit maps X records to Z");
    for q in 0..9 {
        frame.apply_h(q);
    }
    show(&frame);

    println!("[Fig 3.9] measure all data qubits: Z records never flip results");
    for q in 0..9 {
        let flip = frame.measurement_flipped(q);
        print!("m{q}{} ", if flip { "(flip)" } else { "" });
    }
    println!("\n");

    println!("== Section 3.5: the Pauli arbiter's five dispatch flows (Fig 3.12) ==");
    let mut arbiter = PauliArbiter::new(17);
    let script = [
        ("reset", Operation::prep(0)),
        ("Pauli gate", Operation::gate(Gate::X, &[0])),
        ("Clifford gate", Operation::gate(Gate::H, &[0])),
        ("Pauli gate", Operation::gate(Gate::X, &[0])),
        ("non-Clifford gate", Operation::gate(Gate::T, &[0])),
        ("measurement", Operation::measure(0)),
    ];
    for (label, op) in script {
        let commands = arbiter.dispatch(&op).expect("ops stay in range");
        let pel: Vec<String> = commands
            .iter()
            .map(|PelCommand::Execute(op)| op.to_string())
            .collect();
        println!(
            "{label:<18} {op:<12} -> PEL: [{}]  (record on q0: {})",
            pel.join(", "),
            arbiter.pfu().record(0),
        );
    }
    let stats = arbiter.stats();
    println!(
        "\narbiter statistics: {} received, {} forwarded, {} Paulis tracked, {} flush gates",
        stats.received(),
        stats.forwarded(),
        stats.tracked_paulis,
        stats.flush_gates,
    );
    println!(
        "PFU memory for one ninja star: {} bits (2 bits per qubit, Section 3.5.2)",
        arbiter.pfu().memory_bits()
    );
}

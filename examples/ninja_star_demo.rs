//! A full Surface Code 17 logical-qubit lifecycle: initialization, error
//! injection and correction windows, logical gates, and fault-tolerant
//! measurement — with a Pauli frame watching the corrections go by.
//!
//! ```sh
//! cargo run --example ninja_star_demo
//! ```

use qpdo::core::{ChpCore, ControlStack, PauliFrameLayer};
use qpdo::surface17::{NinjaStar, StarLayout};

fn main() {
    let mut stack = ControlStack::with_seed(ChpCore::new(), 17);
    stack.push_layer(PauliFrameLayer::new());
    stack.create_qubits(17).expect("one ninja star");

    let mut star = NinjaStar::new(StarLayout::standard(0));
    println!("fresh star properties: {}", star.properties());

    star.initialize_zero(&mut stack).expect("FT initialization");
    println!("after initialization:  {}", star.properties());

    // Idle error correction: windows of two ESM rounds + decode.
    println!("\nrunning 3 clean windows:");
    for i in 0..3 {
        let report = star.run_window(&mut stack).expect("window");
        println!(
            "  window {i}: confirmed X events {:04b}, Z events {:04b}, corrections {}",
            report.confirmed_x, report.confirmed_z, report.corrections_applied
        );
    }

    // Inject a physical error behind the architecture's back and watch
    // the next window catch it.
    println!("\ninjecting a physical X error on data qubit D3...");
    stack.core_mut().simulator_mut().expect("simulator").x(3);
    let report = star.run_window(&mut stack).expect("window");
    println!(
        "  window: confirmed Z-check events {:04b} -> {} correction gate(s)",
        report.confirmed_z, report.corrections_applied
    );
    let pf: &PauliFrameLayer = stack.find_layer().expect("frame layer");
    println!(
        "  the correction was absorbed by the Pauli frame (D3 record: {})",
        pf.record(3)
    );
    println!(
        "  observable errors after the window: {}",
        star.has_observable_error(&mut stack).expect("diagnostic")
    );

    // Logical operations.
    star.apply_logical_x(&mut stack).expect("X_L");
    println!("\nafter X_L: {}", star.properties());
    star.apply_logical_h(&mut stack).expect("H_L");
    println!("after H_L: {} (lattice rotated)", star.properties());
    star.apply_logical_h(&mut stack).expect("H_L");

    // Fault-tolerant measurement.
    let outcome = star.measure_logical(&mut stack).expect("M_ZL");
    println!(
        "\nlogical measurement: {} (the injected error never touched the logical state)",
        if outcome { "-1 (|1>_L)" } else { "+1 (|0>_L)" }
    );
    println!("final properties: {}", star.properties());
    assert!(outcome, "|0>_L flipped by X_L measures -1");
}

//! The future-work extension: larger-distance rotated surface codes and
//! the Eq 5.12 bound on what a Pauli frame could ever buy.
//!
//! ```sh
//! cargo run --release --example distance_scaling
//! ```

use qpdo::core::arch::WindowSchedule;
use qpdo::surface::experiment::{run_distance_ler, DistanceLerConfig};
use qpdo::surface::RotatedSurfaceCode;

fn main() {
    println!("code geometry:");
    for d in [3usize, 5, 7] {
        let code = RotatedSurfaceCode::new(d);
        println!(
            "  d = {d}: {} data + {} ancilla qubits, ESM = {} ops / 8 slots",
            code.num_data_qubits(),
            code.checks().len(),
            code.esm_circuit().operation_count(),
        );
    }

    println!("\nEq 5.12 bound on the frame's relative LER improvement (ts_ESM = 8):");
    for d in (3..=11).step_by(2) {
        let bound = WindowSchedule::new(8, d).relative_improvement_upper_bound();
        println!("  d = {d:>2}: {:.2} %", 100.0 * bound);
    }

    println!("\nmini LER comparison at p = 3e-3 (10 logical errors per run):");
    for d in [3usize, 5] {
        for with_pf in [false, true] {
            let config = DistanceLerConfig {
                distance: d,
                physical_error_rate: 3e-3,
                with_pauli_frame: with_pf,
                target_logical_errors: 10,
                max_windows: 100_000,
                seed: 7,
            };
            let outcome = run_distance_ler(&config).expect("LER run");
            println!(
                "  d = {d}, frame = {with_pf:<5}: LER = {:.3e} over {} windows",
                outcome.ler(),
                outcome.windows
            );
        }
    }
    println!("\nexpectation (paper Ch. 6): no LER benefit from the frame at any distance");
}
